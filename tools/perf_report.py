#!/usr/bin/env python
"""Decode-throughput regression report.

Times the scalar reference hot loop against the vectorized one for
both decoders, plus serial vs utterance-parallel pool throughput, and
writes the numbers to ``BENCH_decode.json``::

    PYTHONPATH=src python tools/perf_report.py --preset small
    PYTHONPATH=src python tools/perf_report.py --preset medium --fail-below 3.0 \
        --fail-epsilon-above 0.12 --fail-parallel-below 1.0

The CI regression gates, all optional and exit-1 on breach:
``--fail-below X`` floors the on-the-fly vectorized speedup;
``--fail-epsilon-above S`` caps the vectorized on-the-fly epsilon
phase at ``S`` seconds (per-phase gate, not just total throughput);
``--fail-parallel-below X`` floors the pool's parallel speedup, and is
skipped with a warning on single-CPU machines where a process pool
cannot win; ``--fail-batch-below X`` floors the lockstep batch
(``BatchDecoder``) speedup over the cold per-utterance pass;
``--fail-pipeline-below X`` floors the asynchronous scoring-pipeline
speedup over the score-then-search baseline (skipped with a warning on
single-CPU machines, where the scoring thread cannot overlap the
search).

The serving layer has its own bench and gates::

    PYTHONPATH=src python tools/perf_report.py --preset small --serve-only \
        --serve-transport tcp --serve-concurrency 2 \
        --fail-serve-p95-above 2.0 --fail-serve-fps-below 100

``--serve`` additionally runs the streaming-service bench (a live
server plus the load generator) and writes ``BENCH_serve.json``;
``--serve-only`` skips the decode bench.  ``--fail-serve-fps-below X``
floors served frames per second and ``--fail-serve-p95-above S`` caps
the client-observed p95 per-push latency; transcript parity with
sequential streaming and a clean drain are always required.
``--serve-seed N`` pins the load generator's submission order.  The
serve report also carries a fused-vs-unfused comparison at
``--serve-fusion-concurrency`` sessions:
``--fail-fusion-speedup-below X`` floors fused/unfused frames per
second and ``--fail-kernel-calls-per-batch-above R`` caps engine
dispatches per decoded batch with fusion on.

Fault tolerance has its own arm — the chaos smoke::

    PYTHONPATH=src python tools/perf_report.py --preset small --serve-chaos \
        --serve-seed 1234 --fail-recovery-below 1.0 \
        --fail-migration-p95-above 5.0

``--serve-chaos`` runs :func:`repro.experiments.serve_bench.measure_recovery`
alone (no decode bench): a seeded load against the worker engine with a
mid-utterance worker kill injected, asserting the supervisor migrated
the orphaned sessions from their checkpoints and every transcript still
matched the sequential reference bit-for-bit.
``--fail-recovery-below F`` floors the fraction of sessions that
survived the kill and ``--fail-migration-p95-above S`` caps the p95
recovery-sweep latency; both gates also apply to the ``recovery``
section ``--serve``/``--serve-only`` put in ``BENCH_serve.json``.
``--serve-abort-fraction F`` makes a seeded fraction of load-generator
sessions abandon their stream mid-utterance.

Pipelined scoring has its own serving arm — the pipeline smoke::

    PYTHONPATH=src python tools/perf_report.py --preset small --serve-pipeline \
        --serve-pipeline-concurrency 8 --serve-seed 1234 \
        --fail-pipeline-speedup-below 1.15 --fail-ttfp-ratio-above 1.0

``--serve-pipeline`` runs
:func:`repro.experiments.serve_bench.measure_pipeline` alone: the same
seeded load streamed twice as *feature* payloads — once with the
server's scoring pipeline on (scoring overlaps the fused search) and
once scoring synchronously at dispatch — transcripts checked bit-exact
against the sequential reference both times.
``--fail-pipeline-speedup-below X`` floors pipelined/sync frames per
second and ``--fail-ttfp-ratio-above R`` caps the pipelined/sync
time-to-first-partial p95 ratio (``1.0`` requires TTFP to improve);
both are skipped with a warning on single-CPU machines, where the
scoring thread cannot overlap the search.  Both gates also apply to
the ``pipeline`` section ``--serve``/``--serve-only`` put in
``BENCH_serve.json``.

Sharded serving has its own arm — the shard smoke::

    PYTHONPATH=src python tools/perf_report.py --preset small --serve-shard \
        --serve-shards 2 --serve-seed 1234 --fail-shard-scaling-below 1.6 \
        --fail-segment-private-fraction-above 0.10

``--serve-shard`` runs :func:`repro.experiments.serve_bench.measure_shards`
alone: the same seeded load through one shard process and then
``--serve-shards`` of them, every shard mapping one shared-memory
recognizer segment, transcripts checked bit-exact against the
sequential reference both times.  ``--fail-shard-scaling-below X``
floors the frames/s ratio going 1 -> N shards (skipped with a warning
on single-CPU machines, like ``--fail-parallel-below``);
``--fail-segment-private-fraction-above F`` caps the fraction of the
shared segment any shard privatized — the per-worker incremental
memory of the recognizer, which stays ~0 while the segment is mapped
rather than copied.  Both gates also apply to the ``sharding`` section
``--serve``/``--serve-only`` put in ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset",
        choices=("small", "medium"),
        default="small",
        help="task scale: small=tiny, medium=kaldi-librispeech",
    )
    parser.add_argument("--output", default="BENCH_decode.json")
    parser.add_argument(
        "--parallelism",
        type=int,
        default=2,
        help="worker processes for the pool comparison (1 disables it)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if the on-the-fly vectorized speedup is below X",
    )
    parser.add_argument(
        "--fail-epsilon-above",
        type=float,
        default=None,
        metavar="S",
        help="exit 1 if the vectorized on-the-fly epsilon phase takes "
        "more than S seconds",
    )
    parser.add_argument(
        "--fail-parallel-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if the pool's parallel speedup is below X "
        "(skipped with a warning on single-CPU machines)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="lockstep batch width for the batched-decode comparison",
    )
    parser.add_argument(
        "--fail-batch-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if the lockstep batch speedup is below X",
    )
    parser.add_argument(
        "--pipeline-chunk-frames",
        type=int,
        default=16,
        help="scoring-pipeline chunk size for the pipelined-decode "
        "comparison",
    )
    parser.add_argument(
        "--fail-pipeline-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if the scoring-pipeline decode speedup is below X "
        "(skipped with a warning on single-CPU machines)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also run the streaming-service bench (BENCH_serve.json)",
    )
    parser.add_argument(
        "--serve-only",
        action="store_true",
        help="run only the streaming-service bench",
    )
    parser.add_argument("--serve-output", default="BENCH_serve.json")
    parser.add_argument("--serve-concurrency", type=int, default=4)
    parser.add_argument("--serve-batch-frames", type=int, default=8)
    parser.add_argument(
        "--serve-transport", choices=("local", "tcp"), default="local"
    )
    parser.add_argument("--serve-workers", type=int, default=1)
    parser.add_argument(
        "--serve-seed",
        type=int,
        default=1234,
        help="load-generator submission-order seed (reproducible runs)",
    )
    parser.add_argument(
        "--serve-fusion-concurrency",
        type=int,
        default=8,
        help="sessions in the fused-vs-unfused serving comparison",
    )
    parser.add_argument(
        "--fail-fusion-speedup-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if fused serving is below X times unfused frames/s",
    )
    parser.add_argument(
        "--fail-kernel-calls-per-batch-above",
        type=float,
        default=None,
        metavar="R",
        help="exit 1 if fused serving makes more than R engine "
        "dispatches per decoded batch",
    )
    parser.add_argument(
        "--fail-serve-fps-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if the service decodes fewer than X frames/second",
    )
    parser.add_argument(
        "--fail-serve-p95-above",
        type=float,
        default=None,
        metavar="S",
        help="exit 1 if the client-observed p95 per-push latency "
        "exceeds S seconds",
    )
    parser.add_argument(
        "--serve-chaos",
        action="store_true",
        help="run the fault-recovery smoke alone: seeded load with a "
        "mid-utterance worker kill, transcripts must stay bit-exact",
    )
    parser.add_argument(
        "--serve-abort-fraction",
        type=float,
        default=0.0,
        metavar="F",
        help="seeded fraction of load-generator sessions that abandon "
        "their stream mid-utterance",
    )
    parser.add_argument(
        "--serve-pipeline",
        action="store_true",
        help="run the pipelined-scoring serving smoke alone: the same "
        "seeded feature-streaming load with the scoring pipeline on "
        "and off, transcripts must stay bit-exact",
    )
    parser.add_argument(
        "--serve-pipeline-concurrency",
        type=int,
        default=8,
        help="feature-streaming sessions in the pipelined-vs-sync "
        "serving comparison (0 with --serve skips the pipeline section)",
    )
    parser.add_argument(
        "--fail-pipeline-speedup-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if pipelined serving is below X times the "
        "sync-scoring frames/s (skipped with a warning on single-CPU "
        "machines)",
    )
    parser.add_argument(
        "--fail-ttfp-ratio-above",
        type=float,
        default=None,
        metavar="R",
        help="exit 1 if the pipelined/sync time-to-first-partial p95 "
        "ratio exceeds R (1.0 requires TTFP to improve; skipped with a "
        "warning on single-CPU machines)",
    )
    parser.add_argument(
        "--serve-shard",
        action="store_true",
        help="run the sharded-serving smoke alone: seeded load through "
        "1 then N shard processes over one shared recognizer segment, "
        "transcripts must stay bit-exact",
    )
    parser.add_argument(
        "--serve-shards",
        type=int,
        default=2,
        help="shard count for the 1-vs-N comparison (0 with --serve "
        "skips the sharding section)",
    )
    parser.add_argument(
        "--fail-shard-scaling-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if N-shard serving is below X times single-shard "
        "frames/s (skipped with a warning on single-CPU machines)",
    )
    parser.add_argument(
        "--fail-segment-private-fraction-above",
        type=float,
        default=None,
        metavar="F",
        help="exit 1 if any shard privatized more than fraction F of "
        "the shared recognizer segment (per-worker incremental memory)",
    )
    parser.add_argument(
        "--fail-recovery-below",
        type=float,
        default=None,
        metavar="F",
        help="exit 1 if fewer than fraction F of sessions survive the "
        "injected worker kill with bit-identical finals",
    )
    parser.add_argument(
        "--fail-migration-p95-above",
        type=float,
        default=None,
        metavar="S",
        help="exit 1 if the p95 recovery-sweep latency (respawn + "
        "restore from checkpoint) exceeds S seconds",
    )
    args = parser.parse_args(argv)

    import json

    failures: list[str] = []
    notes: list[str] = []

    if not (
        args.serve_only
        or args.serve_chaos
        or args.serve_shard
        or args.serve_pipeline
    ):
        from repro.experiments.perf_decode import (
            check_report,
            write_bench_report,
        )

        result = write_bench_report(
            preset=args.preset,
            output=args.output,
            parallelism=args.parallelism,
            repeats=args.repeats,
            batch_size=args.batch_size,
            pipeline_chunk_frames=args.pipeline_chunk_frames,
        )
        print(result.render())
        print(f"\nwrote {args.output}")
        report = json.loads(Path(args.output).read_text())
        decode_failures, decode_notes = check_report(
            report,
            fail_below=args.fail_below,
            fail_epsilon_above=args.fail_epsilon_above,
            fail_parallel_below=args.fail_parallel_below,
            fail_batch_below=args.fail_batch_below,
            fail_pipeline_below=args.fail_pipeline_below,
        )
        failures.extend(decode_failures)
        notes.extend(decode_notes)

    if args.serve or args.serve_only:
        from repro.experiments.serve_bench import (
            check_fusion_report,
            check_pipeline_report,
            check_recovery_report,
            check_serve_report,
            check_shard_report,
            write_bench_report as write_serve_report,
        )

        serve_result = write_serve_report(
            preset=args.preset,
            output=args.serve_output,
            concurrency=args.serve_concurrency,
            batch_frames=args.serve_batch_frames,
            transport=args.serve_transport,
            workers=args.serve_workers,
            seed=args.serve_seed,
            fusion_concurrency=args.serve_fusion_concurrency,
            abort_fraction=args.serve_abort_fraction,
            shards=args.serve_shards,
            pipeline_concurrency=args.serve_pipeline_concurrency,
        )
        print(serve_result.render())
        print(f"\nwrote {args.serve_output}")
        serve_report = json.loads(Path(args.serve_output).read_text())
        serve_failures, serve_notes = check_serve_report(
            serve_report,
            fail_fps_below=args.fail_serve_fps_below,
            fail_p95_above=args.fail_serve_p95_above,
        )
        failures.extend(serve_failures)
        notes.extend(serve_notes)
        fusion_failures, fusion_notes = check_fusion_report(
            serve_report["fusion"],
            fail_fusion_speedup_below=args.fail_fusion_speedup_below,
            fail_kernel_calls_per_batch_above=(
                args.fail_kernel_calls_per_batch_above
            ),
        )
        failures.extend(fusion_failures)
        notes.extend(fusion_notes)
        recovery_failures, recovery_notes = check_recovery_report(
            serve_report["recovery"],
            fail_recovery_below=args.fail_recovery_below,
            fail_migration_p95_above=args.fail_migration_p95_above,
        )
        failures.extend(recovery_failures)
        notes.extend(recovery_notes)
        if "pipeline" in serve_report:
            pipeline_failures, pipeline_notes = check_pipeline_report(
                serve_report["pipeline"],
                fail_pipeline_speedup_below=(
                    args.fail_pipeline_speedup_below
                ),
                fail_ttfp_ratio_above=args.fail_ttfp_ratio_above,
            )
            failures.extend(pipeline_failures)
            notes.extend(pipeline_notes)
        if "sharding" in serve_report:
            shard_failures, shard_notes = check_shard_report(
                serve_report["sharding"],
                fail_shard_scaling_below=args.fail_shard_scaling_below,
                fail_segment_private_fraction_above=(
                    args.fail_segment_private_fraction_above
                ),
            )
            failures.extend(shard_failures)
            notes.extend(shard_notes)
    elif args.serve_chaos:
        from repro.experiments.serve_bench import (
            check_recovery_report,
            measure_recovery,
        )

        comparison = measure_recovery(
            preset=args.preset,
            concurrency=args.serve_concurrency,
            batch_frames=args.serve_batch_frames,
            seed=args.serve_seed,
        )
        print(
            f"serve-chaos: killed worker 0 at dispatch "
            f"{comparison['die_at_push']}; "
            f"{comparison['sessions_migrated']} session(s) migrated "
            f"across {comparison['worker_restarts']} restart(s), "
            f"recovery rate {comparison['recovery_rate']}, "
            f"throughput overhead {comparison['recovery_overhead']}x"
        )
        recovery_failures, recovery_notes = check_recovery_report(
            comparison,
            fail_recovery_below=args.fail_recovery_below,
            fail_migration_p95_above=args.fail_migration_p95_above,
        )
        failures.extend(recovery_failures)
        notes.extend(recovery_notes)
    elif args.serve_pipeline:
        from repro.experiments.serve_bench import (
            check_pipeline_report,
            measure_pipeline,
        )

        comparison = measure_pipeline(
            preset=args.preset,
            concurrency=args.serve_pipeline_concurrency,
            batch_frames=args.serve_batch_frames,
            seed=args.serve_seed,
        )
        print(
            f"serve-pipeline: {comparison['concurrency']} "
            f"feature-streaming sessions, "
            f"{comparison['feature_batches_scored']} batches scored "
            f"server-side; speedup {comparison['pipeline_speedup']}x "
            f"({comparison['sync_frames_per_second']} -> "
            f"{comparison['pipelined_frames_per_second']} frames/s), "
            f"ttfp p95 {comparison['sync_ttfp_p95']:.4f}s -> "
            f"{comparison['pipelined_ttfp_p95']:.4f}s "
            f"(ratio {comparison['ttfp_p95_ratio']})"
        )
        pipeline_failures, pipeline_notes = check_pipeline_report(
            comparison,
            fail_pipeline_speedup_below=args.fail_pipeline_speedup_below,
            fail_ttfp_ratio_above=args.fail_ttfp_ratio_above,
        )
        failures.extend(pipeline_failures)
        notes.extend(pipeline_notes)
    elif args.serve_shard:
        from repro.experiments.serve_bench import (
            check_shard_report,
            measure_shards,
        )

        comparison = measure_shards(
            preset=args.preset,
            shards=args.serve_shards,
            batch_frames=args.serve_batch_frames,
            seed=args.serve_seed,
        )
        print(
            f"serve-shard: {comparison['shards']} shards over one "
            f"{comparison['shared_nbytes']}-byte shared segment; "
            f"scaling {comparison['shard_scaling']}x "
            f"({comparison['single_frames_per_second']} -> "
            f"{comparison['sharded_frames_per_second']} frames/s), "
            f"sessions per shard {comparison['sessions_per_shard']}, "
            f"max segment privatization "
            f"{comparison['max_segment_private_fraction']}"
        )
        shard_failures, shard_notes = check_shard_report(
            comparison,
            fail_shard_scaling_below=args.fail_shard_scaling_below,
            fail_segment_private_fraction_above=(
                args.fail_segment_private_fraction_above
            ),
        )
        failures.extend(shard_failures)
        notes.extend(shard_notes)

    for note in notes:
        print(f"OK: {note}" if "skipped" not in note else f"WARN: {note}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
