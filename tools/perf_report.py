#!/usr/bin/env python
"""Decode-throughput regression report.

Times the scalar reference hot loop against the vectorized one for
both decoders, plus serial vs utterance-parallel pool throughput, and
writes the numbers to ``BENCH_decode.json``::

    PYTHONPATH=src python tools/perf_report.py --preset small
    PYTHONPATH=src python tools/perf_report.py --preset medium --fail-below 3.0

``--fail-below X`` exits non-zero when the on-the-fly vectorized
speedup drops under ``X`` — the CI regression gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset",
        choices=("small", "medium"),
        default="small",
        help="task scale: small=tiny, medium=kaldi-librispeech",
    )
    parser.add_argument("--output", default="BENCH_decode.json")
    parser.add_argument(
        "--parallelism",
        type=int,
        default=2,
        help="worker processes for the pool comparison (1 disables it)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if the on-the-fly vectorized speedup is below X",
    )
    args = parser.parse_args(argv)

    from repro.experiments.perf_decode import write_bench_report

    result = write_bench_report(
        preset=args.preset,
        output=args.output,
        parallelism=args.parallelism,
        repeats=args.repeats,
    )
    print(result.render())
    print(f"\nwrote {args.output}")

    if args.fail_below is not None:
        import json

        report = json.loads(Path(args.output).read_text())
        speedup = report["vectorized_speedup"]["on-the-fly"]
        if speedup < args.fail_below:
            print(
                f"FAIL: on-the-fly vectorized speedup {speedup}x is below "
                f"the {args.fail_below}x floor",
                file=sys.stderr,
            )
            return 1
        print(f"OK: on-the-fly vectorized speedup {speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
