"""Build EXPERIMENTS.md from a benchmark-run transcript.

The benchmark suite already executes every experiment and prints its
rows (the ``== id: title ==`` blocks).  This tool pairs those measured
blocks with the paper's reported values — the same rendering
``python -m repro.experiments.report`` produces, without re-running
the simulations.

Usage:
    python tools/experiments_from_bench.py bench_output.txt EXPERIMENTS.md
"""

from __future__ import annotations

import re
import sys

from repro.experiments.report import PAPER_CLAIMS

_HEADER = re.compile(r"^== ([\w-]+): (.+) ==$")


def extract_blocks(lines: list[str]) -> dict[str, tuple[str, list[str]]]:
    """Parse ``== id: title ==`` blocks out of a bench transcript."""
    blocks: dict[str, tuple[str, list[str]]] = {}
    current_id: str | None = None
    current_title = ""
    current: list[str] = []
    for raw in lines:
        line = raw.rstrip("\n")
        match = _HEADER.match(line)
        if match:
            if current_id is not None:
                blocks[current_id] = (current_title, current)
            current_id = match.group(1)
            current_title = match.group(2)
            current = [line]
            continue
        if current_id is not None:
            if line.startswith("-- "):
                current.append(line)
                blocks[current_id] = (current_title, current)
                current_id = None
            elif line.strip() == "" or line.startswith(("=", ".", "F")):
                blocks[current_id] = (current_title, current)
                current_id = None
            else:
                current.append(line)
    if current_id is not None:
        blocks[current_id] = (current_title, current)
    return blocks


def render(blocks: dict[str, tuple[str, list[str]]]) -> str:
    lines = [
        "# EXPERIMENTS — paper vs reproduction",
        "",
        "Measured blocks below are extracted from the benchmark run",
        "(`pytest benchmarks/ --benchmark-only`); regenerate either with",
        "that command or with `python -m repro.experiments.report`.",
        "Absolute numbers differ by construction (synthetic laptop-scale",
        "tasks, parameterized energy models — see DESIGN.md); the *shape*",
        "of each result is the reproduction target.",
        "",
    ]
    # Preserve the registry's ordering where possible.
    ordered = [eid for eid in PAPER_CLAIMS if eid in blocks]
    ordered += [eid for eid in blocks if eid not in PAPER_CLAIMS]
    for experiment_id in ordered:
        title, block = blocks[experiment_id]
        lines.append(f"## {experiment_id}: {title}")
        lines.append("")
        paper = PAPER_CLAIMS.get(experiment_id)
        if paper:
            lines.append(f"**Paper:** {paper}")
            lines.append("")
        lines.append("**Measured:**")
        lines.append("")
        lines.append("```")
        lines.extend(block)
        lines.append("```")
        lines.append("")
    missing = [eid for eid in PAPER_CLAIMS if eid not in blocks]
    if missing:
        lines.append(
            f"_Not captured in this transcript: {', '.join(missing)}._"
        )
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    source = argv[0] if argv else "bench_output.txt"
    output = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    with open(source) as stream:
        blocks = extract_blocks(stream.readlines())
    if not blocks:
        raise SystemExit(f"no experiment blocks found in {source}")
    with open(output, "w") as stream:
        stream.write(render(blocks))
    print(f"wrote {output} with {len(blocks)} experiments")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
