"""Figure 8 bench: the headline 31x memory reduction."""

from repro.experiments import fig08_memory_reduction


def test_fig08_memory_reduction(benchmark, show):
    result = benchmark.pedantic(fig08_memory_reduction.run, rounds=1, iterations=1)
    show(result)
    per_task = [r for r in result.rows if r["task"] != "average"]
    for row in per_task:
        assert row["fully_composed_mb"] > row["fully_composed_comp_mb"]
        assert row["fully_composed_comp_mb"] > row["onthefly_comp_mb"]
        assert row["onthefly_mb"] > row["onthefly_comp_mb"]
        # Paper range: 23.3x-34.7x; our scaled-down tasks land >10x.
        assert row["reduction_x"] > 10.0
    average = next(r for r in result.rows if r["task"] == "average")
    assert average["reduction_x"] > 15.0
