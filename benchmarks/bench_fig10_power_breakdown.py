"""Figure 10 bench: component power breakdown."""

from repro.experiments import fig10_power_breakdown


def test_fig10_power_breakdown(benchmark, show):
    result = benchmark.pedantic(fig10_power_breakdown.run, rounds=1, iterations=1)
    show(result)
    rows = {r["component"]: r for r in result.rows}
    # Paper: the saving comes chiefly from main-memory power.
    assert rows["main_memory"]["unfold_mw"] < rows["main_memory"]["reza_mw"]
    # Paper: the OLT is a small overhead (~5% of UNFOLD's power).
    olt_share = rows["offset_lookup_table"]["unfold_mw"] / rows["total"]["unfold_mw"]
    assert olt_share < 0.15
    # The baseline has no OLT at all.
    assert rows["offset_lookup_table"]["reza_mw"] == 0.0
