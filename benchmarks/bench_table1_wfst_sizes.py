"""Table 1 bench: offline composition's multiplicative blow-up."""

from repro.experiments import table1_wfst_sizes


def test_table1_wfst_sizes(benchmark, show):
    result = benchmark.pedantic(table1_wfst_sizes.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Paper: composed WFST is 5.5x-11x the separate models.
        assert row["blowup_x"] > 2.5
        assert row["composed_mb"] > row["am_mb"] + row["lm_mb"]
