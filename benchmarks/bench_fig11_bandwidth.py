"""Figure 11 bench: off-chip bandwidth by traffic class."""

from repro.experiments import fig11_bandwidth


def test_fig11_bandwidth(benchmark, show):
    result = benchmark.pedantic(fig11_bandwidth.run, rounds=1, iterations=1)
    show(result)
    by_task: dict[str, dict[str, dict]] = {}
    for row in result.rows:
        by_task.setdefault(row["task"], {})[row["platform"]] = row
    for task, platforms in by_task.items():
        reza, unfold = platforms["reza"], platforms["unfold"]
        # Paper: UNFOLD reduces total bandwidth on every decoder.
        assert unfold["total_mbs"] < reza["total_mbs"], task
        # Arcs dominate the traffic in both designs.
        assert reza["arcs_mbs"] >= reza["states_mbs"]
