"""Engineering bench: vectorized hot loop + utterance-parallel pool."""

from repro.experiments import perf_decode


def test_perf_decode(benchmark, show):
    result = benchmark.pedantic(perf_decode.run, rounds=1, iterations=1)
    show(result)
    modes = {(row["decoder"], row["mode"]) for row in result.rows}
    # Both decoders timed in both modes, with sane throughput numbers.
    assert modes == {
        ("on-the-fly", "scalar"),
        ("on-the-fly", "vectorized"),
        ("fully-composed", "scalar"),
        ("fully-composed", "vectorized"),
    }
    for row in result.rows:
        assert row["seconds"] > 0.0
        assert row["frames_per_sec"] > 0.0
        # measure() itself asserts scalar/vectorized output identity;
        # the speedup on the tiny preset is noise-dominated, so the
        # bench only checks the ratio was computed.
        if row["mode"] == "vectorized":
            assert row["speedup_vs_scalar"] > 0.0
