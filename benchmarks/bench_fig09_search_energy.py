"""Figure 9 bench: Viterbi search energy per platform."""

from repro.experiments import fig09_search_energy


def test_fig09_search_energy(benchmark, show):
    result = benchmark.pedantic(fig09_search_energy.run, rounds=1, iterations=1)
    show(result)
    per_task = [r for r in result.rows if r["task"] != "average"]
    for row in per_task:
        # Paper: the GPU costs an order of magnitude more than either
        # accelerator.
        assert row["tegra_mj"] > 3 * row["unfold_mj"]
        assert row["tegra_mj"] > 3 * row["reza_mj"]
    # Paper: 28% average saving for UNFOLD over the baseline.
    average = next(r for r in result.rows if r["task"] == "average")
    assert average["saving_pct"] > 0.0
