"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures through
``repro.experiments`` and prints the paper-style rows (run with ``-s``
to see them).  ``benchmark.pedantic`` with a single round is used
throughout: the experiments are deterministic end-to-end simulations,
so wall-clock variance across rounds is not the quantity of interest —
the printed rows are.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print an experiment result so it survives pytest's capture."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _show
