"""Table 5 bench: per-utterance decode latency."""

from repro.experiments import table5_latency


def test_table5_latency(benchmark, show):
    result = benchmark.pedantic(table5_latency.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Paper: both accelerators respond far faster than the GPU.
        assert row["unfold_avg"] < row["tegra_avg"]
        assert row["reza_avg"] < row["tegra_avg"]
        assert row["unfold_max"] >= row["unfold_avg"]
