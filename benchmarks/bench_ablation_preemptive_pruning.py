"""Section 3.3 ablation bench: preemptive back-off pruning."""

from repro.experiments import ablation_preemptive_pruning


def test_ablation_preemptive_pruning(benchmark, show):
    result = benchmark.pedantic(
        ablation_preemptive_pruning.run, rounds=1, iterations=1
    )
    show(result)
    for row in result.rows:
        # Paper: pruning discards hypotheses (22.5% average) without
        # changing the recognition output, and never slows decoding.
        assert row["hypotheses_pruned_pct"] > 0.0
        assert row["same_output"] is True
        assert row["speedup_pct"] > -5.0
