"""Section 5.1 ablation bench: LM arc-fetch strategies."""

from repro.experiments import ablation_lm_lookup


def test_ablation_lm_lookup(benchmark, show):
    result = benchmark.pedantic(ablation_lm_lookup.run, rounds=1, iterations=1)
    show(result)
    rows = {r["strategy"]: r for r in result.rows}
    # Paper's progression: linear (~10x) > binary (~3x) > OLT (~1.2x).
    assert (
        rows["linear"]["slowdown_vs_baseline_x"]
        > rows["binary"]["slowdown_vs_baseline_x"]
    )
    assert (
        rows["binary"]["slowdown_vs_baseline_x"]
        > rows["olt"]["slowdown_vs_baseline_x"]
    )
    assert (
        rows["olt+preemptive"]["slowdown_vs_baseline_x"]
        <= rows["olt"]["slowdown_vs_baseline_x"] + 0.05
    )
    # Probe counts follow the same ordering.
    assert (
        rows["linear"]["avg_probes_per_lookup"]
        > rows["binary"]["avg_probes_per_lookup"]
        > rows["olt"]["avg_probes_per_lookup"]
    )
