"""Table 6 bench: word error rate and the accuracy-preservation claim."""

from repro.experiments import table6_wer


def test_table6_wer(benchmark, show):
    result = benchmark.pedantic(table6_wer.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Recognition works: WER far below the 100% of a broken decoder.
        assert row["unfold_wer_pct"] < 60.0
        # Paper: on-the-fly vs fully-composed accuracy matches.
        assert row["delta_pct"] <= 2.0
        # Paper: 6-bit weight quantization changes WER negligibly.
        assert row["quant_delta_pct"] <= 5.0
