"""Section 3.1 ablation bench: compact vs raw lattice records."""

from repro.experiments import ablation_lattice_format


def test_ablation_lattice_format(benchmark, show):
    result = benchmark.pedantic(
        ablation_lattice_format.run, rounds=1, iterations=1
    )
    show(result)
    rows = {r["format"]: r for r in result.rows}
    compact, raw = rows["compact-8B"], rows["raw-16B"]
    # Halving the record size must cut token DRAM traffic...
    assert compact["token_dram_kb"] < raw["token_dram_kb"]
    # ...and never cost energy.
    assert compact["energy_mj_per_s"] <= raw["energy_mj_per_s"] * 1.02
