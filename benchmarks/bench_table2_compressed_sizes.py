"""Table 2 bench: compressed on-the-fly beats compressed fully-composed."""

from repro.experiments import table2_compressed_sizes


def test_table2_compressed_sizes(benchmark, show):
    result = benchmark.pedantic(table2_compressed_sizes.run, rounds=1, iterations=1)
    show(result)
    per_task = [r for r in result.rows if r["task"] != "average"]
    average = next(r for r in result.rows if r["task"] == "average")
    for row in per_task:
        assert row["ratio_x"] > 2.0
    # Paper: 8.8x average advantage for the on-the-fly representation.
    assert average["ratio_x"] > 3.0
