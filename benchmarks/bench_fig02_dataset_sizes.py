"""Figure 2 bench: the WFST dominates the ASR dataset."""

from repro.experiments import fig02_dataset_sizes


def test_fig02_dataset_sizes(benchmark, show):
    result = benchmark.pedantic(fig02_dataset_sizes.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Paper: WFST is 87-97% of the dataset.
        assert row["wfst_share_pct"] > 80.0
