"""Figure 6 bench: cache miss ratio vs capacity."""

from repro.experiments import fig06_cache_miss_sweep


def test_fig06_cache_miss_sweep(benchmark, show):
    result = benchmark.pedantic(fig06_cache_miss_sweep.run, rounds=1, iterations=1)
    show(result)
    first, last = result.rows[0], result.rows[-1]
    # Growing capacity cannot hurt, and must help the state/arc caches.
    for cache in ("state_cache", "am_arc_cache", "lm_arc_cache"):
        assert last[f"{cache}_miss_pct"] <= first[f"{cache}_miss_pct"] + 1.0
    assert last["state_cache_miss_pct"] < first["state_cache_miss_pct"]
    # Paper: the token cache floors on compulsory misses; capacity does
    # not rescue streamed writes.
    assert last["token_cache_miss_pct"] > 5.0
