"""Figure 13 bench: overall ASR energy per platform."""

from repro.experiments import fig13_overall_energy


def test_fig13_overall_energy(benchmark, show):
    result = benchmark.pedantic(fig13_overall_energy.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Paper: accelerated pipelines save energy over GPU-only (~1.5x),
        # and UNFOLD/Reza end up close because the GPU scorer dominates.
        assert row["unfold_mj"] < row["tegra_mj"]
        assert row["reza_mj"] < row["tegra_mj"]
        assert row["saving_vs_gpu_x"] > 1.0
