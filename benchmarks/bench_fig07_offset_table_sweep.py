"""Figure 7 bench: Offset Lookup Table size vs miss ratio and speedup."""

from repro.experiments import fig07_offset_table_sweep


def test_fig07_offset_table_sweep(benchmark, show):
    result = benchmark.pedantic(fig07_offset_table_sweep.run, rounds=1, iterations=1)
    show(result)
    first, last = result.rows[0], result.rows[-1]
    assert last["entries"] > first["entries"]
    # Bigger table -> fewer misses and no slowdown (paper's Figure 7 trend).
    assert last["olt_miss_pct"] <= first["olt_miss_pct"] + 1.0
    assert last["speedup_x"] >= 0.99
