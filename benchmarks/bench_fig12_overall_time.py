"""Figure 12 bench: overall ASR decode time per platform."""

from repro.experiments import fig12_overall_time


def test_fig12_overall_time(benchmark, show):
    result = benchmark.pedantic(fig12_overall_time.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Paper: hardware search makes the pipeline faster than GPU-only
        # (~3.4x), and both accelerated configs land close together.
        assert row["unfold_ms"] < row["tegra_ms"]
        assert row["reza_ms"] < row["tegra_ms"]
        assert row["speedup_vs_gpu_x"] > 1.0
        # All platforms remain real-time (under 1000 ms per second).
        assert row["tegra_ms"] < 1000.0
