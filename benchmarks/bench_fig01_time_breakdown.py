"""Figure 1 bench: GPU decode-time breakdown (Viterbi dominates)."""

from repro.experiments import fig01_time_breakdown


def test_fig01_time_breakdown(benchmark, show):
    result = benchmark.pedantic(fig01_time_breakdown.run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # Paper: the Viterbi search is the bottleneck in every decoder.
        assert row["viterbi_pct"] > 50.0
        assert row["viterbi_pct"] + row["scorer_pct"] == 100.0 or abs(
            row["viterbi_pct"] + row["scorer_pct"] - 100.0
        ) < 1e-6
