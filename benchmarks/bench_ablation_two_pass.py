"""Section 6 ablation bench: one-pass vs two-pass composition."""

from repro.experiments import ablation_two_pass


def test_ablation_two_pass(benchmark, show):
    result = benchmark.pedantic(ablation_two_pass.run, rounds=1, iterations=1)
    show(result)
    rows = {r["strategy"]: r for r in result.rows}
    one = rows["one-pass (UNFOLD)"]
    two = rows["two-pass (Ljolje et al.)"]
    # The two-pass scheme pays a serial rescoring stage the one-pass
    # scheme does not have (the paper's latency argument)...
    assert two["serial_rescore_work"] > 0
    assert one["serial_rescore_work"] == 0
    # ...without recognizing meaningfully better (small-sample jitter of
    # a few points either way is expected).
    assert two["wer_pct"] >= one["wer_pct"] - 5.0
