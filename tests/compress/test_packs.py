"""Round-trip tests for the AM/LM/state bit-packed formats."""

import pytest

from repro.compress import (
    AM_LONG_ARC_BITS,
    AM_SHORT_ARC_BITS,
    BACKOFF_ARC_BITS,
    REGULAR_ARC_BITS,
    UNIGRAM_ARC_BITS,
    pack_am,
    pack_lm,
    pack_states,
    unpack_am,
    unpack_lm,
    unpack_states,
)
from repro.wfst.fst import EPSILON


class TestAmPack:
    def test_record_sizes_match_paper(self):
        assert AM_SHORT_ARC_BITS == 20
        assert AM_LONG_ARC_BITS == 58

    def test_round_trip_structure(self, tiny_task):
        packed = pack_am(tiny_task.am.fst)
        restored = unpack_am(packed)
        original = tiny_task.am.fst
        assert restored.num_states == original.num_states
        assert restored.num_arcs == original.num_arcs
        assert restored.start == original.start
        for state in original.states():
            got = restored.out_arcs(state)
            want = original.out_arcs(state)
            for a, b in zip(got, want):
                assert (a.ilabel, a.olabel, a.nextstate) == (
                    b.ilabel,
                    b.olabel,
                    b.nextstate,
                )
                assert a.weight == packed.quantizer.quantize(b.weight)

    def test_most_arcs_are_short(self, tiny_task):
        """Section 3.4: most AM arcs fit the 20-bit format."""
        packed = pack_am(tiny_task.am.fst)
        assert packed.short_fraction > 0.6

    def test_compression_beats_raw(self, tiny_task):
        from repro.wfst import uncompressed_size

        packed = pack_am(tiny_task.am.fst)
        raw_arc_bytes = uncompressed_size(tiny_task.am.fst).arc_bytes
        assert packed.arc_bytes * 4 < raw_arc_bytes

    def test_size_accounting(self, tiny_task):
        packed = pack_am(tiny_task.am.fst)
        expected_bits = (
            packed.short_arcs * AM_SHORT_ARC_BITS
            + packed.long_arcs * AM_LONG_ARC_BITS
        )
        assert packed.bit_length == expected_bits
        assert packed.size_bytes == packed.arc_bytes + 256


class TestLmPack:
    def test_record_sizes_match_paper(self):
        assert UNIGRAM_ARC_BITS == 6
        assert BACKOFF_ARC_BITS == 27
        assert REGULAR_ARC_BITS == 45

    def test_round_trip_equals_permuted_graph(self, tiny_task):
        graph = tiny_task.lm
        packed = pack_lm(graph)
        restored = unpack_lm(packed)
        perm = packed.permutation
        original = graph.fst
        assert restored.num_states == original.num_states
        assert restored.start == perm[original.start]
        for old_state in original.states():
            new_state = perm[old_state]
            got = {
                (a.ilabel, a.olabel, a.nextstate): a.weight
                for a in restored.out_arcs(new_state)
            }
            for arc in original.out_arcs(old_state):
                key = (
                    arc.ilabel if arc.ilabel != graph.backoff_label else packed.backoff_label,
                    arc.olabel,
                    perm[arc.nextstate],
                )
                assert key in got
                assert got[key] == packed.quantizer.quantize(arc.weight)
        for old_state, weight in original.finals.items():
            assert restored.final_weight(perm[old_state]) == pytest.approx(
                packed.quantizer.quantize(weight)
            )

    def test_unigram_arcs_one_per_word(self, tiny_task):
        packed = pack_lm(tiny_task.lm)
        assert packed.unigram_arcs == packed.num_words

    def test_backoff_arc_count(self, tiny_task):
        graph = tiny_task.lm
        packed = pack_lm(graph)
        expected = sum(
            1 for s in graph.fst.states() if graph.backoff_arc(s) is not None
        )
        assert packed.backoff_arcs == expected

    def test_size_accounting(self, tiny_task):
        packed = pack_lm(tiny_task.lm)
        expected_bits = (
            packed.unigram_arcs * UNIGRAM_ARC_BITS
            + packed.backoff_arcs * BACKOFF_ARC_BITS
            + packed.regular_arcs * REGULAR_ARC_BITS
        )
        assert packed.bit_length == expected_bits

    def test_compression_beats_raw(self, tiny_task):
        from repro.wfst import uncompressed_size

        packed = pack_lm(tiny_task.lm)
        raw = uncompressed_size(tiny_task.lm.fst).arc_bytes
        assert packed.arc_bytes * 3 < raw

    def test_permutation_orders_bigram_states_by_word(self, tiny_task):
        graph = tiny_task.lm
        packed = pack_lm(graph)
        bigram_positions = []
        for context, state in graph.state_of_context.items():
            if len(context) == 1 and context[0] in graph.words:
                bigram_positions.append(
                    (graph.words.id_of(context[0]), packed.permutation[state])
                )
        bigram_positions.sort()
        new_ids = [new for _, new in bigram_positions]
        assert new_ids == sorted(new_ids)
        assert new_ids == list(range(1, len(new_ids) + 1))


class TestStatePack:
    def test_round_trip(self):
        offsets = [0, 20, 20, 58, 116, 116, 200, 400, 4000, 40_000]
        counts = [1, 0, 2, 3, 0, 4, 10, 180, 2000, 7]
        packed = pack_states(offsets, counts)
        assert unpack_states(packed) == (offsets, counts)

    def test_compression_ratio_positive(self):
        offsets = list(range(0, 64000, 40))
        counts = [2] * len(offsets)
        packed = pack_states(offsets, counts)
        assert packed.compression_ratio > 1.5
        assert packed.bits_per_state < 64

    def test_parallel_arrays_required(self):
        with pytest.raises(ValueError):
            pack_states([1, 2], [1])

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ValueError):
            pack_states([10, 5], [1, 1])

    def test_empty(self):
        packed = pack_states([], [])
        assert packed.bits_per_state == 0.0
        assert unpack_states(packed) == ([], [])

    def test_single_group_boundary(self):
        offsets = list(range(17))
        counts = [1] * 17
        packed = pack_states(offsets, counts)
        assert unpack_states(packed) == (offsets, counts)
