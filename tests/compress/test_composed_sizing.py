"""Tests for the composed-graph size model and dataset sizing."""

import pytest

from repro.compress import (
    PronunciationTrie,
    build_address_map,
    build_composed_model,
    measure_dataset_sizing,
    pack_composed_size,
)
from repro.wfst import uncompressed_size_bytes


class TestPronunciationTrie:
    def test_shared_prefixes_share_nodes(self):
        trie = PronunciationTrie()
        a = trie.insert([1, 2, 3])
        b = trie.insert([1, 2, 4])
        assert a[:2] == b[:2]
        assert a[2] != b[2]
        assert trie.num_nodes == 4

    def test_idempotent_insert(self):
        trie = PronunciationTrie()
        first = trie.insert([5, 6])
        second = trie.insert([5, 6])
        assert first == second
        assert trie.num_nodes == 2

    def test_first_child_tracking(self):
        trie = PronunciationTrie()
        path_a = trie.insert([1, 2])
        path_b = trie.insert([1, 3])
        assert trie.first_child_of_parent[path_a[0]]  # first child of root
        assert trie.first_child_of_parent[path_a[1]]  # first child of node 1
        assert not trie.first_child_of_parent[path_b[1]]  # second child


class TestComposedModel:
    def test_counts_positive_and_consistent(self, tiny_task):
        model = build_composed_model(tiny_task.am, tiny_task.lm)
        assert model.states > tiny_task.lm.fst.num_states
        assert model.arcs > model.states  # self-loops guarantee this
        assert model.short_arcs + model.long_arcs == model.arcs
        assert model.total_bytes == model.state_bytes + model.arc_bytes

    def test_blowup_vs_separate_models(self, tiny_task):
        """The composed graph dwarfs AM+LM (the paper's Table 1 shape)."""
        model = build_composed_model(tiny_task.am, tiny_task.lm)
        separate = uncompressed_size_bytes(tiny_task.am.fst) + uncompressed_size_bytes(
            tiny_task.lm.fst
        )
        assert model.total_bytes > 2 * separate

    def test_bounded_by_naive_product(self, tiny_task):
        """Prefix sharing keeps the model below the raw product graph."""
        model = build_composed_model(tiny_task.am, tiny_task.lm)
        product_states = (
            tiny_task.am.fst.num_states * tiny_task.lm.fst.num_states
        )
        assert model.states < product_states

    def test_at_least_real_trimmed_composition_scale(self, tiny_task):
        """Sanity against a real materialized composition (tiny task only).

        The det(L o G) model and the trimmed product are different
        graphs; they must agree within a small structural factor.
        """
        from repro.wfst import compose, connect

        composed = connect(
            compose(
                tiny_task.am.fst,
                tiny_task.lm.fst,
                phi_label=tiny_task.lm.backoff_label,
            )
        )
        model = build_composed_model(tiny_task.am, tiny_task.lm)
        # Prefix sharing (determinization) makes the det-style model
        # smaller than the raw product, but it must stay within an
        # order of magnitude and never exceed the product.
        assert model.states <= composed.num_states
        assert model.states >= composed.num_states / 10
        assert model.arcs <= composed.num_arcs
        assert model.arcs >= composed.num_arcs / 10

    def test_per_lm_state_blocks_cover_all_nodes(self, tiny_task):
        model = build_composed_model(tiny_task.am, tiny_task.lm)
        assert len(model.lm_state_base) == tiny_task.lm.fst.num_states
        assert sum(model.lm_state_nodes) == model.lm_state_base[-1] + model.lm_state_nodes[-1]


class TestAddressMap:
    def test_addresses_within_dataset(self, tiny_task):
        address_map = build_address_map(tiny_task.am, tiny_task.lm)
        model = address_map.model
        for am_state in range(0, tiny_task.am.fst.num_states, 7):
            for lm_state in range(0, tiny_task.lm.fst.num_states, 5):
                addr = address_map.state_address(am_state, lm_state)
                assert 0 <= addr < model.state_bytes
                arc_addr = address_map.arc_address(am_state, lm_state, 0)
                assert model.state_bytes <= arc_addr

    def test_loop_state_maps_to_backbone(self, tiny_task):
        address_map = build_address_map(tiny_task.am, tiny_task.lm)
        for lm_state in range(tiny_task.lm.fst.num_states):
            assert address_map.state_index(0, lm_state) == lm_state

    def test_deterministic(self, tiny_task):
        address_map = build_address_map(tiny_task.am, tiny_task.lm)
        assert address_map.state_address(3, 2) == address_map.state_address(3, 2)

    def test_different_lm_states_differ(self, tiny_task):
        address_map = build_address_map(tiny_task.am, tiny_task.lm)
        a = address_map.state_index(1, 0)
        b = address_map.state_index(1, 1)
        # Same AM chain state paired with different LM histories lives in
        # different dataset regions: the composed graph's defining cost.
        assert a != b


class TestDatasetSizing:
    def test_figure8_ordering(self, tiny_task):
        """Fully-Composed > +Comp > On-the-fly > +Comp, as in Figure 8."""
        sizing = measure_dataset_sizing(tiny_task)
        assert sizing.composed_bytes > sizing.composed_comp_bytes
        assert sizing.composed_comp_bytes > sizing.onthefly_bytes
        assert sizing.onthefly_bytes > sizing.onthefly_comp_bytes

    def test_reduction_ratios(self, tiny_task):
        sizing = measure_dataset_sizing(tiny_task)
        assert sizing.unfold_reduction > 8  # paper: 23x-35x at full scale
        assert sizing.compression_vs_price > 2  # paper: 8.8x average
        assert sizing.composition_blowup > 2  # paper: 5x-11x

    def test_row_rendering(self, tiny_task):
        row = measure_dataset_sizing(tiny_task).as_row()
        assert row["task"] == tiny_task.name
        assert row["fully_composed_mb"] > row["onthefly_comp_mb"]

    def test_composed_pack_consistency(self, tiny_task):
        model = build_composed_model(tiny_task.am, tiny_task.lm)
        packed = pack_composed_size(model)
        assert packed.total_bytes < model.total_bytes
        assert packed.total_bytes > model.arcs * 20 // 8  # floor: all short
