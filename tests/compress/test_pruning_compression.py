"""Cross-cutting: LM pruning shrinks the packed dataset (paper §2+§3.4).

Pruning is the software-side size lever; packing the hardware-side one.
They must compose: a pruned model packs smaller, still decodes, and
drives *more* back-off traffic — the trade the paper's §3.3 hardware
exists to make cheap.
"""

import numpy as np
import pytest

from repro.compress import pack_lm
from repro.core import DecoderConfig, LmLookup, LookupStrategy, OnTheFlyDecoder
from repro.lm import build_lm_graph, prune_model, train_ngram_model


@pytest.fixture(scope="module")
def pruned_pair(tiny_task):
    baseline = train_ngram_model(
        tiny_task.corpus, tiny_task.grammar.vocabulary, order=3, cutoffs=(1, 1, 1)
    )
    pruned = train_ngram_model(
        tiny_task.corpus, tiny_task.grammar.vocabulary, order=3, cutoffs=(1, 1, 1)
    )
    prune_model(pruned, threshold=3e-4)
    return baseline, pruned


class TestPruningCompression:
    def test_packed_size_shrinks(self, pruned_pair):
        baseline, pruned = pruned_pair
        base_packed = pack_lm(build_lm_graph(baseline))
        pruned_packed = pack_lm(build_lm_graph(pruned))
        assert pruned_packed.size_bytes < base_packed.size_bytes
        assert pruned_packed.regular_arcs < base_packed.regular_arcs

    def test_backoff_traffic_increases(self, pruned_pair, tiny_task):
        """Heavy pruning forces resolution through back-off arcs.

        (Light pruning can shift individual paths either way — removing
        a trigram state can land resolution on a bigram state that has
        the word directly — so the claim is tested at a threshold that
        removes most higher-order n-grams.)
        """
        baseline, _ = pruned_pair
        heavy = train_ngram_model(
            tiny_task.corpus,
            tiny_task.grammar.vocabulary,
            order=3,
            cutoffs=(1, 1, 1),
        )
        prune_model(heavy, threshold=5e-2)
        base_lookup = LmLookup(
            build_lm_graph(baseline), strategy=LookupStrategy.BINARY
        )
        pruned_lookup = LmLookup(
            build_lm_graph(heavy), strategy=LookupStrategy.BINARY
        )
        sentences = [
            tiny_task.grammar.sample_sentence(max_len=6) for _ in range(20)
        ]
        for lookup in (base_lookup, pruned_lookup):
            graph = lookup.graph
            for sentence in sentences:
                state = graph.fst.start
                for word in sentence:
                    result = lookup.resolve(state, graph.word_id(word))
                    state = result.next_state
        assert (
            pruned_lookup.stats.backoff_arcs_taken
            >= base_lookup.stats.backoff_arcs_taken
        )

    def test_pruned_model_still_decodes(self, pruned_pair, tiny_task, tiny_scorer):
        _, pruned = pruned_pair
        graph = build_lm_graph(pruned)
        decoder = OnTheFlyDecoder(tiny_task.am, graph, DecoderConfig(beam=14.0))
        utterances = tiny_task.test_set(4, max_words=4)
        correct = 0
        for utterance in utterances:
            result = decoder.decode(tiny_scorer.score(utterance.features))
            assert result.success
            correct += result.words == utterance.words
        assert correct >= 2  # accuracy degrades gracefully, not fatally

    def test_normalization_after_prune_and_pack(self, pruned_pair):
        """Packing a pruned graph preserves the invariants both need."""
        _, pruned = pruned_pair
        graph = build_lm_graph(pruned)  # invariant checks inside
        packed = pack_lm(graph)
        assert packed.unigram_arcs == packed.num_words
