"""Tests for bit I/O and k-means weight quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    BitReader,
    BitWriter,
    WeightQuantizer,
    bits_needed,
    fit_wfst_quantizer,
    quantize_wfst,
)
from repro.wfst import linear_chain


class TestBits:
    def test_round_trip_mixed_widths(self):
        writer = BitWriter()
        fields = [(5, 3), (1023, 10), (0, 1), (77, 7), (2**20 - 1, 20)]
        for value, width in fields:
            writer.write(value, width)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        for value, width in fields:
            assert reader.read(width) == value
        assert reader.exhausted()

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(8, 3)
        with pytest.raises(ValueError):
            writer.write(-1, 3)
        with pytest.raises(ValueError):
            writer.write(0, 0)

    def test_read_past_end_rejected(self):
        writer = BitWriter()
        writer.write(1, 4)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        reader.read(4)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_seek(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b11110000, 8)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        reader.seek(3)
        assert reader.read(8) == 0b11110000
        reader.seek(0)
        assert reader.read(3) == 0b101
        with pytest.raises(ValueError):
            reader.seek(-1)

    def test_byte_length(self):
        writer = BitWriter()
        writer.write(1, 9)
        assert writer.byte_length == 2

    def test_bits_needed(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9
        with pytest.raises(ValueError):
            bits_needed(-1)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=24), st.data()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, specs):
        writer = BitWriter()
        expected = []
        for width, data in specs:
            value = data.draw(st.integers(min_value=0, max_value=2**width - 1))
            writer.write(value, width)
            expected.append((value, width))
        reader = BitReader(writer.getvalue(), writer.bit_length)
        for value, width in expected:
            assert reader.read(width) == value


class TestQuantizer:
    def test_few_unique_values_exact(self):
        quantizer = WeightQuantizer.fit(np.array([1.0, 2.0, 3.0] * 10), clusters=8)
        for w in (1.0, 2.0, 3.0):
            assert quantizer.quantize(w) == w

    def test_centroids_sorted(self):
        rng = np.random.default_rng(0)
        quantizer = WeightQuantizer.fit(rng.exponential(2.0, size=5000))
        assert np.all(np.diff(quantizer.centroids) >= 0)

    def test_64_clusters_6_bits(self):
        rng = np.random.default_rng(1)
        quantizer = WeightQuantizer.fit(rng.normal(5, 2, size=2000))
        assert quantizer.num_clusters == 64
        assert quantizer.index_bits == 6

    def test_error_small_on_smooth_distribution(self):
        rng = np.random.default_rng(2)
        weights = rng.exponential(3.0, size=10_000)
        quantizer = WeightQuantizer.fit(weights)
        # 64 clusters over an exponential: worst error (a tail point)
        # bounded by the spread; typical error far smaller.
        assert quantizer.max_error(weights) < 2 * weights.std()
        mean_err = np.abs(
            quantizer.centroids[quantizer.encode_many(weights)] - weights
        ).mean()
        assert mean_err < 0.1 * weights.std()

    def test_encode_decode_consistent(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(0, 1, size=500)
        quantizer = WeightQuantizer.fit(weights, clusters=16)
        for w in weights[:50]:
            idx = quantizer.encode(w)
            assert 0 <= idx < 16
            assert quantizer.decode(idx) == quantizer.quantize(w)

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightQuantizer.fit(np.array([np.inf]))

    def test_quantize_wfst(self):
        fst = linear_chain([(1, 1, 0.123), (2, 2, 9.87)])
        fst.set_final(2, 0.5)
        quantizer = fit_wfst_quantizer(fst)
        quantized = quantize_wfst(fst, quantizer)
        for (_, a), (_, b) in zip(quantized.all_arcs(), fst.all_arcs()):
            assert a.weight == quantizer.quantize(b.weight)
        assert quantized.final_weight(2) == quantizer.quantize(0.5)
        # Original untouched.
        assert fst.out_arcs(0)[0].weight == 0.123

    def test_infinite_final_weight_preserved(self):
        import math

        fst = linear_chain([(1, 1, 1.0)])
        fst.set_final(0, math.inf)
        quantizer = fit_wfst_quantizer(fst)
        quantized = quantize_wfst(fst, quantizer)
        assert quantized.final_weight(0) == math.inf

    @given(st.lists(st.floats(min_value=0, max_value=50, allow_nan=False), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_quantization_error_bounded_by_span(self, weights):
        arr = np.asarray(weights)
        quantizer = WeightQuantizer.fit(arr, clusters=8)
        assert quantizer.max_error(arr) <= (arr.max() - arr.min()) + 1e-9
