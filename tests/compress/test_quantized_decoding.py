"""Integration: decoding through the compressed models.

Section 3.4 claims the 6-bit weight quantization changes WER by less
than 0.01%.  Here the claim is exercised end to end: the AM and LM are
packed to their bit formats, unpacked again, and the decoder runs on
the reconstructed (quantized, renumbered) graphs.  Recognition output
must match the uncompressed decoder's.
"""

import pytest

from repro.am.graph import AmGraph
from repro.compress import pack_am, pack_lm, unpack_am, unpack_lm
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.lm.graph import LmGraph


@pytest.fixture(scope="module")
def quantized_task(tiny_task):
    """The tiny task rebuilt from its packed representations."""
    packed_am = pack_am(tiny_task.am.fst)
    am_fst = unpack_am(packed_am)
    am = AmGraph(
        fst=am_fst,
        words=tiny_task.am.words,
        topology=tiny_task.am.topology,
        loop_state=tiny_task.am.loop_state,
        num_senones=tiny_task.am.num_senones,
        chain_state_senone=tiny_task.am.chain_state_senone,
    )

    packed_lm = pack_lm(tiny_task.lm)
    lm_fst = unpack_lm(packed_lm)
    perm = packed_lm.permutation
    state_of_context = {
        ctx: perm[state] for ctx, state in tiny_task.lm.state_of_context.items()
    }
    context_of_state = [()] * lm_fst.num_states
    for ctx, state in state_of_context.items():
        context_of_state[state] = ctx
    lm = LmGraph(
        fst=lm_fst,
        words=tiny_task.lm.words,
        backoff_label=packed_lm.backoff_label,
        state_of_context=state_of_context,
        context_of_state=context_of_state,
    )
    lm.fst.arcsort("ilabel")
    return am, lm, packed_am, packed_lm


class TestQuantizedDecoding:
    def test_unigram_state_still_zero(self, quantized_task):
        _, lm, _, _ = quantized_task
        assert lm.state_of_context[()] == 0

    def test_same_recognition_output(self, tiny_task, tiny_scores, quantized_task):
        am, lm, _, _ = quantized_task
        config = DecoderConfig(beam=14.0, preemptive_pruning=False)
        reference = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, config)
        quantized = OnTheFlyDecoder(am, lm, config)
        agree = 0
        for scores in tiny_scores:
            a = reference.decode(scores)
            b = quantized.decode(scores)
            if a.words == b.words:
                agree += 1
        # Paper: < 0.01% WER change.  At tiny scale: identical outputs,
        # allowing at most one borderline utterance to flip.
        assert agree >= len(tiny_scores) - 1

    def test_costs_within_quantization_error(
        self, tiny_task, tiny_scores, quantized_task
    ):
        am, lm, packed_am, packed_lm = quantized_task
        config = DecoderConfig(beam=14.0, preemptive_pruning=False)
        reference = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, config)
        quantized = OnTheFlyDecoder(am, lm, config)
        a = reference.decode(tiny_scores[0])
        b = quantized.decode(tiny_scores[0])
        if a.words == b.words and a.success:
            # Arc count on the path bounds the accumulated rounding error.
            max_err = max(
                packed_am.quantizer.max_error(
                    __import__("numpy").array(
                        [arc.weight for _, arc in tiny_task.am.fst.all_arcs()]
                    )
                ),
                packed_lm.quantizer.max_error(
                    __import__("numpy").array(
                        [arc.weight for _, arc in tiny_task.lm.fst.all_arcs()]
                    )
                ),
            )
            frames = tiny_scores[0].shape[0]
            budget = max_err * (2 * frames + 10) + 1e-6
            assert abs(a.cost - b.cost) <= budget
