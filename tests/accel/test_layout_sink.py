"""Tests for memory layouts, trace sinks and the cycle model."""

import pytest

from repro.accel import REZA, UNFOLD, ComposedLayout, OnTheFlyLayout
from repro.accel.dram import DramModel, Traffic
from repro.accel.pipeline import cycles_for
from repro.accel.sink import ComposedSink, UnfoldSink
from repro.accel.stats import RunReport, UtteranceTiming
from repro.core.decoder import DecoderStats
from repro.core.trace import GraphSide


@pytest.fixture(scope="module")
def layout(tiny_task):
    return OnTheFlyLayout.build(tiny_task)


@pytest.fixture(scope="module")
def composed_layout(tiny_task):
    return ComposedLayout.build(tiny_task)


class TestOnTheFlyLayout:
    def test_regions_do_not_overlap(self, layout, tiny_task):
        am_states_end = tiny_task.am.fst.num_states * 5
        am_arc_addr, _ = layout.am_arc_record(0, 0)
        lm_state_addr, _ = layout.lm_state_record(0)
        lm_arc_addr, _ = layout.lm_arc_record(0, 0)
        assert am_states_end <= am_arc_addr
        assert am_arc_addr < lm_state_addr < lm_arc_addr
        assert layout.total_bytes > lm_arc_addr

    def test_arc_addresses_monotone_within_state(self, layout, tiny_task):
        for state in range(tiny_task.am.fst.num_states):
            arcs = tiny_task.am.fst.out_arcs(state)
            addrs = [layout.am_arc_record(state, i)[0] for i in range(len(arcs))]
            assert addrs == sorted(addrs)

    def test_lm_backoff_is_last_record(self, layout, tiny_task):
        lm = tiny_task.lm
        for state in range(lm.fst.num_states):
            if lm.backoff_arc(state) is None:
                continue
            word_count = len(lm.fst.out_arcs(state)) - 1
            last_word_addr, _ = layout.lm_arc_record(state, word_count - 1)
            backoff_addr, _ = layout.lm_arc_record(state, word_count)
            assert backoff_addr >= last_word_addr

    def test_total_bytes_matches_sizing(self, layout):
        expected = (
            layout.packed_am.num_states * 5
            + layout.packed_am.arc_bytes
            + layout.packed_lm.num_states * 5
            + layout.packed_lm.arc_bytes
        )
        assert layout.total_bytes == expected

    def test_per_arc_offsets_cover_all_arcs(self, layout, tiny_task):
        total = sum(len(row) for row in layout.am_arc_bit_offsets)
        assert total == tiny_task.am.fst.num_arcs


class TestComposedLayout:
    def test_total_is_model_bytes(self, composed_layout):
        assert composed_layout.total_bytes == composed_layout.address_map.model.total_bytes

    def test_state_addresses_in_range(self, composed_layout, tiny_task):
        num_lm = tiny_task.lm.fst.num_states
        for am_state in (0, 1, 5):
            for lm_state in (0, 1):
                composed = am_state * num_lm + lm_state
                addr, size = composed_layout.state_record(composed, num_lm)
                assert 0 <= addr < composed_layout.address_map.model.state_bytes
                assert size == 8


class TestUnfoldSink:
    def test_events_drive_caches_and_dram(self, tiny_task, layout):
        sink = UnfoldSink(UNFOLD.scaled(1 / 16), layout)
        sink.on_state_fetch(GraphSide.AM, 0)
        sink.on_arc_fetch(GraphSide.AM, 0, 0)
        sink.on_arc_fetch(GraphSide.LM, 0, 0)
        sink.on_token_write(8)
        sink.on_token_hash_access(0, 0)
        sink.on_olt_access(0, 1, True)
        sink.on_frame_end(0, 3)
        assert sink.state_cache.stats.accesses >= 1
        assert sink.am_arc_cache.stats.accesses >= 1
        assert sink.lm_arc_cache.stats.accesses >= 1
        assert sink.token_cache.stats.accesses >= 1
        assert sink.sram.hash_accesses == 1
        assert sink.sram.olt_accesses == 1
        assert sink.dram.total_lines >= 2  # cold misses

    def test_finish_utterance_flushes_tokens(self, tiny_task, layout):
        sink = UnfoldSink(UNFOLD.scaled(1 / 16), layout)
        sink.on_token_write(8)
        before = sink.dram.writes[Traffic.TOKENS]
        sink.finish_utterance()
        assert sink.dram.writes[Traffic.TOKENS] == before + 1

    def test_requires_lm_cache(self, layout):
        with pytest.raises(ValueError):
            UnfoldSink(REZA, layout)


class TestComposedSink:
    def test_no_olt_allowed(self, tiny_task, composed_layout):
        sink = ComposedSink(
            REZA.scaled(1 / 16), composed_layout, tiny_task.lm.fst.num_states
        )
        with pytest.raises(AssertionError):
            sink.on_olt_access(0, 1, True)

    def test_single_arc_cache(self, tiny_task, composed_layout):
        sink = ComposedSink(
            REZA.scaled(1 / 16), composed_layout, tiny_task.lm.fst.num_states
        )
        sink.on_arc_fetch(GraphSide.COMPOSED, 5, 0)
        assert sink.arc_cache.stats.accesses >= 1
        assert set(sink.caches()) == {"state_cache", "arc_cache", "token_cache"}


class TestCycleModel:
    def _stats(self, **kwargs):
        stats = DecoderStats()
        for key, value in kwargs.items():
            setattr(stats, key, value)
        return stats

    def test_components_sum(self):
        stats = self._stats(expansions=100, am_state_fetches=10, token_writes=5)
        stats.lookup.arc_probes = 20
        stats.lookup.olt_hits = 7
        stats.lookup.backoff_arcs_taken = 3
        dram = DramModel()
        dram.read_lines(Traffic.ARCS, 32)
        report = cycles_for(stats, dram)
        assert report.total_cycles == pytest.approx(
            report.expansion_cycles
            + report.lookup_cycles
            + report.backoff_cycles
            + report.state_fetch_cycles
            + report.token_cycles
            + report.dram_stall_cycles
        )
        assert report.dram_stall_cycles > 0
        assert report.seconds(800e6) == report.total_cycles / 800e6

    def test_probes_cost_more_than_olt_hits(self):
        probing = self._stats()
        probing.lookup.arc_probes = 100
        hitting = self._stats()
        hitting.lookup.olt_hits = 100
        dram = DramModel()
        assert (
            cycles_for(probing, dram).total_cycles
            > cycles_for(hitting, dram).total_cycles
        )


class TestRunReport:
    def test_realtime_factor(self):
        report = RunReport(platform="x", task_name="y")
        report.utterances.append(UtteranceTiming(frames=100, decode_seconds=0.01))
        assert report.speech_seconds == pytest.approx(1.0)
        assert report.realtime_factor == pytest.approx(100.0)
        assert report.avg_latency_ms == pytest.approx(10.0)
        assert report.max_latency_ms == pytest.approx(10.0)

    def test_empty_report(self):
        report = RunReport(platform="x", task_name="y")
        assert report.avg_latency_ms == 0.0
        assert report.energy_mj_per_speech_second == 0.0
        assert report.bandwidth_mb_per_second == 0.0

    def test_bandwidth_by_class(self):
        report = RunReport(platform="x", task_name="y")
        report.utterances.append(UtteranceTiming(frames=100, decode_seconds=1.0))
        report.dram_bytes_by_class = {
            Traffic.STATES: 2**20,
            Traffic.ARCS: 2**21,
            Traffic.TOKENS: 0,
        }
        bw = report.bandwidth_by_class_mb_per_second()
        assert bw["states"] == pytest.approx(1.0)
        assert bw["arcs"] == pytest.approx(2.0)
        assert report.bandwidth_mb_per_second == pytest.approx(3.0)
