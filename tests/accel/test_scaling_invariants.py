"""Invariants of hardware scaling across factors (property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import REZA, UNFOLD

factors = st.sampled_from([1.0, 1 / 2, 1 / 4, 1 / 8, 1 / 16, 1 / 32, 1 / 64])


@settings(max_examples=20, deadline=None)
@given(factors)
def test_scaling_preserves_design_relationships(factor):
    """The paper's design relationships survive any uniform scaling."""
    unfold = UNFOLD.scaled(factor)
    reza = REZA.scaled(factor)
    # UNFOLD's headline structural properties (Table 3).
    assert unfold.has_lm_cache and unfold.has_offset_table
    assert not reza.has_lm_cache and not reza.has_offset_table
    # UNFOLD trades cache capacity for the OLT and compression.
    unfold_caches = (
        unfold.state_cache_kb
        + unfold.am_arc_cache_kb
        + unfold.lm_arc_cache_kb
        + unfold.token_cache_kb
    )
    reza_caches = (
        reza.state_cache_kb + reza.am_arc_cache_kb + reza.token_cache_kb
    )
    assert unfold_caches <= reza_caches
    # Valid geometries at every scale.
    for which in ("state", "am_arc", "lm_arc", "token"):
        unfold.cache_config(which)
    for which in ("state", "am_arc", "token"):
        reza.cache_config(which)


@settings(max_examples=20, deadline=None)
@given(factors, factors)
def test_scaling_monotone(f1, f2):
    """A smaller factor never yields bigger caches."""
    if f1 > f2:
        f1, f2 = f2, f1
    small = UNFOLD.scaled(f1)
    big = UNFOLD.scaled(f2)
    assert small.state_cache_kb <= big.state_cache_kb
    assert small.am_arc_cache_kb <= big.am_arc_cache_kb
    assert small.offset_table_entries <= big.offset_table_entries
    assert small.hash_entries <= big.hash_entries


@settings(max_examples=15, deadline=None)
@given(factors)
def test_olt_entries_power_of_two(factor):
    scaled = UNFOLD.scaled(factor)
    entries = scaled.offset_table_entries
    assert entries > 0
    assert entries & (entries - 1) == 0


def test_total_sram_accounting():
    assert UNFOLD.total_sram_kb > 0
    # Table 3 sum: 256+512+32+128+576+64 caches/buffers + 192 OLT.
    assert UNFOLD.total_sram_kb == pytest.approx(256 + 512 + 32 + 128 + 576 + 64 + 192)
    assert REZA.total_sram_kb == pytest.approx(512 + 1024 + 512 + 768 + 64)
