"""Tests for the cache, write buffer and DRAM models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import Cache, CacheConfig, DramModel, Traffic, WriteBuffer


def _cache(capacity=1024, ways=2, line=64):
    return Cache(CacheConfig("test", capacity, ways, line))


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert cache.access(0) == 1
        assert cache.access(0) == 0
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = _cache()
        cache.access(0)
        assert cache.access(63) == 0
        assert cache.access(64) == 1  # next line

    def test_multi_line_access(self):
        cache = _cache()
        assert cache.access(0, size=130) == 3  # lines 0,1,2

    def test_lru_eviction(self):
        # 2 ways, 8 sets; three lines mapping to set 0.
        cache = _cache(capacity=1024, ways=2, line=64)
        sets = cache.config.num_sets
        a, b, c = 0, sets * 64, 2 * sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert cache.stats.evictions == 1
        assert cache.access(b) == 0  # still resident
        assert cache.access(a) == 1  # was evicted

    def test_lru_updated_on_hit(self):
        cache = _cache(capacity=1024, ways=2, line=64)
        sets = cache.config.num_sets
        a, b, c = 0, sets * 64, 2 * sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b
        assert cache.access(a) == 0
        assert cache.access(b) == 1

    def test_flush(self):
        cache = _cache()
        cache.access(0)
        cache.flush()
        assert cache.resident_lines == 0
        assert cache.access(0) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 32, 2, 64)
        with pytest.raises(ValueError):
            CacheConfig("bad", 100, 2, 64)

    def test_invalid_access(self):
        with pytest.raises(ValueError):
            _cache().access(0, size=0)

    def test_whole_working_set_fits(self):
        """A dataset smaller than capacity converges to zero misses."""
        cache = _cache(capacity=4096, ways=4)
        for _ in range(3):
            for addr in range(0, 2048, 64):
                cache.access(addr)
        # 32 cold misses, everything else hits.
        assert cache.stats.misses == 32
        assert cache.stats.hits == 64

    def test_thrashing_working_set(self):
        """A working set far beyond capacity keeps missing (paper's point)."""
        cache = _cache(capacity=1024, ways=2)
        for _ in range(3):
            for addr in range(0, 64 * 1024, 64):
                cache.access(addr)
        assert cache.stats.miss_ratio > 0.9

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300)
    )
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariants(self, addresses):
        cache = _cache(capacity=512, ways=2)
        for addr in addresses:
            cache.access(addr)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert 0.0 <= stats.miss_ratio <= 1.0
        assert stats.evictions <= stats.misses
        assert cache.resident_lines <= cache.config.num_sets * 2

    @given(st.lists(st.integers(min_value=0, max_value=4_000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_never_misses_more(self, addresses):
        """Capacity monotonicity under LRU (inclusion property)."""
        small = _cache(capacity=512, ways=2)
        big = _cache(capacity=2048, ways=2)
        for addr in addresses:
            small.access(addr)
            big.access(addr)
        # LRU with power-of-two sets is not strictly inclusive across
        # different set counts; allow a tiny margin.
        assert big.stats.misses <= small.stats.misses + 2


class TestWriteBuffer:
    def test_sequential_writes_coalesce(self):
        buffer = WriteBuffer(line_bytes=64)
        flushed = sum(buffer.write(i * 8, 8) for i in range(8))  # one line
        assert flushed == 0
        assert buffer.write(64 * 10, 8) == 1  # line change flushes
        assert buffer.flush() == 1

    def test_flush_idempotent(self):
        buffer = WriteBuffer()
        buffer.write(0, 8)
        assert buffer.flush() == 1
        assert buffer.flush() == 0

    def test_bytes_tracked(self):
        buffer = WriteBuffer()
        buffer.write(0, 10)
        buffer.write(100, 6)
        assert buffer.bytes_written == 16

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WriteBuffer().write(0, 0)


class TestDram:
    def test_traffic_classes_tracked(self):
        dram = DramModel()
        dram.read_lines(Traffic.STATES, 2)
        dram.read_lines(Traffic.ARCS, 3)
        dram.write_lines(Traffic.TOKENS, 1)
        assert dram.total_lines == 6
        assert dram.total_bytes == 6 * 64
        by_class = dram.bytes_by_class()
        assert by_class[Traffic.STATES] == 128
        assert by_class[Traffic.ARCS] == 192
        assert by_class[Traffic.TOKENS] == 64

    def test_stalls_amortized_over_window(self):
        dram = DramModel()
        dram.read_lines(Traffic.ARCS, 32)
        assert dram.stall_cycles() == pytest.approx(dram.config.latency_cycles)

    def test_energy_positive_and_monotone(self):
        dram = DramModel()
        dram.read_lines(Traffic.ARCS, 10)
        e1 = dram.access_energy_pj()
        dram.read_lines(Traffic.ARCS, 10)
        assert dram.access_energy_pj() == pytest.approx(2 * e1)
        assert dram.background_energy_pj(1.0) > 0

    def test_bandwidth(self):
        dram = DramModel()
        dram.read_lines(Traffic.ARCS, 1000)
        assert dram.bandwidth_bytes_per_second(2.0) == pytest.approx(32_000)
        assert dram.bandwidth_bytes_per_second(0) == 0.0

    def test_negative_lines_rejected(self):
        with pytest.raises(ValueError):
            DramModel().read_lines(Traffic.ARCS, -1)

    def test_reset(self):
        dram = DramModel()
        dram.read_lines(Traffic.STATES, 5)
        dram.reset()
        assert dram.total_lines == 0
