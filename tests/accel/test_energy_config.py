"""Tests for the energy model and accelerator configurations."""

import pytest

from repro.accel import (
    REZA,
    UNFOLD,
    EnergyBreakdown,
    mj_per_second_of_speech,
    sram_area_mm2,
    sram_leakage_mw,
    sram_read_energy_pj,
)


class TestEnergyScaling:
    def test_sram_energy_grows_with_capacity(self):
        assert sram_read_energy_pj(1 << 20) > sram_read_energy_pj(32 << 10)

    def test_sqrt_shape(self):
        # Quadrupling capacity doubles per-access energy.
        assert sram_read_energy_pj(128 << 10) == pytest.approx(
            2 * sram_read_energy_pj(32 << 10)
        )

    def test_leakage_and_area_linear(self):
        assert sram_leakage_mw(2048) == pytest.approx(2 * sram_leakage_mw(1024))
        assert sram_area_mm2(2048) == pytest.approx(2 * sram_area_mm2(1024))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            sram_read_energy_pj(0)

    def test_breakdown_power(self):
        breakdown = EnergyBreakdown(
            by_component={"a": 0.5, "b": 1.5}, seconds=2.0
        )
        assert breakdown.total_joules == 2.0
        assert breakdown.power_mw() == {"a": 250.0, "b": 750.0}
        assert breakdown.total_power_mw == 1000.0

    def test_mj_per_second(self):
        assert mj_per_second_of_speech(0.010, 2.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            mj_per_second_of_speech(1.0, 0.0)


class TestConfigs:
    def test_table3_values(self):
        assert UNFOLD.state_cache_kb == 256
        assert UNFOLD.am_arc_cache_kb == 512
        assert UNFOLD.lm_arc_cache_kb == 32
        assert UNFOLD.token_cache_kb == 128
        assert UNFOLD.offset_table_entries == 32 * 1024
        assert UNFOLD.frequency_hz == 800e6
        assert REZA.state_cache_kb == 512
        assert REZA.am_arc_cache_kb == 1024
        assert not REZA.has_lm_cache
        assert not REZA.has_offset_table
        assert REZA.frequency_hz == 600e6

    def test_unfold_smaller_total_sram(self):
        """Section 3.5: UNFOLD's caches shrink versus the baseline."""
        unfold_caches = (
            UNFOLD.state_cache_kb
            + UNFOLD.am_arc_cache_kb
            + UNFOLD.lm_arc_cache_kb
            + UNFOLD.token_cache_kb
        )
        reza_caches = (
            REZA.state_cache_kb + REZA.am_arc_cache_kb + REZA.token_cache_kb
        )
        assert unfold_caches < reza_caches

    def test_cache_config_generation(self):
        config = UNFOLD.cache_config("state")
        assert config.capacity_bytes == 256 * 1024
        assert config.associativity == 4
        with pytest.raises(ValueError):
            REZA.cache_config("lm_arc")

    def test_scaling_preserves_structure(self):
        scaled = UNFOLD.scaled(1 / 64)
        assert scaled.has_lm_cache
        assert scaled.has_offset_table
        assert scaled.state_cache_kb < UNFOLD.state_cache_kb
        assert scaled.am_arc_cache_kb >= scaled.lm_arc_cache_kb
        # Scaled caches remain valid geometries.
        for which in ("state", "am_arc", "lm_arc", "token"):
            scaled.cache_config(which)

    def test_scaling_baseline_keeps_no_olt(self):
        scaled = REZA.scaled(1 / 64)
        assert scaled.offset_table_entries == 0
        assert scaled.lm_arc_cache_kb == 0

    def test_scaled_for_dataset(self):
        tiny = UNFOLD.scaled_for(1 << 20)  # 1 MB dataset
        assert tiny.state_cache_kb <= 4
        full = UNFOLD.scaled_for(1 << 40)
        assert full.state_cache_kb == UNFOLD.state_cache_kb

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            UNFOLD.scaled(0)
        with pytest.raises(ValueError):
            UNFOLD.scaled(2.0)
