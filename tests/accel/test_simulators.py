"""End-to-end simulator tests: UNFOLD vs the baseline vs the GPU.

These are the integration tests behind the paper's headline claims:
smaller dataset, fewer DRAM accesses, lower energy, modest slowdown.
"""

import pytest

from repro.accel import (
    REZA,
    UNFOLD,
    FullyComposedSimulator,
    GpuModel,
    UnfoldSimulator,
)
from repro.accel.layout import OnTheFlyLayout


@pytest.fixture(scope="module")
def scaled_configs(tiny_task):
    layout = OnTheFlyLayout.build(tiny_task)
    # Anchor cache pressure to this task's dataset, as the experiments do.
    unfold = UNFOLD.scaled(1 / 256)
    reza = REZA.scaled(1 / 256)
    del layout
    return unfold, reza


@pytest.fixture(scope="module")
def unfold_report(tiny_task, tiny_scores, scaled_configs):
    sim = UnfoldSimulator(tiny_task, config=scaled_configs[0])
    return sim.run(tiny_scores)


@pytest.fixture(scope="module")
def reza_report(tiny_task, tiny_scores, scaled_configs):
    sim = FullyComposedSimulator(tiny_task, config=scaled_configs[1])
    return sim.run(tiny_scores)


class TestUnfoldSimulator:
    def test_report_structure(self, unfold_report, tiny_scores):
        assert len(unfold_report.utterances) == len(tiny_scores)
        assert unfold_report.decode_seconds > 0
        assert unfold_report.speech_seconds > 0
        assert unfold_report.energy is not None
        assert unfold_report.energy.total_joules > 0
        assert unfold_report.area_mm2 > 0
        assert len(unfold_report.results) == len(tiny_scores)

    def test_realtime_by_large_margin(self, unfold_report):
        """The paper's UNFOLD runs 155x faster than real time."""
        assert unfold_report.realtime_factor > 10

    def test_miss_ratios_present_and_sane(self, unfold_report):
        for name in ("state_cache", "am_arc_cache", "lm_arc_cache", "token_cache"):
            assert 0.0 <= unfold_report.miss_ratios[name] <= 1.0

    def test_energy_breakdown_components(self, unfold_report):
        components = set(unfold_report.energy.by_component)
        assert {
            "state_cache",
            "arc_caches",
            "token_cache",
            "hash_tables",
            "offset_lookup_table",
            "pipeline",
            "main_memory",
        } <= components

    def test_olt_power_is_small_share(self, unfold_report):
        """Section 5.1: the OLT dissipates ~5% of total power."""
        power = unfold_report.energy.power_mw()
        share = power["offset_lookup_table"] / unfold_report.energy.total_power_mw
        assert share < 0.15

    def test_dataset_bytes_reported(self, tiny_task, scaled_configs):
        sim = UnfoldSimulator(tiny_task, config=scaled_configs[0])
        assert 0 < sim.dataset_bytes < 10 << 20


class TestBaselineComparison:
    """The paper's headline comparisons (Sections 5.1)."""

    def test_same_recognition_output(self, unfold_report, reza_report):
        ours = [r.words for r in unfold_report.results]
        theirs = [r.words for r in reza_report.results]
        assert ours == theirs

    def test_unfold_dataset_much_smaller(self, tiny_task, scaled_configs):
        unfold_bytes = UnfoldSimulator(tiny_task, config=scaled_configs[0]).dataset_bytes
        reza_bytes = FullyComposedSimulator(
            tiny_task, config=scaled_configs[1]
        ).dataset_bytes
        assert reza_bytes / unfold_bytes > 8  # paper: 31x at full scale

    def test_unfold_fewer_dram_accesses(self, unfold_report, reza_report):
        """Paper: 68% fewer off-chip accesses on average."""
        ours = sum(unfold_report.dram_bytes_by_class.values())
        theirs = sum(reza_report.dram_bytes_by_class.values())
        assert ours < theirs

    def test_unfold_lower_energy(self, unfold_report, reza_report):
        """Paper: 28% average energy saving."""
        assert (
            unfold_report.energy_mj_per_speech_second
            < reza_report.energy_mj_per_speech_second
        )

    def test_unfold_modest_slowdown(self, unfold_report, reza_report):
        """Paper: 18% slowdown, still far beyond real time."""
        slowdown = unfold_report.decode_seconds / reza_report.decode_seconds
        assert slowdown < 2.5
        assert unfold_report.realtime_factor > 10

    def test_unfold_smaller_area(self, unfold_report, reza_report):
        """Paper: 16% smaller accelerator."""
        assert unfold_report.area_mm2 < reza_report.area_mm2

    def test_unfold_lower_bandwidth(self, unfold_report, reza_report):
        """Paper: 71% average bandwidth reduction (Figure 11)."""
        assert (
            unfold_report.bandwidth_mb_per_second
            < reza_report.bandwidth_mb_per_second
        )


class TestGpuModel:
    def test_gpu_much_slower_than_accelerator(self, unfold_report):
        gpu = GpuModel()
        report = gpu.search_run_report(
            [r.stats for r in unfold_report.results], "tiny"
        )
        assert report.decode_seconds > unfold_report.decode_seconds
        assert report.realtime_factor > 1  # still real-time capable

    def test_gpu_energy_dominates(self, unfold_report):
        gpu = GpuModel()
        report = gpu.search_run_report(
            [r.stats for r in unfold_report.results], "tiny"
        )
        assert (
            report.energy_mj_per_speech_second
            > 3 * unfold_report.energy_mj_per_speech_second
        )

    def test_scorer_model_scales_with_flops(self):
        gpu = GpuModel()
        small = gpu.scorer_report(1e6, 100)
        big = gpu.scorer_report(2e6, 100)
        assert big.seconds == pytest.approx(2 * small.seconds)
        assert big.joules > small.joules
        assert small.milliseconds == pytest.approx(small.seconds * 1e3)
