"""Both timing models must agree on every cross-platform ordering."""

import pytest

from repro.accel import REZA, UNFOLD, FullyComposedSimulator, UnfoldSimulator


@pytest.fixture(scope="module")
def reports(tiny_task, tiny_scores):
    unfold = UnfoldSimulator(tiny_task, config=UNFOLD.scaled(1 / 64)).run(
        tiny_scores
    )
    reza = FullyComposedSimulator(tiny_task, config=REZA.scaled(1 / 64)).run(
        tiny_scores
    )
    return unfold, reza


class TestTimingModels:
    def test_throughput_populated(self, reports):
        unfold, reza = reports
        assert unfold.throughput_seconds > 0
        assert reza.throughput_seconds > 0

    def test_throughput_bounded_by_additive(self, reports):
        """Overlap can only help (up to per-frame fill overhead)."""
        for report in reports:
            fill = 8.0 * report.decoder_stats.frames / 600e6
            assert report.throughput_seconds <= report.decode_seconds + fill

    def test_both_models_realtime(self, reports):
        for report in reports:
            assert report.speech_seconds / report.throughput_seconds > 10
            assert report.realtime_factor > 10

    def test_models_agree_on_relative_cost(self, reports):
        """If one platform is materially slower under one model, the
        other model must not say the opposite by a large factor."""
        unfold, reza = reports
        additive_ratio = unfold.decode_seconds / reza.decode_seconds
        throughput_ratio = unfold.throughput_seconds / reza.throughput_seconds
        assert additive_ratio / throughput_ratio < 3.0
        assert throughput_ratio / additive_ratio < 3.0
