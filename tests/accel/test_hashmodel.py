"""Tests for the token hash-table and overflow-buffer models."""

import pytest

from repro.accel.hashmodel import HashTableModel, OverflowBuffer


class TestHashTableModel:
    def test_inserts_tracked(self):
        model = HashTableModel(16)
        for _ in range(10):
            assert model.insert()
        assert model.stats.inserts == 10
        assert model.occupancy == 10
        assert model.stats.peak_occupancy == 10

    def test_overflow_past_capacity(self):
        model = HashTableModel(4)
        for _ in range(4):
            assert model.insert()
        assert not model.insert()
        assert model.stats.overflow_tokens == 1
        assert model.stats.overflow_rate == pytest.approx(1 / 5)

    def test_frame_boundary_resets_occupancy(self):
        model = HashTableModel(4)
        model.insert()
        model.end_frame()
        assert model.occupancy == 0
        assert model.stats.frames == 1
        assert model.stats.peak_occupancy == 1

    def test_collision_probes_grow_with_load(self):
        sparse = HashTableModel(1000)
        dense = HashTableModel(12)
        for _ in range(10):
            sparse.insert()
            dense.insert()
        assert dense.stats.avg_probes_per_insert > sparse.stats.avg_probes_per_insert
        assert sparse.stats.avg_probes_per_insert >= 1.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HashTableModel(0)

    def test_empty_stats(self):
        model = HashTableModel(8)
        assert model.stats.avg_probes_per_insert == 0.0
        assert model.stats.overflow_rate == 0.0


class TestOverflowBuffer:
    def test_spills_accumulate_to_lines(self):
        buffer = OverflowBuffer(token_bytes=18, line_bytes=64)
        lines = buffer.spill(3)  # 54 bytes: no full line yet
        assert lines == 0
        lines = buffer.spill(1)  # 72 bytes: one line
        assert lines == 1
        assert buffer.spilled_tokens == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OverflowBuffer().spill(-1)


class TestNBest:
    def test_nbest_returns_distinct_alternatives(self, tiny_task, tiny_scorer):
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=20.0)
        )
        utt = tiny_task.test_set(1, max_words=4)[0]
        result = decoder.decode(tiny_scorer.score(utt.features))
        nbest = result.nbest(5)
        assert nbest, "successful decode must yield at least one hypothesis"
        costs = [cost for cost, _ in nbest]
        assert costs == sorted(costs)
        assert nbest[0][1] == result.word_ids
        sequences = [tuple(words) for _, words in nbest]
        assert len(set(sequences)) == len(sequences)

    def test_finals_sorted(self, tiny_task, tiny_scorer):
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=20.0)
        )
        utt = tiny_task.test_set(1, max_words=3)[0]
        result = decoder.decode(tiny_scorer.score(utt.features))
        costs = [c for c, _ in result.finals]
        assert costs == sorted(costs)
