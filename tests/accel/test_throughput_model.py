"""Tests for the throughput (max-of-stages) cycle model."""

import pytest

from repro.accel.dram import DramModel, Traffic
from repro.accel.pipeline import cycles_for, throughput_cycles
from repro.core.decoder import DecoderStats


def _stats_with_frames(frames):
    stats = DecoderStats()
    for survivors, expansions, probes, writes in frames:
        stats.frame_work.append((survivors, expansions, probes, writes))
        stats.expansions += expansions
        stats.am_state_fetches += survivors
        stats.token_writes += writes
        stats.lookup.arc_probes += probes
    return stats


class TestThroughputModel:
    def test_bounded_by_additive_model(self):
        """Overlap can only help: throughput <= additive, per run."""
        stats = _stats_with_frames(
            [(100, 230, 12, 3), (80, 190, 4, 1), (120, 260, 30, 6)]
        )
        stats.tokens_created = 400
        dram = DramModel()
        dram.read_lines(Traffic.ARCS, 50)
        assert throughput_cycles(stats, dram) <= cycles_for(stats, dram).total_cycles

    def test_fallback_without_frame_work(self):
        stats = DecoderStats()
        stats.expansions = 100
        dram = DramModel()
        assert throughput_cycles(stats, dram) == cycles_for(stats, dram).total_cycles

    def test_probe_heavy_frames_bound_by_lookup_stage(self):
        light = _stats_with_frames([(10, 100, 0, 0)])
        heavy = _stats_with_frames([(10, 100, 200, 0)])
        dram = DramModel()
        assert throughput_cycles(heavy, dram) > throughput_cycles(light, dram)

    def test_dram_stalls_added(self):
        stats = _stats_with_frames([(10, 20, 0, 0)])
        quiet = DramModel()
        busy = DramModel()
        busy.read_lines(Traffic.ARCS, 320)
        assert throughput_cycles(stats, busy) > throughput_cycles(stats, quiet)

    def test_real_decode_produces_frame_work(self, tiny_task, tiny_scorer):
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, DecoderConfig())
        utt = tiny_task.test_set(1, max_words=3)[0]
        result = decoder.decode(tiny_scorer.score(utt.features))
        stats = result.stats
        assert len(stats.frame_work) == stats.frames
        assert sum(w[1] for w in stats.frame_work) == stats.expansions
        assert sum(w[3] for w in stats.frame_work) == stats.token_writes
        dram = DramModel()
        assert (
            throughput_cycles(stats, dram)
            <= cycles_for(stats, dram).total_cycles + 8.0 * stats.frames
        )
