"""Tests for the DRAM row-buffer model."""

import pytest

from repro.accel.dram import DramConfig, DramModel, Traffic


class TestRowBuffer:
    def test_sequential_lines_hit_open_row(self):
        dram = DramModel()
        row_bytes = dram.config.row_bytes
        # 32 consecutive lines inside one row: 1 activation + 31 hits.
        dram.read_lines(Traffic.TOKENS, row_bytes // 64, address=0)
        assert dram.row_misses == 1
        assert dram.row_hits == row_bytes // 64 - 1
        assert dram.row_hit_ratio > 0.9

    def test_scattered_lines_keep_missing(self):
        dram = DramModel()
        for i in range(16):
            # Same bank, different row each time.
            addr = i * dram.config.row_bytes * dram.config.num_banks
            dram.read_lines(Traffic.ARCS, 1, address=addr)
        assert dram.row_hits == 0
        assert dram.row_misses == 16

    def test_banks_independent(self):
        dram = DramModel()
        rows = dram.config.row_bytes
        dram.read_lines(Traffic.ARCS, 1, address=0)          # bank 0
        dram.read_lines(Traffic.ARCS, 1, address=rows)       # bank 1
        dram.read_lines(Traffic.ARCS, 1, address=0)          # bank 0 again: hit
        assert dram.row_hits == 1
        assert dram.row_misses == 2

    def test_legacy_callers_charged_as_misses(self):
        dram = DramModel()
        dram.read_lines(Traffic.STATES, 5)
        assert dram.row_misses == 5
        assert dram.row_hit_ratio == 0.0

    def test_hits_stall_less(self):
        sequential = DramModel()
        scattered = DramModel()
        for i in range(64):
            sequential.read_lines(Traffic.TOKENS, 1, address=i * 64)
            scattered.read_lines(
                Traffic.TOKENS,
                1,
                address=i * scattered.config.row_bytes * scattered.config.num_banks,
            )
        assert sequential.stall_cycles() < scattered.stall_cycles()

    def test_misses_cost_activation_energy(self):
        sequential = DramModel()
        scattered = DramModel()
        for i in range(64):
            sequential.read_lines(Traffic.TOKENS, 1, address=i * 64)
            scattered.read_lines(
                Traffic.TOKENS,
                1,
                address=i * scattered.config.row_bytes * scattered.config.num_banks,
            )
        assert sequential.access_energy_pj() < scattered.access_energy_pj()

    def test_reset_clears_rows(self):
        dram = DramModel()
        dram.read_lines(Traffic.ARCS, 4, address=0)
        dram.reset()
        assert dram.row_hits == 0
        assert dram.row_misses == 0
        dram.read_lines(Traffic.ARCS, 1, address=0)
        assert dram.row_misses == 1  # row had to re-open

    def test_config_latencies_ordered(self):
        config = DramConfig()
        assert config.row_hit_cycles < config.latency_cycles

    def test_simulated_token_stream_gets_row_hits(self, tiny_task, tiny_scores):
        """Sequential lattice writes exploit open rows in a real run."""
        from repro.accel import UNFOLD, UnfoldSimulator

        sim = UnfoldSimulator(tiny_task, config=UNFOLD.scaled(1 / 64))
        report = sim.run(tiny_scores)
        del report  # dram internal to the sink; re-run manually
        from repro.accel.layout import OnTheFlyLayout
        from repro.accel.sink import UnfoldSink

        sink = UnfoldSink(UNFOLD.scaled(1 / 64), OnTheFlyLayout.build(tiny_task))
        for i in range(200):
            sink.on_token_write(8)
        assert sink.dram.row_hit_ratio > 0.5
