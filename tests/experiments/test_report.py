"""Tests for the EXPERIMENTS.md renderer."""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import PAPER_CLAIMS, render_markdown


class TestReport:
    def test_every_experiment_has_a_paper_claim(self):
        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)

    def test_render_markdown_structure(self):
        results = [
            ExperimentResult("fig08", "sizes", [{"task": "x", "mb": 1.5}]),
            ExperimentResult("table6", "wer", [{"task": "x", "wer": 10.0}]),
        ]
        text = render_markdown(results)
        assert text.startswith("# EXPERIMENTS")
        assert "## fig08: sizes" in text
        assert "## table6: wer" in text
        assert "**Paper:**" in text
        assert "```" in text

    def test_render_includes_measured_rows(self):
        results = [
            ExperimentResult("fig09", "energy", [{"task": "abc", "mj": 0.5}])
        ]
        text = render_markdown(results)
        assert "abc" in text
        assert "0.5" in text
