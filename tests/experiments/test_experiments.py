"""Smoke and shape tests for the experiment drivers (tiny task only).

The benchmarks run the drivers at full preset scale; these tests verify
the drivers' mechanics and the direction of every headline claim on the
fast tiny task.
"""

import pytest

from repro.asr.task import TINY
from repro.experiments import (
    ablation_lm_lookup,
    ablation_preemptive_pruning,
    fig01_time_breakdown,
    fig02_dataset_sizes,
    fig07_offset_table_sweep,
    fig08_memory_reduction,
    fig09_search_energy,
    fig10_power_breakdown,
    fig11_bandwidth,
    fig12_overall_time,
    fig13_overall_energy,
    table1_wfst_sizes,
    table2_compressed_sizes,
    table5_latency,
    table6_wer,
)
from repro.experiments.common import ExperimentResult, get_bundle


@pytest.fixture(scope="module")
def bundle():
    return get_bundle(TINY)


@pytest.fixture(scope="module")
def bundles(bundle):
    return [bundle]


class TestBundle:
    def test_bundle_cached(self, bundle):
        assert get_bundle(TINY) is bundle

    def test_bundle_contents(self, bundle):
        assert len(bundle.utterances) == len(bundle.scores)
        assert bundle.sizing.composed_bytes > 0
        assert 0 < bundle.scale_factor() <= 1

    def test_reports_cached(self, bundle):
        assert bundle.unfold_report() is bundle.unfold_report()
        assert bundle.reza_report() is bundle.reza_report()


class TestRendering:
    def test_render_empty(self):
        result = ExperimentResult("x", "t", [])
        assert "no rows" in result.render()

    def test_render_table(self):
        result = ExperimentResult(
            "x", "title", [{"a": 1.5, "b": None}, {"a": 123.0, "b": "z"}],
            notes="note",
        )
        text = result.render()
        assert "title" in text
        assert "note" in text
        assert "123" in text
        assert "-" in text  # None renders as '-'


class TestDrivers:
    def test_fig01(self, bundles):
        result = fig01_time_breakdown.run(bundles)
        assert result.rows[0]["viterbi_pct"] + result.rows[0]["scorer_pct"] == pytest.approx(100)

    def test_fig02(self, bundles):
        result = fig02_dataset_sizes.run(bundles)
        assert result.rows[0]["wfst_share_pct"] > 50

    def test_table1(self, bundles):
        result = table1_wfst_sizes.run(bundles)
        assert result.rows[0]["blowup_x"] > 1

    def test_table2(self, bundles):
        result = table2_compressed_sizes.run(bundles)
        assert result.rows[-1]["task"] == "average"
        assert result.rows[0]["ratio_x"] > 1

    def test_fig07(self, bundle):
        result = fig07_offset_table_sweep.run(bundle)
        assert len(result.rows) >= 3
        assert result.rows[-1]["entries"] > result.rows[0]["entries"]

    def test_fig08(self, bundles):
        result = fig08_memory_reduction.run(bundles)
        per_task = result.rows[0]
        assert per_task["fully_composed_mb"] > per_task["onthefly_comp_mb"]

    def test_fig09(self, bundles):
        result = fig09_search_energy.run(bundles)
        row = result.rows[0]
        assert row["tegra_mj"] > row["unfold_mj"]

    def test_fig10(self, bundle):
        result = fig10_power_breakdown.run(bundle)
        total = next(r for r in result.rows if r["component"] == "total")
        assert total["unfold_mw"] > 0
        assert total["reza_mw"] > 0

    def test_fig11(self, bundles):
        result = fig11_bandwidth.run(bundles)
        platforms = {r["platform"] for r in result.rows}
        assert platforms == {"reza", "unfold"}

    def test_table5(self, bundles):
        result = table5_latency.run(bundles)
        row = result.rows[0]
        assert row["unfold_max"] >= row["unfold_avg"] > 0

    def test_table6(self, bundles):
        result = table6_wer.run(bundles)
        assert result.rows[0]["delta_pct"] <= 5.0

    def test_fig12(self, bundles):
        result = fig12_overall_time.run(bundles)
        assert result.rows[0]["unfold_ms"] < result.rows[0]["tegra_ms"]

    def test_fig13(self, bundles):
        result = fig13_overall_energy.run(bundles)
        assert result.rows[0]["unfold_mj"] < result.rows[0]["tegra_mj"]

    def test_ablation_preemptive(self, bundles):
        result = ablation_preemptive_pruning.run(bundles)
        assert result.rows[0]["same_output"] is True

    def test_ablation_lookup(self, bundle):
        result = ablation_lm_lookup.run(bundle)
        rows = {r["strategy"]: r for r in result.rows}
        assert (
            rows["linear"]["avg_probes_per_lookup"]
            > rows["olt"]["avg_probes_per_lookup"]
        )


class TestRegistry:
    def test_registry_complete(self):
        from repro.experiments.registry import EXPERIMENTS

        expected = {
            "fig01", "fig02", "table1", "table2", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig11", "table5", "table6",
            "fig12", "fig13", "ablation-preemptive", "ablation-lookup",
            "ablation-two-pass", "ablation-lattice", "perf-decode",
            "serve-bench",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(KeyError):
            run_experiment("fig99")
