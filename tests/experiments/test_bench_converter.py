"""Tests for the bench-transcript -> EXPERIMENTS.md converter."""

import importlib.util
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "experiments_from_bench",
    Path(__file__).resolve().parents[2] / "tools" / "experiments_from_bench.py",
)
converter = importlib.util.module_from_spec(_SPEC)
sys.modules["experiments_from_bench"] = converter
_SPEC.loader.exec_module(converter)

TRANSCRIPT = """\
some pytest noise
== fig08: Dataset size (MB) per storage configuration ==
task       fully_composed_mb
kaldi-x    1.97
-- paper: 31x average reduction
.
== table6: Word error rate (%) ==
task       unfold_wer_pct
kaldi-x    31.2
-- paper: WER 10.6-27.7%
=========== 19 passed ===========
"""


class TestConverter:
    def test_blocks_extracted(self):
        blocks = converter.extract_blocks(TRANSCRIPT.splitlines(keepends=True))
        assert set(blocks) == {"fig08", "table6"}
        title, lines = blocks["fig08"]
        assert "storage configuration" in title
        assert any("kaldi-x" in line for line in lines)
        assert lines[-1].startswith("-- paper")

    def test_render_pairs_with_paper_claims(self):
        blocks = converter.extract_blocks(TRANSCRIPT.splitlines(keepends=True))
        text = converter.render(blocks)
        assert "# EXPERIMENTS" in text
        assert "## fig08:" in text
        assert "**Paper:**" in text
        assert "31.2" in text

    def test_missing_experiments_listed(self):
        blocks = converter.extract_blocks(TRANSCRIPT.splitlines(keepends=True))
        text = converter.render(blocks)
        assert "Not captured" in text  # most registry ids absent here

    def test_main_round_trip(self, tmp_path):
        source = tmp_path / "bench.txt"
        source.write_text(TRANSCRIPT)
        output = tmp_path / "EXPERIMENTS.md"
        assert converter.main([str(source), str(output)]) == 0
        assert "fig08" in output.read_text()

    def test_empty_transcript_rejected(self, tmp_path):
        source = tmp_path / "empty.txt"
        source.write_text("nothing here\n")
        with pytest.raises(SystemExit):
            converter.main([str(source), str(tmp_path / "out.md")])
