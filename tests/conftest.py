"""Shared fixtures: a tiny ASR task reused across the test suite."""

import numpy as np
import pytest

from repro.am import GmmAcousticModel
from repro.asr import TINY, build_task


@pytest.fixture(scope="session")
def tiny_task():
    return build_task(TINY)


@pytest.fixture(scope="session")
def tiny_scorer(tiny_task):
    """Oracle GMM scorer: accurate scores for decode correctness tests."""
    return GmmAcousticModel.from_emissions(
        tiny_task.emissions,
        num_mixtures=1,
        noise_scale=tiny_task.config.noise_scale,
    )


@pytest.fixture(scope="session")
def tiny_utterances(tiny_task):
    """A fixed, seeded batch of test utterances."""
    rng_state = np.random.default_rng(5)
    del rng_state
    return tiny_task.test_set(6, max_words=5)


@pytest.fixture(scope="session")
def tiny_scores(tiny_scorer, tiny_utterances):
    return [tiny_scorer.score(u.features) for u in tiny_utterances]
