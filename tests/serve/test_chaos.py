"""Fault-tolerance tests: the chaos harness against the serve stack.

The acceptance criterion of the fault-tolerance layer: with
``ProcessEngine(workers=2)``, killing one worker mid-utterance makes
its sessions migrate from their rolling checkpoints and finish with
transcripts bit-identical to an uninterrupted run; no dispatch thread
blocks past the configured request deadline; the recovery shows up in
metrics.  Every chaos plan here is deterministic (no sleeps to "wait
for the crash" — the fault fires on a counted dispatch), so the same
sessions migrate at the same points on every run.
"""

import asyncio
from time import perf_counter

import pytest

from repro.asr.parallel import DecodePool
from repro.asr.streaming import OnTheFlyDecoder, transcribe_streams
from repro.core import DecoderConfig
from repro.serve import (
    Busy,
    CircuitBreaker,
    EngineError,
    FlakyEngine,
    ServeConfig,
    ServeError,
    TranscriptionServer,
    TransientEngineError,
    WorkerChaos,
    kill_worker,
)
from repro.serve import protocol
from repro.serve.engine import ProcessEngine
from repro.serve.loadgen import run_load
from repro.serve.scheduler import (
    BREAKER_CLOSED,
    BREAKER_DEGRADED,
    BREAKER_OPEN,
    SchedulerConfig,
)

CONFIG = DecoderConfig(beam=14.0)
BATCH = 8


@pytest.fixture(scope="module")
def pool_reference(tiny_task, tiny_scorer, tiny_scores):
    """Uninterrupted decode of the bundle-quantized recognizer — what
    every post-crash transcript must still equal bit-for-bit."""
    with DecodePool(
        tiny_task.am,
        tiny_task.lm,
        scorer=tiny_scorer,
        config=CONFIG,
        parallelism=1,
    ) as pool:
        return pool.decode_streams(tiny_scores, batch_frames=BATCH)


@pytest.fixture(scope="module")
def inline_reference(tiny_task, tiny_scores):
    """Sequential parent-graph decode (the in-process engine's truth)."""
    decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
    return transcribe_streams(decoder, tiny_scores, BATCH)


def make_engine(tiny_task, tiny_scorer, **overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("checkpoint_interval", 4)
    overrides.setdefault("request_timeout", 10.0)
    overrides.setdefault("supervisor_poll_seconds", 0.05)
    return ProcessEngine(
        tiny_task.am,
        tiny_task.lm,
        scorer=tiny_scorer,
        config=CONFIG,
        **overrides,
    )


def stream_all(engine, matrices, first_batch_pushed=False):
    """Drive every matrix through its own engine session to a final."""
    ids = [f"s{i}" for i in range(len(matrices))]
    finals = {}
    for i, session_id in enumerate(ids):
        scores = matrices[i]
        start_at = BATCH if first_batch_pushed else 0
        for start in range(start_at, scores.shape[0], BATCH):
            engine.push(session_id, scores[start : start + BATCH])
        finals[i] = engine.finish(session_id)
    return finals


class TestWorkerCrashRecovery:
    def test_sigkill_mid_utterance_is_bit_identical(
        self, tiny_task, tiny_scorer, tiny_scores, pool_reference
    ):
        """The acceptance test: SIGKILL one of two workers while every
        session is mid-utterance; all sessions finish, bit-exact."""
        engine = make_engine(tiny_task, tiny_scorer)
        try:
            matrices = tiny_scores[:4]
            ids = [f"s{i}" for i in range(len(matrices))]
            for session_id in ids:
                engine.start(session_id)
            for i, session_id in enumerate(ids):
                engine.push(session_id, matrices[i][:BATCH])
            kill_worker(engine, 0)
            finals = stream_all(engine, matrices, first_batch_pushed=True)
            for i, want in enumerate(pool_reference[: len(matrices)]):
                assert finals[i].words == want.words
                assert finals[i].cost == want.cost
            counters = engine.metrics.snapshot()["counters"]
            assert counters["worker_restarts"] >= 1
            # Least-loaded placement pins 2 of the 4 sessions to the
            # killed worker; both must have migrated, none lost.
            assert counters["sessions_migrated"] == 2
            assert counters.get("sessions_lost", 0) == 0
            assert counters["checkpoints_taken"] >= 1
        finally:
            engine.close()

    def test_die_chaos_plan_recovers(
        self, tiny_task, tiny_scorer, tiny_scores, pool_reference
    ):
        """os._exit on a counted dispatch (crash *inside* a push, before
        the reply) — the retried push lands on the migrated session."""
        chaos = WorkerChaos(worker_index=0, die_at_push=3)
        engine = make_engine(tiny_task, tiny_scorer, chaos=chaos)
        try:
            matrices = tiny_scores[:4]
            for i in range(len(matrices)):
                engine.start(f"s{i}")
            finals = stream_all(engine, matrices)
            for i, want in enumerate(pool_reference[: len(matrices)]):
                assert finals[i].words == want.words
                assert finals[i].cost == want.cost
            counters = engine.metrics.snapshot()["counters"]
            assert counters["worker_restarts"] >= 1
            assert counters["sessions_migrated"] >= 1
            assert counters.get("sessions_lost", 0) == 0
        finally:
            engine.close()

    def test_hang_is_bounded_by_request_timeout(
        self, tiny_task, tiny_scorer, tiny_scores, pool_reference
    ):
        """A worker that stops replying must not block its dispatch
        thread past the deadline; the session migrates and finishes."""
        chaos = WorkerChaos(
            worker_index=0, hang_at_push=2, hang_seconds=120.0
        )
        engine = make_engine(
            tiny_task, tiny_scorer, chaos=chaos, request_timeout=0.5
        )
        try:
            scores = tiny_scores[0]
            engine.start("s0")
            engine.push("s0", scores[:BATCH])
            hung = perf_counter()
            engine.push("s0", scores[BATCH : 2 * BATCH])
            elapsed = perf_counter() - hung
            # Deadline + respawn + checkpoint restore, nowhere near the
            # 120 s the worker would have slept.
            assert elapsed < 30.0
            for start in range(2 * BATCH, scores.shape[0], BATCH):
                engine.push("s0", scores[start : start + BATCH])
            final = engine.finish("s0")
            assert final.words == pool_reference[0].words
            assert final.cost == pool_reference[0].cost
            assert (
                engine.metrics.snapshot()["counters"]["worker_restarts"] >= 1
            )
        finally:
            engine.close()

    def test_dropped_reply_replays_exactly_once(
        self, tiny_task, tiny_scorer, tiny_scores, pool_reference
    ):
        """The nastiest case: the worker *decoded* the push but the ack
        vanished.  The replay buffer holds only acknowledged pushes, so
        the retried batch is applied exactly once — double-apply would
        show up as a transcript/cost divergence."""
        chaos = WorkerChaos(worker_index=0, drop_reply_at_push=2)
        engine = make_engine(
            tiny_task, tiny_scorer, chaos=chaos, request_timeout=0.5
        )
        try:
            matrices = tiny_scores[:2]
            for i in range(len(matrices)):
                engine.start(f"s{i}")
            finals = stream_all(engine, matrices)
            for i, want in enumerate(pool_reference[: len(matrices)]):
                assert finals[i].words == want.words
                assert finals[i].cost == want.cost
        finally:
            engine.close()

    def test_injected_decoder_error_is_not_transient(
        self, tiny_task, tiny_scorer, tiny_scores, pool_reference
    ):
        """A decoder exception is the application's bug, not the
        infrastructure's: it surfaces as a plain EngineError (no retry,
        no migration) and the worker keeps serving."""
        chaos = WorkerChaos(
            worker_index=0, error_at_push=2, error_message="injected fault"
        )
        engine = make_engine(tiny_task, tiny_scorer, chaos=chaos)
        try:
            scores = tiny_scores[0]
            engine.start("s0")
            engine.push("s0", scores[:BATCH])
            with pytest.raises(EngineError, match="injected fault") as info:
                engine.push("s0", scores[BATCH : 2 * BATCH])
            assert not isinstance(info.value, TransientEngineError)
            # The worker survived and the session kept its state: the
            # failed batch can simply be pushed again.
            for start in range(BATCH, scores.shape[0], BATCH):
                engine.push("s0", scores[start : start + BATCH])
            final = engine.finish("s0")
            assert final.words == pool_reference[0].words
            assert final.cost == pool_reference[0].cost
            counters = engine.metrics.snapshot()["counters"]
            assert counters.get("worker_restarts", 0) == 0
        finally:
            engine.close()


class TestEngineFaultPaths:
    def test_start_failure_unwinds_placement(
        self, tiny_task, tiny_scorer, tiny_scores, pool_reference
    ):
        """Satellite fix: a start that dies on a *raw* pipe error (not a
        typed EngineError) must not leak the placement entry or the
        worker's session count."""
        engine = make_engine(tiny_task, tiny_scorer)
        try:
            originals = [
                (worker, worker.request) for worker in engine._workers
            ]

            def explode(*args, **kwargs):
                raise OSError("pipe exploded")

            for worker, _ in originals:
                worker.request = explode
            with pytest.raises(OSError):
                engine.start("leaky")
            for worker, original in originals:
                worker.request = original
            assert engine.active_sessions() == 0
            assert all(w.sessions == 0 for w in engine._workers)
            # The slot is genuinely free: the same id starts cleanly
            # and decodes to the right transcript.
            engine.start("leaky")
            scores = tiny_scores[0]
            for start in range(0, scores.shape[0], BATCH):
                engine.push("leaky", scores[start : start + BATCH])
            final = engine.finish("leaky")
            assert final.words == pool_reference[0].words
        finally:
            engine.close()

    def test_cancel_of_dead_workers_session_is_silent(
        self, tiny_task, tiny_scorer, tiny_scores
    ):
        """Satellite fix: cancelling a session whose worker died must
        never propagate the pipe error — the caller is abandoning the
        session either way.  close() after the kill is clean too."""
        # A long supervisor poll so *this thread's* cancel is the first
        # to trip over the corpse, exercising the dead-worker branch.
        engine = make_engine(
            tiny_task, tiny_scorer, supervisor_poll_seconds=30.0
        )
        try:
            engine.start("s0")
            engine.push("s0", tiny_scores[0][:BATCH])
            kill_worker(engine, 0)
            engine.cancel("s0")  # must not raise
            assert engine.active_sessions() == 0
        finally:
            engine.close()  # must not raise either


class TestSchedulerResilience:
    def test_flaky_engine_retries_and_notifies(
        self, tiny_task, tiny_scores, inline_reference
    ):
        """One injected transient push failure: the scheduler retries
        with backoff, the client sees RETRYING then RECOVERED notices,
        and the transcript is unaffected."""

        async def scenario():
            server = TranscriptionServer(
                tiny_task.am,
                tiny_task.lm,
                decoder_config=CONFIG,
                serve_config=ServeConfig(
                    max_sessions=4,
                    max_retries=2,
                    retry_backoff_seconds=0.01,
                ),
            )
            flaky = FlakyEngine(server.engine, failure_plan={"push": 1})
            server.engine = flaky
            server.scheduler.engine = flaky
            async with server:
                client = server.connect_local()
                session = await client.open()
                scores = tiny_scores[0]
                for start in range(0, scores.shape[0], BATCH):
                    await session.push(scores[start : start + BATCH])
                final = await session.finish()
                status = await client.status()
            return session.notices, final, status

        notices, final, status = asyncio.run(scenario())
        kinds = [notice["type"] for notice in notices]
        assert protocol.RETRYING in kinds
        assert protocol.RECOVERED in kinds
        assert final["words"] == inline_reference[0].words
        assert final["cost"] == inline_reference[0].cost
        counters = status["metrics"]["counters"]
        assert counters["retries"] >= 1
        assert counters["recoveries"] >= 1

    def test_deadline_bounds_a_stuck_engine_call(self, tiny_task, tiny_scores):
        """An engine call that outlives the request deadline fails the
        session instead of stalling the dispatch loop."""
        import time

        class StuckEngine:
            def __init__(self, inner):
                self._inner = inner

            def push(self, session_id, scores):
                time.sleep(0.5)
                return self._inner.push(session_id, scores)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        async def scenario():
            server = TranscriptionServer(
                tiny_task.am,
                tiny_task.lm,
                decoder_config=CONFIG,
                serve_config=ServeConfig(
                    max_sessions=4, request_deadline_seconds=0.05
                ),
            )
            stuck = StuckEngine(server.engine)
            server.engine = stuck
            server.scheduler.engine = stuck
            async with server:
                client = server.connect_local()
                session = await client.open()
                with pytest.raises(ServeError):
                    await session.push(tiny_scores[0][:BATCH])
                status = await client.status()
            return status

        status = asyncio.run(scenario())
        assert status["metrics"]["counters"]["deadline_exceeded"] >= 1

    def test_breaker_state_machine(self):
        clock = [0.0]
        config = SchedulerConfig(
            breaker_window=8,
            breaker_min_samples=4,
            breaker_degrade_threshold=0.5,
            breaker_open_threshold=0.75,
            breaker_reset_seconds=10.0,
        )
        breaker = CircuitBreaker(config, clock=lambda: clock[0])
        assert breaker.state == BREAKER_CLOSED
        for _ in range(2):
            breaker.record_failure()
        # Below min samples: still closed.
        assert breaker.state == BREAKER_CLOSED
        breaker.record_success()
        breaker.record_failure()
        # 3 failures / 4 outcomes = 0.75: open, with cooldown.
        assert breaker.state == BREAKER_OPEN
        clock[0] += 5.0
        assert breaker.state == BREAKER_OPEN
        # Cooldown expiry forgives the window (half-open).
        clock[0] += 6.0
        assert breaker.state == BREAKER_CLOSED
        # Degraded needs a failure rate in [degrade, open).
        for _ in range(2):
            breaker.record_failure()
        for _ in range(2):
            breaker.record_success()
        assert breaker.state == BREAKER_DEGRADED

    def test_open_breaker_refuses_admission_and_degraded_unfuses(
        self, tiny_task
    ):
        async def scenario():
            server = TranscriptionServer(
                tiny_task.am,
                tiny_task.lm,
                decoder_config=CONFIG,
                serve_config=ServeConfig(max_sessions=4),
            )
            async with server:
                scheduler = server.scheduler
                assert scheduler._fuse_width() > 1
                # Half bad: degraded — serving continues, fusion off.
                # Interleaved so the rate never reaches the open
                # threshold at any single failure.
                for _ in range(4):
                    scheduler.breaker.record_failure()
                    scheduler.breaker.record_success()
                assert scheduler.breaker.state == BREAKER_DEGRADED
                assert scheduler._fuse_width() == 1
                client = server.connect_local()
                session = await client.open()  # degraded still admits
                await session.abort()
                # All bad: open — new sessions are refused outright.
                # (Enough failures to saturate the sliding window.)
                for _ in range(16):
                    scheduler.breaker.record_failure()
                assert scheduler.breaker.state == BREAKER_OPEN
                with pytest.raises(Busy, match="circuit"):
                    await client.open()
                status = await client.status()
            return status

        status = asyncio.run(scenario())
        assert status["breaker"] == BREAKER_OPEN


class TestLoadgenAborts:
    def test_abort_fraction_exercises_cancellation(
        self, tiny_task, tiny_scores, inline_reference
    ):
        """A seeded fraction of sessions vanish mid-stream; survivors
        still transcribe bit-identically and the server counts every
        cancellation."""

        async def scenario():
            server = TranscriptionServer(
                tiny_task.am,
                tiny_task.lm,
                decoder_config=CONFIG,
                serve_config=ServeConfig(max_sessions=8),
            )
            async with server:
                report = await run_load(
                    server.connect_local(),
                    tiny_scores,
                    concurrency=4,
                    batch_frames=BATCH,
                    seed=7,
                    abort_fraction=0.5,
                )
                snapshot = server.metrics.snapshot()
            return report, snapshot

        report, snapshot = asyncio.run(scenario())
        assert report.aborted > 0
        assert report.aborted + len(report.outcomes) == len(tiny_scores)
        for outcome in report.outcomes:
            want = inline_reference[outcome.index]
            assert outcome.words == want.words
            assert outcome.cost == want.cost
        assert (
            snapshot["counters"]["sessions_cancelled"] == report.aborted
        )

    def test_abort_plan_is_seed_deterministic(self, tiny_scores):
        """Same seed, same aborters, same abort points — and seed=None
        with the knob off still means nothing aborts."""
        import random

        def plan(seed, fraction):
            rng = random.Random(seed + 1)
            out = {}
            for index, matrix in enumerate(tiny_scores):
                if rng.random() >= fraction:
                    continue
                batches = max(1, -(-matrix.shape[0] // BATCH))
                out[index] = rng.randint(1, batches)
            return out

        assert plan(7, 0.5) == plan(7, 0.5)
        assert plan(7, 0.5)  # the fixture sizes guarantee aborters

    def test_abort_over_tcp(self, tiny_task, tiny_scores):
        """The wire-protocol cancel: a TCP client aborts mid-stream and
        gets the terminal CANCELLED acknowledgement; the connection
        stays usable for new sessions."""
        from repro.serve import TcpClient

        async def scenario():
            server = TranscriptionServer(
                tiny_task.am,
                tiny_task.lm,
                decoder_config=CONFIG,
                serve_config=ServeConfig(max_sessions=4, port=0),
            )
            async with server:
                client = await TcpClient.connect(
                    server.config.host, server.port
                )
                try:
                    session = await client.open()
                    await session.push(tiny_scores[0][:BATCH])
                    await session.abort()
                    replacement = await client.open()
                    await replacement.push(tiny_scores[1][:BATCH])
                    final = await replacement.finish()
                    status = await client.status()
                finally:
                    await client.close()
            return final, status

        final, status = asyncio.run(scenario())
        assert final["words"] is not None
        assert status["metrics"]["counters"]["sessions_cancelled"] >= 1
