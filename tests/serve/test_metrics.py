"""Metrics registry tests: instruments, percentiles, snapshot schema."""

import math
import threading

import pytest

from repro.serve.metrics import Histogram, MetricsRegistry, percentile


class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2

    def test_histogram_window_rolls_off_old_samples(self):
        hist = Histogram(threading.Lock(), window=4)
        for value in (100.0, 1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 5  # lifetime count survives the roll
        assert summary["max"] == 4.0  # the 100.0 sample rolled off


class TestPercentile:
    def test_interpolation(self):
        ordered = [float(v) for v in range(1, 101)]
        assert percentile(ordered, 50.0) == pytest.approx(50.5)
        assert percentile(ordered, 95.0) == pytest.approx(95.05)
        assert percentile(ordered, 0.0) == 1.0
        assert percentile(ordered, 100.0) == 100.0

    def test_degenerate_inputs(self):
        assert math.isnan(percentile([], 50.0))
        assert percentile([7.0], 99.0) == 7.0


class TestSnapshot:
    def test_fresh_registry_snapshot_is_empty(self):
        snapshot = MetricsRegistry().snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_schema(self):
        registry = MetricsRegistry()
        registry.counter("frames").inc(10)
        registry.gauge("active").set(2)
        for value in (0.1, 0.2, 0.3):
            registry.histogram("latency").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"frames": 10}
        assert snapshot["gauges"] == {"active": 2}
        latency = snapshot["histograms"]["latency"]
        assert latency["count"] == 3
        assert latency["mean"] == pytest.approx(0.2)
        assert latency["min"] == 0.1
        assert latency["max"] == 0.3
        assert latency["p50"] == pytest.approx(0.2)
        assert latency["p95"] <= 0.3
        assert set(latency) == {
            "count", "mean", "min", "max", "p50", "p95", "p99",
        }

    def test_empty_histogram_serializes_none_not_nan(self):
        registry = MetricsRegistry()
        registry.histogram("quiet")
        summary = registry.snapshot()["histograms"]["quiet"]
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["p99"] is None
