"""Load-generator tests: replay, ordering, backpressure accounting."""

import asyncio

import pytest

from repro.asr.streaming import transcribe_streams
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.serve import ServeConfig, TranscriptionServer
from repro.serve.loadgen import run_load

CONFIG = DecoderConfig(beam=14.0)


def replay(tiny_task, tiny_scores, concurrency, seed=None, **server_overrides):
    async def scenario():
        serve_config = ServeConfig(**server_overrides)
        server = TranscriptionServer(
            tiny_task.am,
            tiny_task.lm,
            decoder_config=CONFIG,
            serve_config=serve_config,
        )
        async with server:
            return await run_load(
                server.connect_local(),
                tiny_scores,
                concurrency=concurrency,
                batch_frames=8,
                seed=seed,
            )

    return asyncio.run(scenario())


class TestRunLoad:
    def test_outcomes_in_input_order_and_correct(
        self, tiny_task, tiny_scores
    ):
        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        expected = transcribe_streams(decoder, tiny_scores, 8)
        report = replay(tiny_task, tiny_scores, concurrency=4)
        assert [o.index for o in report.outcomes] == list(
            range(len(tiny_scores))
        )
        for outcome, want in zip(report.outcomes, expected):
            assert outcome.words == want.words
            assert outcome.cost == want.cost
            assert outcome.frames == want.stats.frames

    def test_report_accounting(self, tiny_task, tiny_scores):
        report = replay(tiny_task, tiny_scores, concurrency=2)
        assert report.utterances == len(tiny_scores)
        assert report.frames == sum(s.shape[0] for s in tiny_scores)
        assert report.batches == sum(
            -(-s.shape[0] // 8) for s in tiny_scores
        )
        assert report.wall_seconds > 0
        assert report.frames_per_second > 0
        summary = report.latency_summary()
        assert summary["push_seconds"]["count"] == report.batches
        assert summary["push_seconds"]["p95"] > 0
        assert (
            summary["first_partial_seconds"]["count"] == report.utterances
        )

    def test_busy_rejections_counted_under_tight_admission(
        self, tiny_task, tiny_scores
    ):
        """With one session slot and four workers, admission control
        must engage — and nobody may hang or lose an utterance."""
        report = replay(
            tiny_task, tiny_scores, concurrency=4, max_sessions=1
        )
        assert report.utterances == len(tiny_scores)
        assert report.busy_rejections > 0

    def test_to_dict_is_json_ready(self, tiny_task, tiny_scores):
        import json

        report = replay(tiny_task, tiny_scores[:2], concurrency=2)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["concurrency"] == 2
        assert payload["utterances"] == 2
        assert "latency" in payload

    def test_validation(self, tiny_task, tiny_scores):
        with pytest.raises(ValueError):
            replay(tiny_task, tiny_scores, concurrency=0)

    def test_seed_recorded_and_order_reproducible(
        self, tiny_task, tiny_scores
    ):
        first = replay(tiny_task, tiny_scores, concurrency=3, seed=42)
        second = replay(tiny_task, tiny_scores, concurrency=3, seed=42)
        assert first.seed == second.seed == 42
        assert first.to_dict()["seed"] == 42
        # Outcomes come back in input order regardless of the shuffled
        # submission order, and identically across seeded replays.
        assert [o.index for o in first.outcomes] == list(
            range(len(tiny_scores))
        )
        assert [o.words for o in first.outcomes] == [
            o.words for o in second.outcomes
        ]

    def test_unseeded_report_records_none(self, tiny_task, tiny_scores):
        report = replay(tiny_task, tiny_scores[:2], concurrency=2)
        assert report.seed is None
