"""Wire-protocol tests: message round-trips and malformed input."""

import numpy as np
import pytest

from repro.serve import protocol


class TestMessageRoundTrip:
    def test_encode_decode(self):
        message = {"type": "frames", "session": "s1", "scores": [[1.0, 2.0]]}
        line = protocol.encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]  # one message per line
        assert protocol.decode_message(line) == message

    @pytest.mark.parametrize(
        "junk",
        [b"", b"   \n", b"not json\n", b"[1,2]\n", b'{"no_type": 1}\n',
         b'{"type": 5}\n'],
    )
    def test_junk_rejected(self, junk):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(junk)


class TestScorePayload:
    def test_round_trip_is_exact(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((5, 7))
        payload = protocol.scores_to_payload(scores)
        back = protocol.payload_to_scores(payload)
        # JSON doubles are float64: bit-exact across the wire.
        assert back.dtype == np.float64
        assert np.array_equal(back, scores)

    def test_json_round_trip_is_exact(self):
        rng = np.random.default_rng(1)
        scores = rng.standard_normal((3, 4))
        line = protocol.encode_message(
            {"type": "frames", "scores": protocol.scores_to_payload(scores)}
        )
        back = protocol.payload_to_scores(
            protocol.decode_message(line)["scores"]
        )
        assert np.array_equal(back, scores)

    def test_empty_batch_is_zero_frame_matrix(self):
        back = protocol.payload_to_scores([])
        assert back.shape == (0, 0)

    @pytest.mark.parametrize("bad", ["x", [[1.0], [1.0, 2.0]], [[[1.0]]]])
    def test_bad_payload_rejected(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.payload_to_scores(bad)

    def test_non_matrix_scores_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.scores_to_payload(np.zeros(3))


class TestMatrixPayload:
    def test_b64f32_round_trip_exact_for_float32_values(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((6, 5)).astype(np.float32)
        matrix = matrix.astype(np.float64)  # float32-representable
        payload = protocol.matrix_to_payload(matrix, protocol.ENCODING_B64F32)
        back = protocol.payload_to_matrix(payload)
        assert back.dtype == np.float64
        assert np.array_equal(back, matrix)

    def test_b64f32_quantizes_float64(self):
        matrix = np.array([[1.0 + 1e-12]])
        payload = protocol.matrix_to_payload(matrix, protocol.ENCODING_B64F32)
        back = protocol.payload_to_matrix(payload)
        assert back[0, 0] != matrix[0, 0]
        assert back[0, 0] == np.float64(np.float32(matrix[0, 0]))

    def test_b64f32_survives_json(self):
        rng = np.random.default_rng(3)
        matrix = rng.standard_normal((4, 3)).astype(np.float32).astype(
            np.float64
        )
        line = protocol.encode_message(
            {
                "type": "frames",
                "features": protocol.matrix_to_payload(
                    matrix, protocol.ENCODING_B64F32
                ),
            }
        )
        back = protocol.payload_to_matrix(
            protocol.decode_message(line)["features"]
        )
        assert np.array_equal(back, matrix)

    def test_b64f32_is_smaller_on_the_wire(self):
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((32, 40))
        compact = protocol.encode_message(
            {"m": protocol.matrix_to_payload(matrix, "b64f32")}
        )
        verbose = protocol.encode_message(
            {"m": protocol.matrix_to_payload(matrix, "list")}
        )
        assert len(compact) * 3 < len(verbose)

    def test_b64f32_zero_frame_matrix(self):
        payload = protocol.matrix_to_payload(
            np.zeros((0, 7)), protocol.ENCODING_B64F32
        )
        back = protocol.payload_to_matrix(payload)
        assert back.shape == (0, 7)

    @pytest.mark.parametrize(
        "bad",
        [
            {"enc": "zstd", "shape": [1, 1], "data": ""},
            {"enc": "b64f32", "shape": [1], "data": "AAAAAA=="},
            {"enc": "b64f32", "shape": [1, -1], "data": ""},
            {"enc": "b64f32", "shape": [2, 2], "data": "AAAAAA=="},
            {"enc": "b64f32", "shape": [1, 1], "data": "!!!"},
        ],
    )
    def test_bad_b64f32_payload_rejected(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.payload_to_matrix(bad)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.matrix_to_payload(np.zeros((1, 1)), "utf7")


class TestNegotiateStart:
    def test_defaults(self):
        assert protocol.negotiate_start({"type": "start"}) == (
            protocol.PAYLOAD_SCORES,
            protocol.ENCODING_LIST,
        )

    def test_explicit_pair(self):
        message = {"type": "start", "payload": "features", "encoding": "b64f32"}
        assert protocol.negotiate_start(message) == ("features", "b64f32")

    @pytest.mark.parametrize(
        "message",
        [
            {"type": "start", "payload": "waveform"},
            {"type": "start", "encoding": "gzip"},
        ],
    )
    def test_unknown_values_rejected(self, message):
        with pytest.raises(protocol.ProtocolError):
            protocol.negotiate_start(message)


class TestServerMessages:
    def test_busy_and_error_session_field_optional(self):
        assert "session" not in protocol.busy_message("full")
        assert protocol.busy_message("full", "s1")["session"] == "s1"
        assert "session" not in protocol.error_message("boom")
        assert protocol.error_message("boom", "s2")["session"] == "s2"

    def test_partial_and_final_shapes(self, tiny_task, tiny_scores):
        from repro.asr.streaming import StreamingSession
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0)
        )
        session = StreamingSession(decoder)
        partial = session.push(tiny_scores[0][:8])
        message = protocol.partial_message("s1", partial)
        assert message["type"] == protocol.PARTIAL
        assert message["frames_consumed"] == 8
        assert message["words"] == partial.words
        result = session.finish()
        final = protocol.final_message("s1", result)
        assert final["type"] == protocol.FINAL
        assert final["words"] == result.words
        assert final["frames"] == 8
        assert final["success"] == result.success
