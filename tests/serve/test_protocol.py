"""Wire-protocol tests: message round-trips and malformed input."""

import numpy as np
import pytest

from repro.serve import protocol


class TestMessageRoundTrip:
    def test_encode_decode(self):
        message = {"type": "frames", "session": "s1", "scores": [[1.0, 2.0]]}
        line = protocol.encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]  # one message per line
        assert protocol.decode_message(line) == message

    @pytest.mark.parametrize(
        "junk",
        [b"", b"   \n", b"not json\n", b"[1,2]\n", b'{"no_type": 1}\n',
         b'{"type": 5}\n'],
    )
    def test_junk_rejected(self, junk):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(junk)


class TestScorePayload:
    def test_round_trip_is_exact(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((5, 7))
        payload = protocol.scores_to_payload(scores)
        back = protocol.payload_to_scores(payload)
        # JSON doubles are float64: bit-exact across the wire.
        assert back.dtype == np.float64
        assert np.array_equal(back, scores)

    def test_json_round_trip_is_exact(self):
        rng = np.random.default_rng(1)
        scores = rng.standard_normal((3, 4))
        line = protocol.encode_message(
            {"type": "frames", "scores": protocol.scores_to_payload(scores)}
        )
        back = protocol.payload_to_scores(
            protocol.decode_message(line)["scores"]
        )
        assert np.array_equal(back, scores)

    def test_empty_batch_is_zero_frame_matrix(self):
        back = protocol.payload_to_scores([])
        assert back.shape == (0, 0)

    @pytest.mark.parametrize("bad", ["x", [[1.0], [1.0, 2.0]], [[[1.0]]]])
    def test_bad_payload_rejected(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.payload_to_scores(bad)

    def test_non_matrix_scores_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.scores_to_payload(np.zeros(3))


class TestServerMessages:
    def test_busy_and_error_session_field_optional(self):
        assert "session" not in protocol.busy_message("full")
        assert protocol.busy_message("full", "s1")["session"] == "s1"
        assert "session" not in protocol.error_message("boom")
        assert protocol.error_message("boom", "s2")["session"] == "s2"

    def test_partial_and_final_shapes(self, tiny_task, tiny_scores):
        from repro.asr.streaming import StreamingSession
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0)
        )
        session = StreamingSession(decoder)
        partial = session.push(tiny_scores[0][:8])
        message = protocol.partial_message("s1", partial)
        assert message["type"] == protocol.PARTIAL
        assert message["frames_consumed"] == 8
        assert message["words"] == partial.words
        result = session.finish()
        final = protocol.final_message("s1", result)
        assert final["type"] == protocol.FINAL
        assert final["words"] == result.words
        assert final["frames"] == 8
        assert final["success"] == result.success
