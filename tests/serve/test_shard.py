"""Sharded serving tests: router, end-to-end parity, work stealing.

A :class:`ShardedServer` packs the recognizer into one shared-memory
segment and spawns shard processes that attach it; every transcript a
shard serves must be bit-identical to a sequential streaming pass over
the bundle-quantized recognizer (shards decode the quantized segment,
so that — not the float64 parent — is the reference).  Rebalancing
migrates live sessions between shards mid-stream; clients follow the
``moved`` redirect transparently and the finals still match.
"""

import asyncio
import os

import pytest

from repro.asr.streaming import transcribe_streams
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.serve import (
    ServeConfig,
    ShardedClient,
    ShardedServer,
    ShardRouter,
    run_load,
)
from repro.shm import bundle_quantize

CONFIG = DecoderConfig(beam=14.0)
BATCH_FRAMES = 8


def _repro_segments() -> set[str]:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("repro-")
        }
    except FileNotFoundError:
        return set()


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = _repro_segments()
    yield
    leaked = _repro_segments() - before
    assert not leaked, f"test leaked /dev/shm segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def quantized_results(tiny_task, tiny_scores):
    """Ground truth: sequential streaming over the quantized graphs."""
    am, lm = bundle_quantize(tiny_task.am, tiny_task.lm)
    decoder = OnTheFlyDecoder(am, lm, CONFIG)
    return transcribe_streams(decoder, tiny_scores, BATCH_FRAMES)


def make_sharded(tiny_task, shards=2, **overrides) -> ShardedServer:
    return ShardedServer(
        tiny_task.am,
        tiny_task.lm,
        decoder_config=CONFIG,
        serve_config=ServeConfig(max_sessions=8, **overrides),
        shards=shards,
    )


class TestShardRouter:
    def test_deterministic_across_instances(self):
        keys = [f"session-{i}" for i in range(200)]
        a = ShardRouter(3)
        b = ShardRouter(3)
        assert [a.shard_for(k) for k in keys] == [
            b.shard_for(k) for k in keys
        ]

    def test_spread_reaches_every_shard(self):
        keys = [f"u{i}" for i in range(200)]
        counts = ShardRouter(4).spread(keys)
        assert sum(counts) == len(keys)
        assert all(count > 0 for count in counts)
        # md5 over 64 virtual nodes per shard: no shard should own the
        # overwhelming majority of a 200-key population.
        assert max(counts) < 150

    def test_consistent_hashing_limits_remap(self):
        keys = [f"u{i}" for i in range(400)]
        two, three = ShardRouter(2), ShardRouter(3)
        moved = sum(
            1 for k in keys if two.shard_for(k) != three.shard_for(k)
        )
        # Growing 2 -> 3 shards should remap roughly 1/3 of keys; far
        # below the ~2/3 a modulo router would reshuffle.
        assert moved / len(keys) < 0.5

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, virtual_nodes=0)


class TestShardedServing:
    def test_load_matches_sequential_and_spreads(
        self, tiny_task, tiny_scores, quantized_results
    ):
        async def scenario():
            async with make_sharded(tiny_task, shards=2) as server:
                client = ShardedClient(server.endpoints)
                try:
                    report = await run_load(
                        client,
                        tiny_scores,
                        concurrency=4,
                        batch_frames=BATCH_FRAMES,
                        seed=7,
                    )
                    status = await server.status()
                    memory = await server.memory_report()
                finally:
                    await client.close()
                return report, status, memory, server.router

        report, status, memory, router = asyncio.run(scenario())

        for outcome, want in zip(report.outcomes, quantized_results):
            assert outcome.words == want.words
            assert outcome.cost == want.cost
            assert outcome.frames == want.stats.frames

        # Per-shard admissions must match the router's deterministic
        # placement of the loadgen's u<i> keys exactly.
        per_shard = router.spread(
            f"u{i}" for i in range(len(tiny_scores))
        )
        for shard_status in status["shards"]:
            shard = shard_status["shard"]
            admitted = shard_status["metrics"]["counters"].get(
                "sessions_admitted", 0
            )
            assert admitted == per_shard[shard]
        assert status["num_shards"] == 2
        assert status["active_sessions"] == 0  # drained
        assert (
            status["metrics"]["counters"]["sessions_admitted"]
            == len(tiny_scores)
        )

        # Zero-copy: no shard may privatize a meaningful fraction of
        # the shared segment (read-only views never dirty its pages).
        assert memory["shared_nbytes"] > 0
        for info in memory["shards"]:
            segment = info.get("segment")
            if segment is None:  # /proc/<pid>/smaps unavailable
                continue
            assert segment["private_bytes"] * 10 <= memory["shared_nbytes"]

    def test_endpoint_for_agrees_with_router(self, tiny_task):
        async def scenario():
            async with make_sharded(tiny_task, shards=2) as server:
                return [
                    (
                        server.endpoint_for(key),
                        server.endpoints[server.router.shard_for(key)],
                    )
                    for key in ("u0", "u1", "alpha", "beta")
                ]

        for via_server, via_router in asyncio.run(scenario()):
            assert via_server == via_router


class TestRebalance:
    def test_mid_stream_migration_is_transparent(
        self, tiny_task, tiny_scores, quantized_results
    ):
        """Load one shard, steal work onto the other, keep streaming:
        clients follow the redirect and the finals stay bit-identical."""

        async def scenario():
            async with make_sharded(tiny_task, shards=2) as server:
                hot = [
                    key
                    for key in (f"m{i}" for i in range(100))
                    if server.router.shard_for(key) == 0
                ][:4]
                assert len(hot) == 4
                client = ShardedClient(server.endpoints)
                try:
                    sessions = [await client.open(key=key) for key in hot]
                    for session, scores in zip(sessions, tiny_scores):
                        await session.push(scores[:BATCH_FRAMES])
                    moves = await server.rebalance()
                    finals = []
                    for session, scores in zip(sessions, tiny_scores):
                        for start in range(
                            BATCH_FRAMES, scores.shape[0], BATCH_FRAMES
                        ):
                            await session.push(
                                scores[start : start + BATCH_FRAMES]
                            )
                        finals.append(await session.finish())
                    status = await server.status()
                    redirects = [list(s.moves) for s in sessions]
                finally:
                    await client.close()
                return moves, finals, status, redirects

        moves, finals, status, redirects = asyncio.run(scenario())

        # 4 sessions on shard 0, none on shard 1: stealing runs until
        # the spread is within one -> exactly two migrations.
        assert len(moves) == 2
        assert all(move["from"] == 0 and move["to"] == 1 for move in moves)

        counters = status["metrics"]["counters"]
        assert counters["sessions_moved"] == len(moves)
        assert counters["sessions_adopted"] == len(moves)

        # Each migrated session's client observed (and followed) the
        # redirect; un-migrated sessions saw none.
        followed = [r for r in redirects if r]
        assert len(followed) == len(moves)

        for final, want in zip(finals, quantized_results):
            assert final["words"] == want.words
            assert final["cost"] == want.cost
            assert final["frames"] == want.stats.frames
        assert status["active_sessions"] == 0
