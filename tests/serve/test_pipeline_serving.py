"""Feature-streaming serving: pipelined scoring end to end.

Sessions that negotiate ``payload: features`` stream raw feature
frames and the *server* runs the acoustic model — on the scoring
pipeline's worker thread ahead of the scheduler (pipelined mode) or
lazily at dispatch (sync mode).  Either way every final must be
bit-identical to the classic pre-scored protocol, which itself matches
sequential streaming; the compact ``b64f32`` encoding quantizes the
wire matrices, so it asserts word parity only.
"""

import asyncio

import numpy as np
import pytest

from repro.am.pipeline import ScoringError
from repro.asr.streaming import transcribe_streams
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.serve import (
    ScoringService,
    ServeConfig,
    ServeError,
    TcpClient,
    TranscriptionServer,
)
from repro.serve.loadgen import run_load

CONFIG = DecoderConfig(beam=14.0)
BATCH_FRAMES = 8


@pytest.fixture(scope="module")
def sequential_results(tiny_task, tiny_scores):
    decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
    return transcribe_streams(decoder, tiny_scores, BATCH_FRAMES)


def make_server(tiny_task, tiny_scorer, **overrides) -> TranscriptionServer:
    serve_config = ServeConfig(**overrides)
    return TranscriptionServer(
        tiny_task.am,
        tiny_task.lm,
        scorer=tiny_scorer,
        decoder_config=CONFIG,
        serve_config=serve_config,
    )


async def stream_one(client, matrix, payload="features", encoding="list"):
    session = await client.open(payload=payload, encoding=encoding)
    for start in range(0, matrix.shape[0], BATCH_FRAMES):
        await session.push(matrix[start : start + BATCH_FRAMES])
    return await session.finish()


def stream_utterances(tiny_task, tiny_scorer, utterances, **kwargs):
    overrides = kwargs.pop("server", {})

    async def scenario():
        async with make_server(
            tiny_task, tiny_scorer, max_sessions=8, **overrides
        ) as server:
            client = server.connect_local()
            finals = await asyncio.gather(
                *(
                    stream_one(client, u.features, **kwargs)
                    for u in utterances
                )
            )
            return finals, server.status_message()

    return asyncio.run(scenario())


class TestFeatureStreaming:
    def test_pipelined_finals_match_sequential(
        self, tiny_task, tiny_scorer, tiny_utterances, sequential_results
    ):
        """Feature payloads through the pipelined scorer: every final
        bit-equal to the sequential pre-scored pass."""
        finals, status = stream_utterances(
            tiny_task, tiny_scorer, tiny_utterances
        )
        for final, want in zip(finals, sequential_results):
            assert final["words"] == want.words
            assert final["cost"] == want.cost
            assert final["frames"] == want.stats.frames
        assert status["scoring"] == "pipelined"
        counters = status["metrics"]["counters"]
        assert counters["feature_batches_scored"] >= len(tiny_utterances)

    def test_sync_scoring_mode_matches_too(
        self, tiny_task, tiny_scorer, tiny_utterances, sequential_results
    ):
        """pipeline_scoring=False scores at dispatch on the executor
        thread — the measured baseline, same transcripts."""
        finals, status = stream_utterances(
            tiny_task,
            tiny_scorer,
            tiny_utterances,
            server={"pipeline_scoring": False},
        )
        assert status["scoring"] == "sync"
        for final, want in zip(finals, sequential_results):
            assert final["words"] == want.words
            assert final["cost"] == want.cost

    def test_b64f32_features_preserve_words(
        self, tiny_task, tiny_scorer, tiny_utterances, sequential_results
    ):
        """The compact encoding quantizes features to float32: costs
        drift, transcripts hold on this task."""
        finals, _ = stream_utterances(
            tiny_task, tiny_scorer, tiny_utterances, encoding="b64f32"
        )
        for final, want in zip(finals, sequential_results):
            assert final["words"] == want.words

    def test_scores_payload_still_default_and_exact(
        self, tiny_task, tiny_scorer, tiny_scores, sequential_results
    ):
        finals, _ = stream_utterances(
            tiny_task,
            tiny_scorer,
            [type("U", (), {"features": s})() for s in tiny_scores],
            payload="scores",
        )
        for final, want in zip(finals, sequential_results):
            assert final["words"] == want.words
            assert final["cost"] == want.cost

    def test_scorerless_server_rejects_features_payload(self, tiny_task):
        async def scenario():
            server = TranscriptionServer(
                tiny_task.am, tiny_task.lm, decoder_config=CONFIG
            )
            async with server:
                client = server.connect_local()
                with pytest.raises(ServeError):
                    await client.open(payload="features")
                assert server.status_message()["scoring"] is None

        asyncio.run(scenario())

    def test_tcp_feature_streaming_matches_local(
        self, tiny_task, tiny_scorer, tiny_utterances, sequential_results
    ):
        async def scenario():
            server = make_server(tiny_task, tiny_scorer, port=0)
            async with server:
                client = await TcpClient.connect(
                    server.config.host, server.port
                )
                try:
                    return await asyncio.gather(
                        *(
                            stream_one(client, u.features)
                            for u in tiny_utterances[:3]
                        )
                    )
                finally:
                    await client.close()

        finals = asyncio.run(scenario())
        for final, want in zip(finals, sequential_results):
            assert final["words"] == want.words
            assert final["cost"] == want.cost


class TestLoadgenPayloadKnob:
    def test_feature_load_parity_with_score_load(
        self, tiny_task, tiny_scorer, tiny_utterances, tiny_scores
    ):
        """Same seed, payload=features vs payload=scores: identical
        outcomes utterance for utterance (the --payload knob's parity
        contract)."""

        async def run(payload):
            async with make_server(
                tiny_task, tiny_scorer, max_sessions=8
            ) as server:
                return await run_load(
                    server.connect_local(),
                    tiny_scores,
                    concurrency=4,
                    batch_frames=BATCH_FRAMES,
                    seed=99,
                    feature_matrices=(
                        [u.features for u in tiny_utterances]
                        if payload == "features"
                        else None
                    ),
                    payload=payload,
                )

        scores_report = asyncio.run(run("scores"))
        features_report = asyncio.run(run("features"))
        assert features_report.payload == "features"
        assert features_report.utterances == scores_report.utterances
        for got, want in zip(
            features_report.outcomes, scores_report.outcomes
        ):
            assert got.words == want.words
            assert got.cost == want.cost
            assert got.frames == want.frames

    def test_features_payload_requires_matrices(
        self, tiny_task, tiny_scorer, tiny_scores
    ):
        async def scenario():
            async with make_server(tiny_task, tiny_scorer) as server:
                with pytest.raises(ValueError):
                    await run_load(
                        server.connect_local(),
                        tiny_scores,
                        payload="features",
                    )

        asyncio.run(scenario())


class TestScoringService:
    def test_sync_and_pipelined_agree_bitwise(
        self, tiny_scorer, tiny_utterances
    ):
        features = tiny_utterances[0].features
        pipelined = ScoringService(tiny_scorer, pipelined=True)
        sync = ScoringService(tiny_scorer, pipelined=False)
        try:
            a = pipelined.submit(features).result()
            b = sync.submit(features).result()
        finally:
            pipelined.close()
            sync.close()
        assert np.array_equal(a, b)
        assert np.array_equal(a, tiny_scorer.score(features))

    def test_zero_frame_submission_short_circuits(self, tiny_scorer):
        service = ScoringService(tiny_scorer, pipelined=True)
        try:
            handle = service.submit(np.zeros((0, 0)))
            assert handle.result().shape == (0, 0)
        finally:
            service.close()

    def test_resolution_error_is_cached(self, tiny_scorer, tiny_utterances):
        class Failing:
            chunk_exact = True
            num_senones = tiny_scorer.num_senones

            def score(self, features):
                raise RuntimeError("boom")

        service = ScoringService(Failing(), pipelined=True)
        try:
            handle = service.submit(tiny_utterances[0].features)
            with pytest.raises(ScoringError):
                handle.result()
            # Replay-on-failure re-resolves for free: same typed error.
            with pytest.raises(ScoringError):
                handle.result()
        finally:
            service.close()

    def test_requires_a_scorer(self):
        with pytest.raises(ValueError):
            ScoringService(None)
