"""Session fusion in the serving stack: parity, metrics, determinism.

With ``fuse_sessions`` on (the default) the scheduler hands up to
``max_fused_sessions`` queued sessions to ``InlineEngine.push_many``
per dispatch cycle, which advances them through one lockstep kernel
per frame.  Served transcripts must be bit-identical with fusion on or
off; the win shows up in the metrics (fewer engine dispatches —
``kernel_calls`` — per decoded batch) rather than in the words.
"""

import asyncio

import pytest

from repro.asr.streaming import StreamingSession
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.serve import ServeConfig, TranscriptionServer
from repro.serve.engine import EngineError, InlineEngine
from repro.serve.loadgen import run_load

CONFIG = DecoderConfig(beam=14.0)
BATCH_FRAMES = 8


class TestInlineEnginePushMany:
    def test_matches_solo_sessions(self, tiny_task, tiny_scores):
        engine = InlineEngine(tiny_task.am, tiny_task.lm, CONFIG, fuse=True)
        ids = [f"s{i}" for i in range(4)]
        for session_id in ids:
            engine.start(session_id)
        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        references = [
            StreamingSession(decoder, lookup=decoder.lookup.fork())
            for _ in ids
        ]
        for start in range(0, max(s.shape[0] for s in tiny_scores), 8):
            items = [
                (session_id, tiny_scores[i][start : start + 8])
                for i, session_id in enumerate(ids)
            ]
            partials = engine.push_many(items)
            for reference, (_, batch), partial in zip(
                references, items, partials
            ):
                assert reference.push(batch) == partial
        for i, session_id in enumerate(ids):
            want = references[i].finish()
            got = engine.finish(session_id)
            assert got.words == want.words
            assert got.cost == want.cost

    def test_unknown_session_raises_before_any_advance(
        self, tiny_task, tiny_scores
    ):
        engine = InlineEngine(tiny_task.am, tiny_task.lm, CONFIG, fuse=True)
        engine.start("a")
        engine.start("b")
        with pytest.raises(EngineError):
            engine.push_many(
                [
                    ("a", tiny_scores[0][:8]),
                    ("missing", tiny_scores[1][:8]),
                    ("b", tiny_scores[2][:8]),
                ]
            )
        # Every known session's frame counter is untouched — including
        # the one listed *before* the unknown id in the batch.
        assert engine._sessions["a"].frames_consumed == 0
        assert engine._sessions["b"].frames_consumed == 0
        # And the sessions are still usable: decoding from here matches
        # a fresh solo reference bit-for-bit, proving no hidden state
        # advanced either.
        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        for session_id, scores in (("a", tiny_scores[0]),
                                   ("b", tiny_scores[2])):
            reference = StreamingSession(
                decoder, lookup=decoder.lookup.fork()
            )
            assert engine.push(session_id, scores[:8]) == reference.push(
                scores[:8]
            )
            want = reference.finish()
            got = engine.finish(session_id)
            assert got.words == want.words
            assert got.cost == want.cost

    def test_fuse_off_serializes(self, tiny_task, tiny_scores):
        engine = InlineEngine(tiny_task.am, tiny_task.lm, CONFIG, fuse=False)
        assert engine.max_fused_sessions == 1
        engine.start("a")
        engine.start("b")
        partials = engine.push_many(
            [("a", tiny_scores[0][:8]), ("b", tiny_scores[1][:8])]
        )
        assert [p.frames_consumed for p in partials] == [8, 8]


def _serve(tiny_task, tiny_scores, fuse, seed=7):
    async def scenario():
        server = TranscriptionServer(
            tiny_task.am,
            tiny_task.lm,
            decoder_config=CONFIG,
            serve_config=ServeConfig(max_sessions=8, fuse_sessions=fuse),
        )
        async with server:
            report = await run_load(
                server.connect_local(),
                tiny_scores,
                concurrency=len(tiny_scores),
                batch_frames=BATCH_FRAMES,
                seed=seed,
            )
            return report, server.metrics.snapshot()

    return asyncio.run(scenario())


class TestFusedServing:
    def test_transcripts_match_unfused(self, tiny_task, tiny_scores):
        fused, fused_snap = _serve(tiny_task, tiny_scores, fuse=True)
        unfused, unfused_snap = _serve(tiny_task, tiny_scores, fuse=False)
        for a, b in zip(fused.outcomes, unfused.outcomes):
            assert a.words == b.words, a.index
            assert a.cost == b.cost, a.index
        # Unfused serving pays one engine dispatch per batch; fusion
        # must beat that ratio (that is its entire point).
        fused_ratio = (
            fused_snap["counters"]["kernel_calls"]
            / fused_snap["counters"]["batches_decoded"]
        )
        unfused_ratio = (
            unfused_snap["counters"]["kernel_calls"]
            / unfused_snap["counters"]["batches_decoded"]
        )
        assert unfused_ratio == 1.0
        assert fused_ratio < unfused_ratio
        assert fused_snap["gauges"]["fused_sessions"] >= 2

    def test_seeded_replay_is_deterministic(self, tiny_task, tiny_scores):
        first, _ = _serve(tiny_task, tiny_scores, fuse=True, seed=99)
        second, _ = _serve(tiny_task, tiny_scores, fuse=True, seed=99)
        assert first.seed == second.seed == 99
        assert [o.words for o in first.outcomes] == [
            o.words for o in second.outcomes
        ]
        assert [o.cost for o in first.outcomes] == [
            o.cost for o in second.outcomes
        ]
