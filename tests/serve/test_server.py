"""Transcription-server tests: the ISSUE's acceptance criteria.

Concurrent sessions must transcribe exactly what sequential streaming
does; admission control must reject, never hang; graceful shutdown
must drain; metrics must show real work.  Every test drives the real
asyncio stack via ``asyncio.run`` (no event-loop test plugin needed).
"""

import asyncio

import numpy as np
import pytest

from repro.asr.streaming import transcribe_streams
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.serve import (
    Busy,
    ServeConfig,
    ServeError,
    TcpClient,
    TranscriptionServer,
)

CONFIG = DecoderConfig(beam=14.0)
BATCH_FRAMES = 8


@pytest.fixture(scope="module")
def sequential_results(tiny_task, tiny_scores):
    """The ground truth every served transcript must match."""
    decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
    return transcribe_streams(decoder, tiny_scores, BATCH_FRAMES)


def make_server(tiny_task, **overrides) -> TranscriptionServer:
    serve_config = ServeConfig(**overrides)
    return TranscriptionServer(
        tiny_task.am, tiny_task.lm, decoder_config=CONFIG,
        serve_config=serve_config,
    )


async def stream_one(client, scores, batch_frames=BATCH_FRAMES):
    session = await client.open()
    for start in range(0, scores.shape[0], batch_frames):
        await session.push(scores[start : start + batch_frames])
    return await session.finish()


class TestConcurrentSessions:
    def test_concurrent_streams_match_sequential(
        self, tiny_task, tiny_scores, sequential_results
    ):
        """N >= 4 interleaved sessions, each transcript bit-equal to the
        sequential pass (the subsystem's core acceptance criterion)."""
        assert len(tiny_scores) >= 4

        async def scenario():
            async with make_server(tiny_task, max_sessions=8) as server:
                client = server.connect_local()
                return await asyncio.gather(
                    *(stream_one(client, scores) for scores in tiny_scores)
                )

        finals = asyncio.run(scenario())
        for final, want in zip(finals, sequential_results):
            assert final["words"] == want.words
            assert final["cost"] == want.cost
            assert final["frames"] == want.stats.frames

    def test_partials_flow_during_streaming(self, tiny_task, tiny_scores):
        async def scenario():
            async with make_server(tiny_task) as server:
                session = await server.connect_local().open()
                partials = [
                    await session.push(tiny_scores[0][i : i + BATCH_FRAMES])
                    for i in range(0, 24, BATCH_FRAMES)
                ]
                await session.finish()
                return partials

        partials = asyncio.run(scenario())
        consumed = [p["frames_consumed"] for p in partials]
        assert consumed == sorted(consumed)
        assert all(p["type"] == "partial" for p in partials)

    def test_finish_with_no_pushes(self, tiny_task):
        async def scenario():
            async with make_server(tiny_task) as server:
                session = await server.connect_local().open()
                return await session.finish()

        final = asyncio.run(scenario())
        assert final["words"] == []
        assert final["frames"] == 0


class TestAdmissionControl:
    def test_session_table_full_rejects_explicitly(
        self, tiny_task, tiny_scores
    ):
        async def scenario():
            async with make_server(tiny_task, max_sessions=2) as server:
                client = server.connect_local()
                first = await client.open()
                second = await client.open()
                with pytest.raises(Busy) as excinfo:
                    await client.open()
                reason = excinfo.value.reason
                # Retiring a session frees the slot.
                await first.finish()
                third = await client.open()
                await second.finish()
                await third.finish()
                return reason, server.metrics.snapshot()

        reason, metrics = asyncio.run(scenario())
        assert "session table full" in reason
        assert metrics["counters"]["sessions_rejected"] == 1

    def test_full_frame_queue_rejects_push(self, tiny_task, tiny_scores):
        async def scenario():
            async with make_server(
                tiny_task, max_queued_batches=1
            ) as server:
                session = await server.connect_local().open()
                rejected = 0
                # Synchronous burst: the scheduler never gets the loop
                # back between pushes, so the second must bounce.
                session.push_nowait(tiny_scores[0][:BATCH_FRAMES])
                try:
                    session.push_nowait(tiny_scores[0][:BATCH_FRAMES])
                except Busy:
                    rejected += 1
                await session.finish()
                return rejected, server.metrics.snapshot()

        rejected, metrics = asyncio.run(scenario())
        assert rejected == 1
        assert metrics["counters"]["pushes_rejected"] == 1

    def test_idle_session_evicted(self, tiny_task, tiny_scores):
        async def scenario():
            async with make_server(
                tiny_task, idle_timeout_seconds=0.05
            ) as server:
                session = await server.connect_local().open()
                await session.push(tiny_scores[0][:BATCH_FRAMES])
                await asyncio.sleep(0.3)  # go quiet past the timeout
                with pytest.raises(ServeError, match="idle timeout"):
                    await session.finish()
                return server.metrics.snapshot()

        metrics = asyncio.run(scenario())
        assert metrics["counters"]["sessions_timed_out"] == 1


class TestShutdown:
    def test_graceful_stop_drains_inflight_sessions(
        self, tiny_task, tiny_scores, sequential_results
    ):
        """Sessions mid-utterance at stop() still get real finals."""

        async def scenario():
            server = make_server(tiny_task, max_sessions=4)
            await server.start()
            client = server.connect_local()
            sessions = []
            for scores in tiny_scores[:3]:
                session = await client.open()
                await session.push(scores[:BATCH_FRAMES])
                sessions.append(session)
            stop_task = asyncio.ensure_future(server.stop(drain=True))
            finals = [
                await asyncio.wait_for(s.finish(), timeout=30)
                for s in sessions
            ]
            await stop_task
            return finals, server.scheduler.active_sessions

        finals, remaining = asyncio.run(scenario())
        assert remaining == 0
        for final, want in zip(finals, sequential_results):
            # Only the first batch was pushed before the drain, so the
            # final is a real result over those frames.
            assert final["type"] == "final"
            assert final["frames"] == min(
                BATCH_FRAMES, want.stats.frames
            )

    def test_drain_finishes_abandoned_sessions(self, tiny_task, tiny_scores):
        """Shutdown must not wait forever on a client that never calls
        finish — drain implies finish."""

        async def scenario():
            server = make_server(tiny_task)
            await server.start()
            session = await server.connect_local().open()
            await session.push(tiny_scores[0][:BATCH_FRAMES])
            await asyncio.wait_for(server.stop(drain=True), timeout=30)
            return server.scheduler.active_sessions, server.metrics.snapshot()

        remaining, metrics = asyncio.run(scenario())
        assert remaining == 0
        assert metrics["counters"]["sessions_completed"] == 1

    def test_non_drain_stop_errors_sessions(self, tiny_task, tiny_scores):
        async def scenario():
            server = make_server(tiny_task)
            await server.start()
            session = await server.connect_local().open()
            await session.push(tiny_scores[0][:BATCH_FRAMES])
            await server.stop(drain=False)
            with pytest.raises(ServeError, match="server stopped"):
                await session.finish()
            return server.scheduler.active_sessions

        assert asyncio.run(scenario()) == 0

    def test_admission_rejected_while_stopping(self, tiny_task):
        async def scenario():
            server = make_server(tiny_task)
            await server.start()
            await server.stop()
            client = server.connect_local()
            with pytest.raises(Busy, match="shutting down"):
                await client.open()

        asyncio.run(scenario())


class TestMetricsAndStatus:
    def test_status_reports_nonzero_metrics_after_load(
        self, tiny_task, tiny_scores
    ):
        async def scenario():
            async with make_server(tiny_task) as server:
                client = server.connect_local()
                await stream_one(client, tiny_scores[0])
                return await client.status()

        status = asyncio.run(scenario())
        assert status["type"] == "status"
        assert status["ok"] is True
        counters = status["metrics"]["counters"]
        assert counters["sessions_admitted"] == 1
        assert counters["sessions_completed"] == 1
        assert counters["frames_decoded"] == tiny_scores[0].shape[0]
        assert counters["batches_decoded"] > 0
        latency = status["metrics"]["histograms"]["batch_decode_seconds"]
        assert latency["count"] == counters["batches_decoded"]
        assert latency["p95"] > 0


class TestTcpTransport:
    def test_tcp_round_trip_matches_sequential(
        self, tiny_task, tiny_scores, sequential_results
    ):
        """Two concurrent utterances through real sockets."""

        async def scenario():
            try:
                server = make_server(tiny_task, port=0)
                await server.start()
            except OSError as exc:  # pragma: no cover - no loopback
                pytest.skip(f"cannot bind a TCP socket: {exc}")
            async with server:
                client = await TcpClient.connect(
                    server.config.host, server.port
                )
                try:
                    status = await client.status()
                    finals = await asyncio.gather(
                        *(
                            stream_one(client, scores)
                            for scores in tiny_scores[:2]
                        )
                    )
                finally:
                    await client.close()
                return status, finals

        status, finals = asyncio.run(scenario())
        assert status["type"] == "status"
        for final, want in zip(finals, sequential_results[:2]):
            assert final["words"] == want.words
            assert final["cost"] == want.cost

    def test_tcp_busy_on_full_table(self, tiny_task, tiny_scores):
        async def scenario():
            try:
                server = make_server(tiny_task, port=0, max_sessions=1)
                await server.start()
            except OSError as exc:  # pragma: no cover - no loopback
                pytest.skip(f"cannot bind a TCP socket: {exc}")
            async with server:
                client = await TcpClient.connect(
                    server.config.host, server.port
                )
                try:
                    session = await client.open()
                    with pytest.raises(Busy, match="session table full"):
                        await client.open()
                    await session.finish()
                finally:
                    await client.close()

        asyncio.run(scenario())


class TestProcessEngine:
    def test_worker_processes_match_pool_reference(
        self, tiny_task, tiny_scorer, tiny_scores
    ):
        """workers > 1 pins sessions to processes; transcripts equal the
        bundle-quantized DecodePool reference."""
        from repro.asr.parallel import DecodePool

        with DecodePool(
            tiny_task.am, tiny_task.lm, scorer=tiny_scorer, config=CONFIG
        ) as pool:
            expected = pool.decode_streams(
                tiny_scores[:4], batch_frames=BATCH_FRAMES
            )

        async def scenario():
            server = TranscriptionServer(
                tiny_task.am,
                tiny_task.lm,
                decoder_config=CONFIG,
                serve_config=ServeConfig(max_sessions=4, workers=2),
                scorer=tiny_scorer,
            )
            async with server:
                client = server.connect_local()
                return await asyncio.gather(
                    *(
                        stream_one(client, scores)
                        for scores in tiny_scores[:4]
                    )
                )

        finals = asyncio.run(scenario())
        for final, want in zip(finals, expected):
            assert final["words"] == want.words
            assert final["cost"] == want.cost

    def test_workers_require_scorer(self, tiny_task):
        with pytest.raises(ValueError, match="scorer"):
            TranscriptionServer(
                tiny_task.am,
                tiny_task.lm,
                serve_config=ServeConfig(workers=2),
            )
