"""Serialization round-trip and size-accounting tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wfst import (
    ARC_RECORD_BYTES,
    STATE_RECORD_BYTES,
    Wfst,
    deserialize,
    linear_chain,
    serialize,
    uncompressed_size,
    uncompressed_size_bytes,
)


class TestSizing:
    def test_arc_record_is_128_bits(self):
        """Section 3.4: each uncompressed arc is a 128-bit structure."""
        assert ARC_RECORD_BYTES == 16

    def test_size_breakdown(self):
        fst = linear_chain([(1, 1, 0.0), (2, 2, 0.0)])
        size = uncompressed_size(fst)
        assert size.state_bytes == 3 * STATE_RECORD_BYTES
        assert size.arc_bytes == 2 * ARC_RECORD_BYTES
        assert size.total_bytes == uncompressed_size_bytes(fst)
        assert size.total_mb == pytest.approx(size.total_bytes / 2**20)

    def test_empty_machine_size(self):
        assert uncompressed_size_bytes(Wfst()) == 0

    def test_arcs_dominate_for_dense_machines(self):
        """States are <12% of the dataset for realistic out-degrees (§3.1)."""
        fst = Wfst()
        states = fst.add_states(10)
        fst.set_start(0)
        for src in states:
            for _ in range(20):
                fst.add_arc(src, 1, 1, 0.0, 0)
        size = uncompressed_size(fst)
        assert size.state_bytes / size.total_bytes < 0.12


class TestRoundTrip:
    def test_simple_round_trip(self):
        fst = linear_chain([(1, 2, 0.5), (3, 4, 0.25)])
        fst.set_final(2, 0.125)
        restored = deserialize(serialize(fst))
        assert restored.num_states == fst.num_states
        assert restored.start == fst.start
        assert restored.finals == fst.finals
        assert [a for _, a in restored.all_arcs()] == [a for _, a in fst.all_arcs()]

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize(b"XXXX" + b"\x00" * 32)

    def test_serialized_size_tracks_accounting(self):
        fst = linear_chain([(1, 1, 0.0)] * 5)
        blob = serialize(fst)
        accounted = uncompressed_size_bytes(fst)
        # Header is the only overhead beyond the accounted arrays.
        assert len(blob) == accounted + 16

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
                st.floats(min_value=0, max_value=10, allow_nan=False, width=32),
            ),
            max_size=20,
        )
    )
    def test_round_trip_property(self, labels):
        fst = linear_chain(labels)
        restored = deserialize(serialize(fst))
        assert restored.num_arcs == fst.num_arcs
        for (_, a), (_, b) in zip(restored.all_arcs(), fst.all_arcs()):
            assert (a.ilabel, a.olabel, a.nextstate) == (b.ilabel, b.olabel, b.nextstate)
            assert a.weight == pytest.approx(b.weight, rel=1e-6)
