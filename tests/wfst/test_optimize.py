"""Tests for weight pushing, determinization and minimization."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wfst import Wfst, enumerate_paths, linear_chain, shortest_path, union
from repro.wfst.fst import EPSILON
from repro.wfst.optimize import determinize, minimize, push_weights


def _language(fst, max_length=8):
    best = {}
    for path in enumerate_paths(fst, max_length=max_length):
        key = (
            tuple(l for l in path.ilabels if l != EPSILON),
            tuple(l for l in path.olabels if l != EPSILON),
        )
        if path.weight < best.get(key, math.inf):
            best[key] = path.weight
    return best


def _assert_equivalent(a, b, max_length=8):
    lang_a = _language(a, max_length)
    lang_b = _language(b, max_length)
    assert set(lang_a) == set(lang_b)
    for key in lang_a:
        assert lang_a[key] == pytest.approx(lang_b[key], abs=1e-9)


class TestPushWeights:
    def test_language_preserved(self):
        fst = Wfst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.add_arc(s1, 2, 2, 5.0, s2)
        fst.set_final(s2, 1.0)
        _assert_equivalent(fst, push_weights(fst))

    def test_weights_moved_early(self):
        fst = Wfst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.add_arc(s1, 2, 2, 6.0, s2)
        fst.set_final(s2)
        pushed = push_weights(fst)
        # The entire path cost sits on the first arc now.
        assert pushed.out_arcs(s0)[0].weight == pytest.approx(6.0)
        assert pushed.out_arcs(s1)[0].weight == pytest.approx(0.0)

    def test_branches_keep_differences(self):
        fst = union(_weighted_chain([1], 2.0), _weighted_chain([2], 7.0))
        _assert_equivalent(fst, push_weights(fst))


def _weighted_chain(labels, weight):
    chain = linear_chain([(l, l, 0.0) for l in labels])
    chain.set_final(chain.num_states - 1, weight)
    return chain


class TestDeterminize:
    def test_merges_duplicate_prefixes(self):
        fst = Wfst()
        s0, a1, a2, b1, b2 = fst.add_states(5)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 1.0, a1)
        fst.add_arc(s0, 1, 1, 3.0, b1)
        fst.add_arc(a1, 2, 2, 0.0, a2)
        fst.add_arc(b1, 3, 3, 0.0, b2)
        fst.set_final(a2)
        fst.set_final(b2)
        det = determinize(fst)
        # One arc per label pair at every state.
        for state in det.states():
            labels = [(a.ilabel, a.olabel) for a in det.out_arcs(state)]
            assert len(labels) == len(set(labels))
        _assert_equivalent(fst, det)

    def test_residual_weights_exact(self):
        fst = Wfst()
        s0, a1, b1 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 1.0, a1)
        fst.add_arc(s0, 1, 1, 4.0, b1)
        fst.set_final(a1, 0.0)
        fst.set_final(b1, 0.0)
        det = determinize(fst)
        assert shortest_path(det).weight == pytest.approx(1.0)
        _assert_equivalent(fst, det)

    def test_epsilon_rejected(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, EPSILON, EPSILON, 0.0, s1)
        fst.set_final(s1)
        with pytest.raises(ValueError):
            determinize(fst)

    def test_state_limit_guards_nontermination(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        # Classic non-determinizable machine: same label, diverging
        # weights around a cycle.
        a, b = fst.add_states(2)
        fst.add_arc(s0, 1, 1, 0.0, a)
        fst.add_arc(s0, 1, 1, 0.0, b)
        # Two siblings with different cycle weights (twins property
        # violated): residuals diverge and subsets never repeat.
        fst.add_arc(a, 1, 1, 1.0, a)
        fst.add_arc(b, 1, 1, 2.0, b)
        fst.set_final(a)
        fst.set_final(b)
        del s1
        with pytest.raises(MemoryError):
            determinize(fst, max_states=64)


class TestMinimize:
    def test_merges_equivalent_suffixes(self):
        # Two words sharing an identical 2-arc suffix from distinct states.
        fst = Wfst()
        s0, a1, a2, b1, b2, end = fst.add_states(6)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, a1)
        fst.add_arc(s0, 2, 2, 0.0, b1)
        fst.add_arc(a1, 9, 9, 0.5, a2)
        fst.add_arc(b1, 9, 9, 0.5, b2)
        fst.add_arc(a2, 8, 8, 0.0, end)
        fst.add_arc(b2, 8, 8, 0.0, end)
        fst.set_final(end)
        minimal = minimize(fst)
        assert minimal.num_states < fst.num_states
        _assert_equivalent(fst, minimal)

    def test_already_minimal_unchanged_in_size(self):
        chain = linear_chain([(1, 1, 0.5), (2, 2, 0.25)])
        minimal = minimize(chain)
        assert minimal.num_states == chain.num_states
        _assert_equivalent(chain, minimal)

    def test_weight_placement_does_not_block_merging(self):
        # Same suffix language, weights placed differently.
        fst = Wfst()
        s0, a1, b1, end = fst.add_states(4)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, a1)
        fst.add_arc(s0, 2, 2, 0.0, b1)
        fst.add_arc(a1, 9, 9, 3.0, end)  # cost on the arc
        fst.add_arc(b1, 9, 9, 0.0, end)
        fst.set_final(end)
        # b-path must cost 3 too, but via the final weight: give b1 its
        # own final-weighted end state.
        end2 = fst.add_state()
        fst.arcs[b1] = []
        fst.add_arc(b1, 9, 9, 0.0, end2)
        fst.set_final(end2, 3.0)
        minimal = minimize(fst)
        _assert_equivalent(fst, minimal)
        assert minimal.num_states < fst.num_states

    def test_nondeterministic_rejected(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.add_arc(s0, 1, 1, 1.0, s1)
        fst.set_final(s1)
        with pytest.raises(ValueError):
            minimize(fst)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(1, 3), min_size=1, max_size=4),
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        ),
        min_size=1,
        max_size=4,
    )
)
def test_det_min_pipeline_preserves_language(word_specs):
    """union of weighted chains -> rm-eps -> det -> min == original."""
    from repro.wfst.build import remove_epsilon

    machines = [_weighted_chain(labels, w) for labels, w in word_specs]
    fst = machines[0]
    for other in machines[1:]:
        fst = union(fst, other)
    # Compare epsilon-free to epsilon-free: the raw union's epsilon arcs
    # inflate path lengths past a fixed enumeration horizon.
    reference = remove_epsilon(fst)
    optimized = minimize(determinize(reference))
    _assert_equivalent(reference, optimized, max_length=6)
    assert optimized.num_states <= max(1, fst.num_states)
