"""Tests for rational WFST operations (union/concat/closure/rm-epsilon)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wfst import enumerate_paths, linear_chain, shortest_path
from repro.wfst.build import closure, concat, remove_epsilon, union
from repro.wfst.fst import EPSILON, Wfst


def _chain(labels, weight=0.0):
    return linear_chain([(l, l, weight) for l in labels])


def _accepted(fst, max_length=8):
    """Set of epsilon-stripped input sequences with their best weights."""
    best = {}
    for path in enumerate_paths(fst, max_length=max_length):
        key = tuple(l for l in path.ilabels if l != EPSILON)
        if path.weight < best.get(key, math.inf):
            best[key] = path.weight
    return best


class TestUnion:
    def test_accepts_both_languages(self):
        u = union(_chain([1, 2]), _chain([3]))
        accepted = _accepted(u)
        assert (1, 2) in accepted
        assert (3,) in accepted
        assert (1, 3) not in accepted

    def test_weights_preserved(self):
        u = union(_chain([1], weight=2.0), _chain([2], weight=5.0))
        accepted = _accepted(u)
        assert accepted[(1,)] == pytest.approx(2.0)
        assert accepted[(2,)] == pytest.approx(5.0)

    def test_requires_start(self):
        with pytest.raises(ValueError):
            union(Wfst(), _chain([1]))


class TestConcat:
    def test_sequences_concatenate(self):
        c = concat(_chain([1]), _chain([2, 3]))
        accepted = _accepted(c)
        assert set(accepted) == {(1, 2, 3)}

    def test_final_weight_moves_to_join(self):
        a = _chain([1])
        a.set_final(a.num_states - 1, 4.0)
        c = concat(a, _chain([2], weight=1.0))
        accepted = _accepted(c)
        assert accepted[(1, 2)] == pytest.approx(5.0)

    def test_empty_side(self):
        c = concat(linear_chain([]), _chain([7]))
        assert set(_accepted(c)) == {(7,)}


class TestClosure:
    def test_zero_and_many_repetitions(self):
        c = closure(_chain([5]))
        accepted = _accepted(c, max_length=8)
        assert () in accepted
        assert (5,) in accepted
        assert (5, 5, 5) in accepted

    def test_weights_accumulate_per_repetition(self):
        c = closure(_chain([5], weight=1.5))
        accepted = _accepted(c, max_length=8)
        assert accepted[(5, 5)] == pytest.approx(3.0)


class TestRemoveEpsilon:
    def _with_eps(self):
        fst = Wfst()
        s0, s1, s2 = fst.add_states(3)
        fst.set_start(s0)
        fst.add_arc(s0, EPSILON, EPSILON, 0.5, s1)
        fst.add_arc(s1, 7, 7, 1.0, s2)
        fst.add_arc(s0, 8, 8, 4.0, s2)
        fst.set_final(s2, 0.25)
        fst.set_final(s1, 2.0)
        return fst

    def test_no_epsilon_arcs_remain(self):
        cleaned = remove_epsilon(self._with_eps())
        for _, arc in cleaned.all_arcs():
            assert not (arc.ilabel == EPSILON and arc.olabel == EPSILON)

    def test_language_and_weights_preserved(self):
        original = self._with_eps()
        cleaned = remove_epsilon(original)
        assert _accepted(cleaned) == pytest.approx(_accepted(original))

    def test_finals_folded_through_epsilon(self):
        cleaned = remove_epsilon(self._with_eps())
        # start can reach s1 (final 2.0) via eps 0.5.
        assert cleaned.final_weight(0) == pytest.approx(2.5)

    def test_epsilon_cycle_safe(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, EPSILON, EPSILON, 0.1, s1)
        fst.add_arc(s1, EPSILON, EPSILON, 0.1, s0)
        fst.add_arc(s1, 3, 3, 1.0, s1)
        fst.set_final(s1)
        cleaned = remove_epsilon(fst)
        accepted = _accepted(cleaned)
        assert (3,) in accepted
        assert accepted[(3,)] == pytest.approx(1.1)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(1, 3), min_size=1, max_size=3),
    st.lists(st.integers(1, 3), min_size=1, max_size=3),
)
def test_union_concat_properties(seq_a, seq_b):
    a, b = _chain(seq_a), _chain(seq_b)
    u = _accepted(union(a, b))
    assert tuple(seq_a) in u and tuple(seq_b) in u
    c = _accepted(concat(a, b))
    assert set(c) == {tuple(seq_a + seq_b)}
    # Best path through the union equals the better operand.
    best = shortest_path(union(a, b))
    assert best.weight == pytest.approx(0.0)
