"""Unit tests for the Wfst container and symbol tables."""

import math

import pytest

from repro.wfst import EPSILON, SymbolTable, Wfst, linear_chain


class TestSymbolTable:
    def test_epsilon_is_zero(self):
        table = SymbolTable()
        assert table.symbol_of(EPSILON) == "<eps>"
        assert table.id_of("<eps>") == 0

    def test_add_is_idempotent(self):
        table = SymbolTable()
        first = table.add("hello")
        second = table.add("hello")
        assert first == second

    def test_ids_are_dense(self):
        table = SymbolTable()
        ids = [table.add(w) for w in ("a", "b", "c")]
        assert ids == [1, 2, 3]
        assert len(table) == 4

    def test_round_trip(self):
        table = SymbolTable()
        table.add("word")
        assert table.symbol_of(table.id_of("word")) == "word"

    def test_contains(self):
        table = SymbolTable()
        table.add("x")
        assert "x" in table
        assert "y" not in table

    def test_iteration(self):
        table = SymbolTable()
        table.add("a")
        assert list(table) == [(0, "<eps>"), (1, "a")]


class TestWfst:
    def test_empty_machine(self):
        fst = Wfst()
        assert fst.num_states == 0
        assert fst.num_arcs == 0
        assert fst.start == -1

    def test_add_state_and_arcs(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 2, 0.5, s1)
        fst.set_final(s1, 0.25)
        assert fst.num_states == 2
        assert fst.num_arcs == 1
        arc = fst.out_arcs(s0)[0]
        assert (arc.ilabel, arc.olabel, arc.weight, arc.nextstate) == (1, 2, 0.5, 1)
        assert fst.final_weight(s1) == 0.25
        assert fst.final_weight(s0) == math.inf

    def test_invalid_state_rejected(self):
        fst = Wfst()
        fst.add_state()
        with pytest.raises(ValueError):
            fst.set_start(5)
        with pytest.raises(ValueError):
            fst.add_arc(0, 1, 1, 0.0, 7)

    def test_arcsort_by_ilabel(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.add_arc(s0, 3, 0, 0.0, s1)
        fst.add_arc(s0, 1, 0, 0.0, s1)
        fst.add_arc(s0, 2, 0, 0.0, s1)
        fst.arcsort("ilabel")
        assert [a.ilabel for a in fst.out_arcs(s0)] == [1, 2, 3]

    def test_arcsort_by_olabel(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.add_arc(s0, 0, 9, 0.0, s1)
        fst.add_arc(s0, 0, 4, 0.0, s1)
        fst.arcsort("olabel")
        assert [a.olabel for a in fst.out_arcs(s0)] == [4, 9]

    def test_arcsort_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            Wfst().arcsort("weight")

    def test_stats(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, EPSILON, 5, 0.0, s1)
        fst.add_arc(s0, 2, EPSILON, 0.0, s1)
        fst.set_final(s1)
        stats = fst.stats()
        assert stats.num_states == 2
        assert stats.num_arcs == 2
        assert stats.num_final == 1
        assert stats.num_epsilon_input == 1
        assert stats.num_epsilon_output == 1
        assert stats.max_out_degree == 2
        assert stats.avg_out_degree == 1.0

    def test_stats_empty(self):
        assert Wfst().stats().avg_out_degree == 0.0

    def test_copy_is_independent(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.set_final(s1)
        clone = fst.copy()
        clone.add_arc(s0, 2, 2, 0.0, s1)
        clone.set_final(s0)
        assert fst.num_arcs == 1
        assert not fst.is_final(s0)

    def test_all_arcs_yields_sources(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.add_arc(s0, 1, 1, 0.0, s1)
        fst.add_arc(s1, 2, 2, 0.0, s0)
        sources = [src for src, _ in fst.all_arcs()]
        assert sources == [0, 1]


class TestLinearChain:
    def test_chain_structure(self):
        chain = linear_chain([(1, 0, 0.5), (2, 7, 0.25)])
        assert chain.num_states == 3
        assert chain.num_arcs == 2
        assert chain.start == 0
        assert chain.is_final(2)

    def test_empty_chain_accepts_empty_string(self):
        chain = linear_chain([])
        assert chain.num_states == 1
        assert chain.is_final(chain.start)
