"""Composition tests: hand-built cases plus brute-force equivalence."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wfst import (
    EPSILON,
    Wfst,
    best_path_per_io,
    compose,
    compose_with_stats,
    enumerate_paths,
    linear_chain,
)


def _machine(num_states, arc_specs, finals=(0,), start=0):
    fst = Wfst()
    fst.add_states(num_states)
    fst.set_start(start)
    for src, ilabel, olabel, weight, dst in arc_specs:
        fst.add_arc(src, ilabel, olabel, weight, dst)
    for state in finals:
        fst.set_final(state)
    return fst


class TestBasicComposition:
    def test_single_arc_match(self):
        a = _machine(2, [(0, 1, 5, 0.5, 1)], finals=[1])
        b = _machine(2, [(0, 5, 9, 0.25, 1)], finals=[1])
        c = compose(a, b)
        paths = enumerate_paths(c)
        assert len(paths) == 1
        assert paths[0].ilabels == (1,)
        assert paths[0].olabels == (9,)
        assert paths[0].weight == pytest.approx(0.75)

    def test_label_mismatch_yields_empty(self):
        a = _machine(2, [(0, 1, 5, 0.0, 1)], finals=[1])
        b = _machine(2, [(0, 6, 9, 0.0, 1)], finals=[1])
        c = compose(a, b)
        assert enumerate_paths(c) == []

    def test_requires_start_states(self):
        a = Wfst()
        a.add_state()
        b = _machine(1, [])
        with pytest.raises(ValueError):
            compose(a, b)

    def test_epsilon_output_in_a_moves_alone(self):
        # a: eps-output arc then a real match.
        a = _machine(3, [(0, 7, EPSILON, 0.1, 1), (1, 8, 2, 0.2, 2)], finals=[2])
        b = _machine(2, [(0, 2, 3, 0.3, 1)], finals=[1])
        c = compose(a, b)
        paths = enumerate_paths(c)
        assert len(paths) == 1
        assert paths[0].ilabels == (7, 8)
        assert [o for o in paths[0].olabels if o != EPSILON] == [3]
        assert paths[0].weight == pytest.approx(0.6)

    def test_epsilon_input_in_b_moves_alone(self):
        a = _machine(2, [(0, 1, 2, 0.1, 1)], finals=[1])
        b = _machine(3, [(0, EPSILON, 5, 0.2, 1), (1, 2, 6, 0.3, 2)], finals=[2])
        c = compose(a, b)
        paths = enumerate_paths(c)
        assert len(paths) == 1
        assert [o for o in paths[0].olabels if o != EPSILON] == [5, 6]
        assert paths[0].weight == pytest.approx(0.6)

    def test_a_then_b_epsilons_both_taken(self):
        # Requires an a-side eps move followed by a b-side eps move.
        a = _machine(3, [(0, 7, EPSILON, 0.0, 1), (1, 8, 2, 0.0, 2)], finals=[2])
        b = _machine(3, [(0, EPSILON, 9, 0.0, 1), (1, 2, 3, 0.0, 2)], finals=[2])
        c = compose(a, b)
        assert len(enumerate_paths(c)) == 1

    def test_final_weights_multiply(self):
        a = _machine(2, [(0, 1, 5, 0.0, 1)], finals=[])
        a.set_final(1, 0.5)
        b = _machine(2, [(0, 5, 9, 0.0, 1)], finals=[])
        b.set_final(1, 0.25)
        c = compose(a, b)
        paths = enumerate_paths(c)
        assert paths[0].weight == pytest.approx(0.75)

    def test_max_states_guard(self):
        a = _machine(2, [(0, 1, 5, 0.0, 1), (0, 2, 5, 0.0, 1)], finals=[1])
        b = _machine(2, [(0, 5, 9, 0.0, 1)], finals=[1])
        with pytest.raises(MemoryError):
            compose(a, b, max_states=1)

    def test_stats_counted(self):
        a = _machine(2, [(0, 1, 5, 0.0, 1)], finals=[1])
        b = _machine(2, [(0, 5, 9, 0.0, 1)], finals=[1])
        _, stats = compose_with_stats(a, b)
        assert stats.states_visited >= 2
        assert stats.arcs_created == 1
        assert stats.match_lookups == 1


class TestPhiComposition:
    """Failure-arc (back-off) matching, Section 3.3 semantics."""

    PHI = 99

    def _lm(self):
        # State 0: unigram state, has arcs for words 1 and 2.
        # State 1: bigram state, has arc only for word 1, phi -> 0.
        lm = _machine(
            3,
            [
                (0, 1, 1, 1.0, 1),
                (0, 2, 2, 2.0, 1),
                (1, 1, 1, 0.5, 1),
                (1, self.PHI, EPSILON, 0.25, 0),
            ],
            finals=[1],
        )
        lm.set_final(0)
        return lm

    def test_direct_match_ignores_phi(self):
        a = linear_chain([(10, 1, 0.0), (10, 1, 0.0)])
        c = compose(a, self._lm(), phi_label=self.PHI)
        paths = enumerate_paths(c)
        assert len(paths) == 1
        # word 1 (unigram, 1.0) then word 1 (bigram at state 1, 0.5).
        assert paths[0].weight == pytest.approx(1.5)

    def test_backoff_taken_when_no_direct_match(self):
        a = linear_chain([(10, 1, 0.0), (10, 2, 0.0)])
        c = compose(a, self._lm(), phi_label=self.PHI)
        paths = enumerate_paths(c)
        assert len(paths) == 1
        # word 1 (1.0), then word 2 backs off (0.25) to unigram (2.0).
        assert paths[0].weight == pytest.approx(3.25)

    def test_unmatchable_word_pruned(self):
        a = linear_chain([(10, 7, 0.0)])
        c = compose(a, self._lm(), phi_label=self.PHI)
        assert enumerate_paths(c) == []

    def test_phi_traversals_counted(self):
        a = linear_chain([(10, 1, 0.0), (10, 2, 0.0)])
        _, stats = compose_with_stats(a, self._lm(), phi_label=self.PHI)
        assert stats.phi_traversals == 1

    def test_phi_cycle_terminates(self):
        lm = _machine(
            2,
            [(0, self.PHI, EPSILON, 0.1, 1), (1, self.PHI, EPSILON, 0.1, 0)],
            finals=[0],
        )
        a = linear_chain([(10, 3, 0.0)])
        c = compose(a, lm, phi_label=self.PHI)
        assert enumerate_paths(c) == []


# ----- property-based equivalence against brute force -------------------

_labels = st.integers(min_value=0, max_value=3)
_weights = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)


@st.composite
def small_transducer(draw, max_states=4, max_arcs=6):
    num_states = draw(st.integers(min_value=1, max_value=max_states))
    fst = Wfst()
    fst.add_states(num_states)
    fst.set_start(0)
    num_arcs = draw(st.integers(min_value=0, max_value=max_arcs))
    for _ in range(num_arcs):
        src = draw(st.integers(min_value=0, max_value=num_states - 1))
        dst = draw(st.integers(min_value=0, max_value=num_states - 1))
        fst.add_arc(src, draw(_labels), draw(_labels), draw(_weights), dst)
    finals = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_states - 1),
            min_size=1,
            max_size=num_states,
            unique=True,
        )
    )
    for state in finals:
        fst.set_final(state)
    return fst


def _brute_force_composition(a, b, max_length):
    """Reference relation: min-weight over matching path pairs."""
    best = {}
    paths_a = enumerate_paths(a, max_length=max_length)
    paths_b = enumerate_paths(b, max_length=max_length)
    for pa in paths_a:
        out_a = tuple(l for l in pa.olabels if l != EPSILON)
        in_a = tuple(l for l in pa.ilabels if l != EPSILON)
        for pb in paths_b:
            in_b = tuple(l for l in pb.ilabels if l != EPSILON)
            if out_a != in_b:
                continue
            out_b = tuple(l for l in pb.olabels if l != EPSILON)
            key = (in_a, out_b)
            weight = pa.weight + pb.weight
            if weight < best.get(key, math.inf):
                best[key] = weight
    return best


@settings(max_examples=60, deadline=None)
@given(small_transducer(), small_transducer())
def test_composition_matches_brute_force(a, b):
    """Composed best weights per io-pair equal the brute-forced relation.

    Restricted to short paths on acyclic-ish samples: when enumeration
    explodes (cyclic machines), the example is skipped.
    """
    max_length = 4
    try:
        expected = _brute_force_composition(a, b, max_length)
        c = compose(a, b)
        got = best_path_per_io(c, max_length=2 * max_length)
    except MemoryError:
        return
    for key, weight in expected.items():
        assert key in got
        assert got[key] <= weight + 1e-9
    # And nothing spurious at shorter lengths: every composed pair must
    # correspond to some matching path pair (possibly longer than the
    # brute-force horizon, so only check keys with short sequences).
    try:
        longer = _brute_force_composition(a, b, max_length + 4)
    except MemoryError:
        return
    for (ins, outs), weight in got.items():
        if len(ins) + len(outs) <= 2 and (ins, outs) in longer:
            assert weight >= longer[(ins, outs)] - 1e-9
