"""Tests for OpenFst text I/O and DOT export."""

import io

import pytest

from repro.wfst import SymbolTable, Wfst, linear_chain
from repro.wfst.dot import fst_to_dot, lattice_to_dot
from repro.wfst.text_format import (
    read_fst_text,
    read_symbol_table,
    write_fst_text,
    write_symbol_table,
)


def _round_trip(fst, **kwargs):
    buffer = io.StringIO()
    write_fst_text(fst, buffer, **kwargs)
    buffer.seek(0)
    return read_fst_text(buffer)


class TestTextFormat:
    def test_round_trip_structure(self):
        fst = linear_chain([(1, 2, 0.5), (3, 4, 0.25)])
        fst.set_final(2, 1.5)
        restored = _round_trip(fst)
        assert restored.num_states == fst.num_states
        assert restored.num_arcs == fst.num_arcs
        assert restored.start == fst.start
        assert restored.final_weight(2) == pytest.approx(1.5)
        for (_, a), (_, b) in zip(restored.all_arcs(), fst.all_arcs()):
            assert (a.ilabel, a.olabel, a.nextstate) == (b.ilabel, b.olabel, b.nextstate)
            assert a.weight == pytest.approx(b.weight, abs=1e-6)

    def test_start_state_is_first_line(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s1)  # start is not state 0
        fst.add_arc(s1, 1, 1, 0.0, s0)
        fst.set_final(s0)
        restored = _round_trip(fst)
        assert restored.start == 1

    def test_symbolic_output(self):
        table = SymbolTable()
        hello = table.add("hello")
        fst = linear_chain([(hello, hello, 0.0)])
        fst.input_symbols = table
        fst.output_symbols = table
        buffer = io.StringIO()
        write_fst_text(fst, buffer, symbols=True)
        assert "hello" in buffer.getvalue()
        buffer.seek(0)
        restored = read_fst_text(buffer, input_symbols=table, output_symbols=table)
        assert restored.out_arcs(0)[0].ilabel == hello

    def test_openfst_sample_parses(self):
        text = """\
0 1 1 1 0.5
1 2 2 2
2 0.25
"""
        fst = read_fst_text(io.StringIO(text))
        assert fst.num_states == 3
        assert fst.start == 0
        assert fst.out_arcs(1)[0].weight == 0.0
        assert fst.final_weight(2) == pytest.approx(0.25)

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            read_fst_text(io.StringIO("0 1 2\n"))

    def test_no_start_rejected_on_write(self):
        with pytest.raises(ValueError):
            write_fst_text(Wfst(), io.StringIO())

    def test_symbol_table_round_trip(self):
        table = SymbolTable("words")
        table.add("a")
        table.add("b")
        buffer = io.StringIO()
        write_symbol_table(table, buffer)
        buffer.seek(0)
        restored = read_symbol_table(buffer)
        assert restored.id_of("a") == table.id_of("a")
        assert restored.id_of("b") == table.id_of("b")
        assert len(restored) == len(table)

    def test_sparse_symbol_ids_rejected(self):
        with pytest.raises(ValueError):
            read_symbol_table(io.StringIO("<eps>\t0\nword\t5\n"))

    def test_hash_prefixed_symbols_round_trip(self):
        """#phi / #0-style symbols are entries, not comments; dropping
        them mid-table used to leave an id hole on reload."""
        table = SymbolTable("words")
        table.add("a")
        table.add("#phi")
        table.add("b")
        buffer = io.StringIO()
        write_symbol_table(table, buffer)
        buffer.seek(0)
        restored = read_symbol_table(buffer)
        assert restored.id_of("#phi") == table.id_of("#phi")
        assert restored.id_of("b") == table.id_of("b")
        assert len(restored) == len(table)


class TestDot:
    def test_fst_dot_structure(self, tiny_task):
        dot = fst_to_dot(tiny_task.lm.fst, title="lm", max_states=1000,
                         highlight_label=tiny_task.lm.backoff_label)
        assert dot.startswith('digraph "lm"')
        assert "doublecircle" in dot  # final states exist
        assert "style = dashed" in dot  # back-off arcs highlighted
        assert "ε" in dot

    def test_size_guard(self, tiny_task):
        with pytest.raises(ValueError):
            fst_to_dot(tiny_task.am.fst, max_states=5)

    def test_lattice_dot(self, tiny_task, tiny_scorer):
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, DecoderConfig())
        utt = tiny_task.test_set(1, max_words=3)[0]
        result = decoder.decode(tiny_scorer.score(utt.features))
        dot = lattice_to_dot(result.lattice, words=tiny_task.words, max_nodes=10_000)
        assert "root" in dot
        assert dot.count("shape = box") == len(result.lattice)

    def test_lattice_size_guard(self):
        from repro.core import WordLattice

        lattice = WordLattice()
        for i in range(6):
            lattice.add(1, i, 0.0, i - 1)
        with pytest.raises(ValueError):
            lattice_to_dot(lattice, max_nodes=5)
