"""Tests for trimming, shortest paths and path enumeration."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wfst import (
    Wfst,
    connect,
    coreachable_states,
    enumerate_paths,
    linear_chain,
    reachable_states,
    shortest_distance,
    shortest_path,
)


def _diamond():
    """start -> {cheap, expensive} -> final."""
    fst = Wfst()
    s0, s1, s2, s3 = fst.add_states(4)
    fst.set_start(s0)
    fst.add_arc(s0, 1, 1, 1.0, s1)
    fst.add_arc(s0, 2, 2, 5.0, s2)
    fst.add_arc(s1, 3, 3, 1.0, s3)
    fst.add_arc(s2, 3, 3, 1.0, s3)
    fst.set_final(s3)
    return fst


class TestReachability:
    def test_reachable(self):
        fst = _diamond()
        orphan = fst.add_state()
        assert reachable_states(fst) == {0, 1, 2, 3}
        assert orphan not in reachable_states(fst)

    def test_coreachable(self):
        fst = _diamond()
        dead_end = fst.add_state()
        fst.add_arc(0, 9, 9, 0.0, dead_end)
        assert dead_end not in coreachable_states(fst)

    def test_reachable_empty_machine(self):
        assert reachable_states(Wfst()) == set()

    def test_connect_removes_useless_states(self):
        fst = _diamond()
        dead_end = fst.add_state()
        fst.add_arc(0, 9, 9, 0.0, dead_end)
        orphan = fst.add_state()
        fst.set_final(orphan)
        trimmed = connect(fst)
        assert trimmed.num_states == 4
        assert trimmed.num_arcs == 4
        assert shortest_path(trimmed).weight == shortest_path(fst).weight

    def test_connect_preserves_finals_weights(self):
        fst = linear_chain([(1, 1, 0.5)])
        fst.set_final(1, 0.75)
        trimmed = connect(fst)
        assert trimmed.final_weight(trimmed.num_states - 1) == 0.75


class TestShortestPath:
    def test_distances(self):
        dist = shortest_distance(_diamond())
        assert dist == [0.0, 1.0, 5.0, 2.0]

    def test_shortest_path_takes_cheap_branch(self):
        path = shortest_path(_diamond())
        assert path.ilabels == (1, 3)
        assert path.weight == pytest.approx(2.0)

    def test_no_final_means_no_path(self):
        fst = Wfst()
        fst.set_start(fst.add_state())
        assert shortest_path(fst) is None

    def test_final_weight_included(self):
        fst = _diamond()
        fst.set_final(3, 100.0)
        assert shortest_path(fst).weight == pytest.approx(102.0)

    def test_negative_weight_rejected(self):
        fst = linear_chain([(1, 1, -0.5)])
        with pytest.raises(ValueError):
            shortest_distance(fst)

    def test_empty_machine(self):
        assert shortest_path(Wfst()) is None

    def test_cycle_handled(self):
        fst = Wfst()
        s0, s1 = fst.add_states(2)
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 1.0, s1)
        fst.add_arc(s1, 2, 2, 1.0, s0)  # cycle back
        fst.set_final(s1)
        assert shortest_path(fst).weight == pytest.approx(1.0)


class TestEnumeratePaths:
    def test_diamond_has_two_paths(self):
        paths = enumerate_paths(_diamond())
        assert len(paths) == 2
        assert {p.weight for p in paths} == {2.0, 6.0}

    def test_max_length_limits_cycles(self):
        fst = Wfst()
        s0 = fst.add_state()
        fst.set_start(s0)
        fst.add_arc(s0, 1, 1, 1.0, s0)
        fst.set_final(s0)
        paths = enumerate_paths(fst, max_length=3)
        assert sorted(len(p.ilabels) for p in paths) == [0, 1, 2, 3]

    def test_words_rendering(self):
        from repro.wfst import EPSILON, SymbolTable

        fst = linear_chain([(1, 1, 0.0), (2, EPSILON, 0.0)])
        table = SymbolTable()
        table.add("hello")
        fst.output_symbols = table
        paths = enumerate_paths(fst)
        assert paths[0].words(fst) == ["hello"]

    def test_words_without_table_stringifies(self):
        fst = linear_chain([(1, 3, 0.0)])
        assert enumerate_paths(fst)[0].words(fst) == ["3"]


@st.composite
def random_dag(draw):
    """A random acyclic machine (arcs only go forward)."""
    num_states = draw(st.integers(min_value=2, max_value=6))
    fst = Wfst()
    fst.add_states(num_states)
    fst.set_start(0)
    fst.set_final(num_states - 1)
    num_arcs = draw(st.integers(min_value=1, max_value=10))
    for _ in range(num_arcs):
        src = draw(st.integers(min_value=0, max_value=num_states - 2))
        dst = draw(st.integers(min_value=src + 1, max_value=num_states - 1))
        weight = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        fst.add_arc(src, 1, 1, weight, dst)
    return fst


@settings(max_examples=100, deadline=None)
@given(random_dag())
def test_shortest_path_matches_enumeration(fst):
    """Dijkstra's answer equals the brute-force minimum over all paths."""
    paths = enumerate_paths(fst, max_length=10)
    best = shortest_path(fst)
    if not paths:
        assert best is None
    else:
        assert best.weight == pytest.approx(min(p.weight for p in paths))


@settings(max_examples=50, deadline=None)
@given(random_dag())
def test_connect_preserves_best_path(fst):
    trimmed = connect(fst)
    before = shortest_path(fst)
    after = shortest_path(trimmed)
    if before is None:
        assert after is None
    else:
        assert after.weight == pytest.approx(before.weight)
