"""Semiring law tests (unit + property-based)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wfst.semiring import LOG, TROPICAL

weights = st.one_of(
    st.just(math.inf),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)

semirings = st.sampled_from([TROPICAL, LOG])


class TestIdentities:
    def test_tropical_zero_is_plus_identity(self):
        assert TROPICAL.plus(TROPICAL.zero, 3.5) == 3.5

    def test_tropical_one_is_times_identity(self):
        assert TROPICAL.times(TROPICAL.one, 3.5) == 3.5

    def test_tropical_plus_is_min(self):
        assert TROPICAL.plus(2.0, 5.0) == 2.0

    def test_tropical_times_is_sum(self):
        assert TROPICAL.times(2.0, 5.0) == 7.0

    def test_log_plus_sums_probabilities(self):
        # -log(0.5) (+) -log(0.5) == -log(1.0)
        half = -math.log(0.5)
        assert LOG.plus(half, half) == pytest.approx(0.0)

    def test_log_plus_with_zero(self):
        assert LOG.plus(LOG.zero, 1.25) == 1.25

    def test_zero_annihilates_times(self):
        for sr in (TROPICAL, LOG):
            assert sr.times(sr.zero, 1.0) == sr.zero

    def test_better_is_strict(self):
        assert TROPICAL.better(1.0, 2.0)
        assert not TROPICAL.better(2.0, 2.0)

    def test_approx_equal(self):
        assert TROPICAL.approx_equal(1.0, 1.0 + 1e-12)
        assert not TROPICAL.approx_equal(1.0, 1.1)
        assert TROPICAL.approx_equal(math.inf, math.inf)
        assert not TROPICAL.approx_equal(math.inf, 1.0)


class TestLaws:
    @given(semirings, weights, weights)
    def test_plus_commutative(self, sr, a, b):
        assert sr.approx_equal(sr.plus(a, b), sr.plus(b, a))

    @given(semirings, weights, weights, weights)
    def test_plus_associative(self, sr, a, b, c):
        left = sr.plus(sr.plus(a, b), c)
        right = sr.plus(a, sr.plus(b, c))
        assert sr.approx_equal(left, right, tol=1e-6)

    @given(semirings, weights, weights, weights)
    def test_times_associative(self, sr, a, b, c):
        left = sr.times(sr.times(a, b), c)
        right = sr.times(a, sr.times(b, c))
        assert sr.approx_equal(left, right, tol=1e-6)

    @given(semirings, weights)
    def test_identities_hold(self, sr, a):
        assert sr.plus(sr.zero, a) == a
        assert sr.times(sr.one, a) == a

    @given(weights, weights, weights)
    def test_tropical_distributes(self, a, b, c):
        sr = TROPICAL
        left = sr.times(a, sr.plus(b, c))
        right = sr.plus(sr.times(a, b), sr.times(a, c))
        assert sr.approx_equal(left, right, tol=1e-6)

    @given(weights, weights)
    def test_log_plus_never_worse_than_best(self, a, b):
        # Summing probabilities can only make the event more likely.
        assert LOG.plus(a, b) <= min(a, b) + 1e-9
