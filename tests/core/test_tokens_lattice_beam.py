"""Unit tests for tokens, lattice and beam pruning."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    COMPACT_RECORD_BYTES,
    RAW_RECORD_BYTES,
    BeamConfig,
    TokenTable,
    WordLattice,
    frame_threshold,
    prune,
)


class TestTokenTable:
    def test_insert_new(self):
        table = TokenTable()
        assert table.insert(1, 2, 5.0, -1)
        assert len(table) == 1
        assert table.best_cost == 5.0

    def test_viterbi_recombination_keeps_better(self):
        table = TokenTable()
        table.insert(1, 2, 5.0, -1)
        assert not table.insert(1, 2, 6.0, 7)  # worse: dropped
        token = table.tokens[(1, 2)]
        assert token.cost == 5.0
        assert token.lattice_node == -1
        assert table.recombinations == 1

    def test_improvement_updates_in_place(self):
        table = TokenTable()
        table.insert(1, 2, 5.0, -1)
        original = table.tokens[(1, 2)]
        assert table.insert(1, 2, 3.0, 9)
        assert table.tokens[(1, 2)] is original
        assert original.cost == 3.0
        assert original.lattice_node == 9
        assert table.improvements == 1

    def test_distinct_lm_states_do_not_collide(self):
        table = TokenTable()
        table.insert(1, 2, 5.0, -1)
        table.insert(1, 3, 6.0, -1)
        assert len(table) == 2

    def test_best_cost_tracks_minimum(self):
        table = TokenTable()
        table.insert(1, 1, 5.0, -1)
        table.insert(2, 2, 3.0, -1)
        table.insert(3, 3, 8.0, -1)
        assert table.best_cost == 3.0

    def test_clear(self):
        table = TokenTable()
        table.insert(1, 1, 5.0, -1)
        table.clear()
        assert len(table) == 0
        assert table.best_cost == math.inf
        assert table.inserts == 0

    def test_survivors(self):
        table = TokenTable()
        table.insert(1, 1, 1.0, -1)
        table.insert(2, 2, 5.0, -1)
        assert [t.cost for t in table.survivors(2.0)] == [1.0]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 3),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_table_holds_minimum_per_key(self, inserts):
        table = TokenTable()
        best = {}
        for am, lm, cost in inserts:
            table.insert(am, lm, cost, -1)
            key = (am, lm)
            best[key] = min(best.get(key, math.inf), cost)
        assert {k: t.cost for k, t in table.tokens.items()} == best
        assert table.best_cost == min(best.values())


class TestWordLattice:
    def test_backtrace_chain(self):
        lattice = WordLattice()
        a = lattice.add(5, 10, 1.0, -1)
        b = lattice.add(7, 20, 2.0, a)
        c = lattice.add(9, 30, 3.0, b)
        assert lattice.backtrace(c) == [5, 7, 9]
        assert lattice.depth(c) == 3

    def test_backtrace_root(self):
        lattice = WordLattice()
        assert lattice.backtrace(-1) == []

    def test_dangling_backpointer_rejected(self):
        lattice = WordLattice()
        with pytest.raises(ValueError):
            lattice.add(1, 1, 1.0, 5)

    def test_shared_prefixes(self):
        lattice = WordLattice()
        a = lattice.add(5, 10, 1.0, -1)
        b1 = lattice.add(7, 20, 2.0, a)
        b2 = lattice.add(8, 20, 2.5, a)
        assert lattice.backtrace(b1) == [5, 7]
        assert lattice.backtrace(b2) == [5, 8]
        assert len(lattice) == 3

    def test_size_accounting(self):
        lattice = WordLattice()
        lattice.add(1, 1, 1.0, -1)
        lattice.add(2, 2, 2.0, 0)
        assert lattice.size_bytes(compact=True) == 2 * COMPACT_RECORD_BYTES
        assert lattice.size_bytes(compact=False) == 2 * RAW_RECORD_BYTES
        assert COMPACT_RECORD_BYTES < RAW_RECORD_BYTES


class TestBeam:
    def _table(self, costs):
        table = TokenTable()
        for i, cost in enumerate(costs):
            table.insert(i, 0, cost, -1)
        return table

    def test_beam_keeps_within_margin(self):
        table = self._table([1.0, 5.0, 20.0])
        survivors, pruned = prune(table, BeamConfig(beam=10.0))
        assert {t.cost for t in survivors} == {1.0, 5.0}
        assert pruned == 1

    def test_empty_table(self):
        survivors, pruned = prune(TokenTable(), BeamConfig(beam=10.0))
        assert survivors == []
        assert pruned == 0

    def test_max_active_caps_survivors(self):
        table = self._table([1.0, 2.0, 3.0, 4.0])
        survivors, pruned = prune(table, BeamConfig(beam=100.0, max_active=2))
        assert sorted(t.cost for t in survivors) == [1.0, 2.0]
        assert pruned == 2

    def test_threshold(self):
        table = self._table([2.0])
        assert frame_threshold(table, BeamConfig(beam=3.0)) == 5.0
        assert frame_threshold(TokenTable(), BeamConfig(beam=3.0)) == math.inf

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BeamConfig(beam=0.0)
        with pytest.raises(ValueError):
            BeamConfig(beam=1.0, max_active=-1)
