"""Decoder edge cases and robustness."""

import math

import numpy as np
import pytest

from repro.core import DecoderConfig, OnTheFlyDecoder


@pytest.fixture(scope="module")
def decoder(tiny_task):
    return OnTheFlyDecoder(tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0))


class TestEdgeCases:
    def test_zero_frames(self, decoder, tiny_task):
        scores = np.zeros((0, tiny_task.num_senones))
        result = decoder.decode(scores)
        # The start token sits at the loop state; the empty hypothesis
        # is valid (its cost is the LM's start-context </s> weight).
        assert result.words == []
        assert result.stats.frames == 0

    def test_single_frame_cannot_finish_a_word(self, decoder, tiny_task):
        scores = np.zeros((1, tiny_task.num_senones))
        result = decoder.decode(scores)
        assert result.words == []
        assert result.stats.frames == 1

    def test_extra_senone_columns_tolerated(self, decoder, tiny_task, tiny_scores):
        padded = np.pad(tiny_scores[0], ((0, 0), (0, 3)))
        result = decoder.decode(padded)
        reference = decoder.decode(tiny_scores[0])
        assert result.words == reference.words

    def test_uniform_scores_prefer_lm(self, tiny_task):
        """With uninformative acoustics, output follows LM-likely paths."""
        decoder = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=25.0)
        )
        frames = 40
        scores = np.zeros((frames, tiny_task.num_senones))
        result = decoder.decode(scores)
        if result.success and result.words:
            for word in result.words:
                assert word in set(tiny_task.grammar.vocabulary)

    def test_decoder_reusable_across_utterances(self, decoder, tiny_scores):
        first = decoder.decode(tiny_scores[0])
        again = decoder.decode(tiny_scores[0])
        assert first.words == again.words
        assert first.cost == pytest.approx(again.cost)
        # Independent lattices per decode.
        assert first.lattice is not again.lattice

    def test_offset_table_warm_across_utterances(self, tiny_task, tiny_scores):
        decoder = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0)
        )
        decoder.decode(tiny_scores[0])
        second = decoder.decode(tiny_scores[0])
        # Re-decoding the same utterance hits the (persistent) OLT.
        assert second.stats.lookup.olt_hit_ratio > 0.5

    def test_lattice_consistent_with_words(self, decoder, tiny_scores):
        result = decoder.decode(tiny_scores[1])
        if result.success:
            assert len(result.word_ids) <= len(result.lattice)
            assert result.lattice.size_bytes() == 8 * len(result.lattice)

    def test_cost_finite_only_on_success(self, decoder, tiny_scores):
        result = decoder.decode(tiny_scores[0])
        assert result.success == math.isfinite(result.cost)
