"""Property test: decoder equivalence across random small tasks.

The tiny-task equivalence tests pin one configuration; this sweeps
random task seeds and beams, asserting the paper's core correctness
property — the on-the-fly decoder and the fully-composed baseline
explore the same search space — on every sample.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import GmmAcousticModel
from repro.asr import TINY, build_task
from repro.core import (
    DecoderConfig,
    FullyComposedDecoder,
    OnTheFlyDecoder,
    VirtualComposedGraph,
)

_TASK_CACHE: dict[int, tuple] = {}


def _task(seed: int):
    if seed not in _TASK_CACHE:
        config = TINY.with_overrides(
            name=f"tiny-eq-{seed}", seed=seed, vocab_size=10, corpus_sentences=80
        )
        task = build_task(config)
        scorer = GmmAcousticModel.from_emissions(
            task.emissions, num_mixtures=1, noise_scale=task.config.noise_scale
        )
        _TASK_CACHE[seed] = (task, scorer)
    return _TASK_CACHE[seed]


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=6.0, max_value=18.0),
    st.integers(min_value=0, max_value=10_000),
)
def test_equivalence_across_seeds_and_beams(task_seed, beam, utt_seed):
    task, scorer = _task(task_seed)
    rng = np.random.default_rng(utt_seed)
    words = [
        task.grammar.vocabulary[int(rng.integers(0, len(task.grammar.vocabulary)))]
        for _ in range(int(rng.integers(1, 4)))
    ]
    utterance = task.synthesizer.synthesize(words)
    scores = scorer.score(utterance.features)

    config = DecoderConfig(beam=beam, preemptive_pruning=False)
    ours = OnTheFlyDecoder(task.am, task.lm, config).decode(scores)
    ref = FullyComposedDecoder(
        VirtualComposedGraph(task.am, task.lm), config
    ).decode(scores)

    assert ours.words == ref.words
    if ours.success and ref.success:
        assert ours.cost == pytest.approx(ref.cost, rel=1e-9)
    assert ours.stats.expansions == ref.stats.expansions
