"""Tests for the two-pass decoder (the strategy the paper rejects)."""

import numpy as np
import pytest

from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.core.two_pass import TwoPassDecoder


@pytest.fixture(scope="module")
def two_pass(tiny_task):
    return TwoPassDecoder(
        tiny_task.am,
        tiny_task.lm,
        tiny_task.ngram,
        DecoderConfig(beam=14.0),
    )


@pytest.fixture(scope="module")
def one_pass(tiny_task):
    return OnTheFlyDecoder(tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0))


class TestTwoPass:
    def test_decodes_clean_speech(self, tiny_task, tiny_scorer, two_pass):
        from repro.asr.wer import word_error_rate

        utts = tiny_task.test_set(8, max_words=4)
        hyps = [
            two_pass.decode(tiny_scorer.score(utt.features)).words for utt in utts
        ]
        # The lattice approximation costs some accuracy, but clean speech
        # must still be substantially recovered.
        assert word_error_rate([u.words for u in utts], hyps) < 0.4

    def test_accuracy_comparable_to_one_pass(
        self, two_pass, one_pass, tiny_task, tiny_scorer
    ):
        """Two-pass accuracy trails one-pass but stays in its vicinity.

        The first pass keeps only the Viterbi-best token per AM state,
        so the lattice loses alternatives the one-pass search would have
        rescored in flight — exactly the approximation cost that (with
        its latency) made the paper pick one-pass.
        """
        from repro.asr.wer import word_error_rate

        utts = tiny_task.test_set(8, max_words=4)
        refs = [u.words for u in utts]
        one = [one_pass.decode(tiny_scorer.score(u.features)).words for u in utts]
        two = [two_pass.decode(tiny_scorer.score(u.features)).words for u in utts]
        one_wer = word_error_rate(refs, one)
        two_wer = word_error_rate(refs, two)
        assert two_wer <= one_wer + 0.5

    def test_first_pass_produces_lattice(self, two_pass, tiny_scores):
        lattice, finals, stats = two_pass.first_pass(tiny_scores[0])
        assert len(lattice) > 0
        assert stats.lattice_nodes == len(lattice)
        assert finals, "first pass must reach word boundaries"
        assert stats.first_pass.expansions > 0

    def test_rescoring_counts_paths(self, two_pass, tiny_scores):
        result = two_pass.decode(tiny_scores[0])
        del result
        lattice, finals, stats = two_pass.first_pass(tiny_scores[0])
        two_pass.rescore(lattice, finals, stats)
        assert stats.lattice_paths_rescored == len(finals)

    def test_rescoring_improves_on_unigram_ranking(
        self, tiny_task, two_pass, tiny_scorer
    ):
        """Full-LM rescoring must never pick a worse path than pass one
        believes best under the true model."""
        utt = tiny_task.test_set(1, max_words=4)[0]
        scores = tiny_scorer.score(utt.features)
        lattice, finals, stats = two_pass.first_pass(scores)
        words, cost = two_pass.rescore(lattice, finals, stats)
        assert np.isfinite(cost) or not finals

    def test_bad_scores_rejected(self, two_pass):
        with pytest.raises(ValueError):
            two_pass.decode(np.zeros((5,)))
