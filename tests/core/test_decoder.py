"""Decoder correctness: recognition accuracy and cross-decoder equivalence."""

import math

import pytest

from repro.core import (
    DecoderConfig,
    FullyComposedDecoder,
    LookupStrategy,
    OnTheFlyDecoder,
    VirtualComposedGraph,
)


@pytest.fixture(scope="module")
def config():
    return DecoderConfig(beam=14.0, preemptive_pruning=False)


@pytest.fixture(scope="module")
def onthefly(tiny_task, config):
    return OnTheFlyDecoder(tiny_task.am, tiny_task.lm, config)


@pytest.fixture(scope="module")
def baseline(tiny_task, config):
    graph = VirtualComposedGraph(tiny_task.am, tiny_task.lm)
    return FullyComposedDecoder(graph, config)


class TestRecognition:
    def test_clean_speech_recovered(self, tiny_task, tiny_scorer, onthefly):
        """With accurate scores and low noise, transcripts are recovered."""
        correct = 0
        utterances = tiny_task.test_set(8, max_words=4)
        for utt in utterances:
            result = onthefly.decode(tiny_scorer.score(utt.features))
            assert result.success
            if result.words == utt.words:
                correct += 1
        assert correct >= 6  # small residual confusability is expected

    def test_decode_result_structure(self, onthefly, tiny_scores, tiny_utterances):
        result = onthefly.decode(tiny_scores[0])
        assert result.success
        assert len(result.words) == len(result.word_ids)
        assert result.stats.frames == tiny_utterances[0].num_frames
        assert result.stats.words_emitted >= len(result.words)
        assert len(result.lattice) == result.stats.words_emitted

    def test_stats_populated(self, onthefly, tiny_scores):
        result = onthefly.decode(tiny_scores[0])
        stats = result.stats
        assert stats.tokens_created > 0
        assert stats.am_state_fetches > 0
        assert stats.am_arc_fetches > stats.am_state_fetches
        assert stats.lookup.lookups > 0
        assert stats.avg_active_tokens > 1
        assert len(stats.active_history) == stats.frames

    def test_bad_score_matrix_rejected(self, onthefly):
        import numpy as np

        with pytest.raises(ValueError):
            onthefly.decode(np.zeros((10,)))
        with pytest.raises(ValueError):
            onthefly.decode(np.zeros((10, 2)))

    def test_tight_beam_degrades_gracefully(self, tiny_task, tiny_scores):
        tight = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=0.5)
        )
        result = tight.decode(tiny_scores[0])
        # May fail to reach a final state, but must not crash and must
        # prune heavily.
        assert result.stats.beam_pruned > 0

    def test_max_active_bounds_frontier(self, tiny_task, tiny_scores):
        capped = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(beam=20.0, max_active=12, preemptive_pruning=False),
        )
        result = capped.decode(tiny_scores[0])
        # The frontier after expansion can exceed the cap, but the
        # number of expanded tokens per frame cannot: check via fetches.
        assert result.stats.am_state_fetches <= 12 * result.stats.frames


class TestEquivalence:
    """On-the-fly composition must match the fully-composed baseline.

    This is the paper's central correctness claim (Section 5.1): the
    dynamic composition changes *where* the LM weight is applied, not
    the search outcome.
    """

    def test_same_words_and_costs(self, onthefly, baseline, tiny_scores):
        for scores in tiny_scores:
            ours = onthefly.decode(scores)
            ref = baseline.decode(scores)
            assert ours.words == ref.words
            if ours.success and ref.success:
                assert ours.cost == pytest.approx(ref.cost, rel=1e-9)

    def test_same_search_effort(self, onthefly, baseline, tiny_scores):
        """Both decoders explore the same (am, lm) pair space."""
        ours = onthefly.decode(tiny_scores[0])
        ref = baseline.decode(tiny_scores[0])
        assert ours.stats.tokens_created == ref.stats.tokens_created
        assert ours.stats.expansions == ref.stats.expansions
        assert ours.stats.active_history == ref.stats.active_history

    def test_preemptive_pruning_preserves_result(self, tiny_task, tiny_scores):
        """Section 3.3: only hypotheses that would be pruned anyway die."""
        base = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(beam=10.0, preemptive_pruning=False),
        )
        pre = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(beam=10.0, preemptive_pruning=True),
        )
        for scores in tiny_scores:
            a = base.decode(scores)
            b = pre.decode(scores)
            assert a.words == b.words
            if a.success:
                assert a.cost == pytest.approx(b.cost, rel=1e-9)

    def test_lookup_strategies_do_not_change_result(self, tiny_task, tiny_scores):
        results = []
        for strategy in LookupStrategy:
            decoder = OnTheFlyDecoder(
                tiny_task.am,
                tiny_task.lm,
                DecoderConfig(
                    beam=12.0, lookup_strategy=strategy, preemptive_pruning=False
                ),
            )
            results.append(decoder.decode(tiny_scores[1]))
        words = {tuple(r.words) for r in results}
        costs = {round(r.cost, 9) for r in results}
        assert len(words) == 1
        assert len(costs) == 1


class TestVirtualComposedGraph:
    def test_matches_materialized_composition(self, tiny_task):
        """The virtual graph is the offline composition, lazily."""
        from repro.wfst import shortest_path

        virtual = VirtualComposedGraph(tiny_task.am, tiny_task.lm)
        materialized = virtual.materialize_equivalent()
        best = shortest_path(materialized)
        assert best is not None

        # Walk the virtual graph along the materialized best path's
        # input labels greedily and reproduce its weight.
        state = virtual.start
        total = 0.0
        for ilabel in best.ilabels:
            candidates = [
                a
                for a in virtual.out_arcs(state)
                if a.ilabel == ilabel
            ]
            assert candidates, "virtual graph is missing a path arc"
            arc = min(candidates, key=lambda a: a.weight)
            total += arc.weight
            state = arc.nextstate
        # The greedy walk may diverge from the true best path on ties;
        # it must never beat the optimum.
        assert virtual.is_final(state) or total >= 0
        assert total + virtual.final_weight(state) >= best.weight - 1e-9

    def test_encode_decode_round_trip(self, tiny_task):
        virtual = VirtualComposedGraph(tiny_task.am, tiny_task.lm)
        for am_state in (0, 1, tiny_task.am.fst.num_states - 1):
            for lm_state in (0, tiny_task.lm.fst.num_states - 1):
                encoded = virtual.encode(am_state, lm_state)
                assert virtual.decode_state(encoded) == (am_state, lm_state)

    def test_arcs_cached(self, tiny_task):
        virtual = VirtualComposedGraph(tiny_task.am, tiny_task.lm)
        first = virtual.out_arcs(virtual.start)
        assert virtual.out_arcs(virtual.start) is first
        virtual.clear_cache()
        assert virtual.out_arcs(virtual.start) is not first

    def test_final_only_at_loop_state(self, tiny_task):
        virtual = VirtualComposedGraph(tiny_task.am, tiny_task.lm)
        assert virtual.is_final(virtual.encode(tiny_task.am.loop_state, 0))
        assert not virtual.is_final(virtual.encode(1, 0))

    def test_num_states_bound(self, tiny_task):
        virtual = VirtualComposedGraph(tiny_task.am, tiny_task.lm)
        assert (
            virtual.num_states_bound
            == tiny_task.am.fst.num_states * tiny_task.lm.fst.num_states
        )
