"""Lockstep batched decoding: bit-parity with per-utterance decoding.

``BatchDecoder`` advances B utterances through one fused kernel per
frame.  Its contract is exactness, not approximation: transcripts,
costs, final hypotheses, lattices, every ``DecoderStats`` counter and
every per-utterance lookup counter (OLT hits/misses, expansion-cache
hits/misses/evictions, preemptive prunes) must be bit-identical to
decoding each utterance alone from cold caches — the
:class:`~repro.asr.parallel.DecodePool` reference semantics.  These
tests pin that contract across batch widths, ragged lengths,
zero-frame utterances, tight beams, tiny token caps, disabled
preemptive pruning, the scalar fallback, and random small tasks.
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import GmmAcousticModel
from repro.asr import TINY, build_task
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.core.arcs import plan_recombination, stable_cost_order
from repro.core.batch import BatchDecoder, lockstep_supported

#: Lookup counters asserted by name: the expansion-cache fields carry
#: ``compare=False`` (they don't participate in LookupStats equality),
#: so stats equality alone would not cover them.
LOOKUP_COUNTERS = (
    "lookups",
    "arc_probes",
    "olt_hits",
    "olt_misses",
    "backoff_arcs_taken",
    "preemptive_prunes",
    "expansion_hits",
    "expansion_misses",
    "expansion_evictions",
)


def _lattice_nodes(lattice):
    return [
        (n.word, n.frame, n.cost, n.backpointer) for n in lattice.nodes
    ]


def _cold_reference(decoder, scores):
    results = []
    for matrix in scores:
        decoder.lookup.reset_transient_state()
        results.append(decoder.decode(matrix))
    return results


def _assert_identical(reference, batched, label=""):
    assert len(reference) == len(batched)
    for i, (ref, got) in enumerate(zip(reference, batched)):
        context = (label, i)
        assert ref.words == got.words, context
        assert ref.cost == got.cost, context
        assert ref.finals == got.finals, context
        assert _lattice_nodes(ref.lattice) == _lattice_nodes(got.lattice), (
            context
        )
        for f in dataclasses.fields(ref.stats):
            if f.name == "lookup":
                continue
            assert getattr(ref.stats, f.name) == getattr(got.stats, f.name), (
                *context,
                f.name,
            )
        for name in LOOKUP_COUNTERS:
            assert getattr(ref.stats.lookup, name) == getattr(
                got.stats.lookup, name
            ), (*context, f"lookup.{name}")


@pytest.fixture(scope="module")
def decoder(tiny_task):
    return OnTheFlyDecoder(
        tiny_task.am,
        tiny_task.lm,
        DecoderConfig(beam=14.0, max_active=800, vectorized=True),
    )


class TestBatchParity:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 8])
    def test_bit_identical_across_widths(
        self, decoder, tiny_scores, batch_size
    ):
        reference = _cold_reference(decoder, tiny_scores)
        batched = BatchDecoder(decoder, batch_size=batch_size).decode(
            tiny_scores
        )
        _assert_identical(reference, batched, f"B={batch_size}")
        assert all(
            r.strategy == f"batch[{batch_size}]" for r in batched
        )

    def test_ragged_lengths_and_zero_frames(self, decoder, tiny_scores):
        ragged = [
            s[: max(1, s.shape[0] // (i + 1))]
            for i, s in enumerate(tiny_scores)
        ]
        ragged[2] = ragged[2][:0]  # a zero-frame utterance mid-batch
        reference = _cold_reference(decoder, ragged)
        batched = BatchDecoder(decoder, batch_size=4).decode(ragged)
        _assert_identical(reference, batched, "ragged")

    def test_tight_beam_empties_frontiers(self, tiny_task, tiny_scores):
        tight = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(beam=0.5, max_active=800, vectorized=True),
        )
        reference = _cold_reference(tight, tiny_scores)
        batched = BatchDecoder(tight, batch_size=8).decode(tiny_scores)
        _assert_identical(reference, batched, "tight-beam")

    def test_small_token_cap(self, tiny_task, tiny_scores):
        capped = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(beam=14.0, max_active=5, vectorized=True),
        )
        reference = _cold_reference(capped, tiny_scores)
        batched = BatchDecoder(capped, batch_size=8).decode(tiny_scores)
        _assert_identical(reference, batched, "cap5")

    def test_no_preemptive_pruning(self, tiny_task, tiny_scores):
        plain = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(
                beam=14.0,
                max_active=800,
                vectorized=True,
                preemptive_pruning=False,
            ),
        )
        reference = _cold_reference(plain, tiny_scores)
        batched = BatchDecoder(plain, batch_size=8).decode(tiny_scores)
        _assert_identical(reference, batched, "no-preempt")

    def test_scalar_config_falls_back(self, tiny_task, tiny_scores):
        scalar = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(beam=14.0, max_active=800, vectorized=False),
        )
        assert not lockstep_supported(scalar)
        reference = _cold_reference(scalar, tiny_scores)
        batch = BatchDecoder(scalar, batch_size=8)
        batched = batch.decode(tiny_scores)
        _assert_identical(reference, batched, "scalar-fallback")
        assert all(r.strategy == "serial" for r in batched)
        assert batch.kernel_calls == 0

    def test_kernel_call_count(self, decoder, tiny_scores):
        batch = BatchDecoder(decoder, batch_size=len(tiny_scores))
        batch.decode(tiny_scores)
        # One wave, one fused kernel call per lockstep frame: the
        # longest utterance's frame count.
        assert batch.kernel_calls == max(
            s.shape[0] for s in tiny_scores
        )

    def test_rejects_bad_inputs(self, decoder, tiny_scores):
        with pytest.raises(ValueError):
            BatchDecoder(decoder, batch_size=0)
        with pytest.raises(ValueError):
            BatchDecoder(decoder).decode([tiny_scores[0][:, :2]])


_TASK_CACHE: dict[int, tuple] = {}


def _task(seed: int):
    if seed not in _TASK_CACHE:
        config = TINY.with_overrides(
            name=f"tiny-batch-{seed}",
            seed=seed,
            vocab_size=10,
            corpus_sentences=80,
        )
        task = build_task(config)
        scorer = GmmAcousticModel.from_emissions(
            task.emissions,
            num_mixtures=1,
            noise_scale=task.config.noise_scale,
        )
        utterances = task.test_set(5, max_words=4)
        scores = [scorer.score(u.features) for u in utterances]
        _TASK_CACHE[seed] = (task, scores)
    return _TASK_CACHE[seed]


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.floats(min_value=6.0, max_value=18.0),
    st.sampled_from([0, 5, 800]),
    st.integers(min_value=2, max_value=8),
)
def test_batched_equals_sequential_property(
    task_seed, beam, max_active, batch_size
):
    """Hypothesis sweep: random tasks, beams, caps and batch widths."""
    task, scores = _task(task_seed)
    decoder = OnTheFlyDecoder(
        task.am,
        task.lm,
        DecoderConfig(beam=beam, max_active=max_active, vectorized=True),
    )
    reference = _cold_reference(decoder, scores)
    batched = BatchDecoder(decoder, batch_size=batch_size).decode(scores)
    _assert_identical(reference, batched, "property")


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(1, 200))
def test_stable_cost_order_matches_stable_argsort(seed, size):
    """The two-introsort float ordering == numpy's stable argsort."""
    rng = np.random.default_rng(seed)
    # Heavy ties: quantized values exercise the rank-encoding path.
    costs = np.round(rng.uniform(0.0, 4.0, size=size), 1)
    expected = np.argsort(costs, kind="stable")
    np.testing.assert_array_equal(stable_cost_order(costs), expected)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(1, 300))
def test_plan_recombination_encoded_order_parity(seed, size):
    """encoded_order=True is a pure speedup: identical plans."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 40, size=size).astype(np.int64)
    costs = np.round(rng.uniform(0.0, 6.0, size=size), 1)
    plain = plan_recombination(keys, costs)
    fast = plan_recombination(keys, costs, encoded_order=True)
    np.testing.assert_array_equal(plain.winners, fast.winners)
    np.testing.assert_array_equal(plain.sorted_keys, fast.sorted_keys)
    np.testing.assert_array_equal(plain.slots, fast.slots)
    np.testing.assert_array_equal(
        plain.improved_sources, fast.improved_sources
    )
    assert plain.inserts == fast.inserts
    assert plain.improvements == fast.improvements
    assert plain.recombinations == fast.recombinations


@pytest.mark.skipif(
    not os.environ.get("REPRO_MEDIUM_TESTS"),
    reason="medium-preset parity is covered by the CI perf gates; "
    "set REPRO_MEDIUM_TESTS=1 to run it here too",
)
def test_medium_preset_batch_parity():
    from repro.experiments.common import MAX_ACTIVE, get_bundle
    from repro.experiments.perf_decode import BEAM, PRESETS

    bundle = get_bundle(PRESETS["medium"])
    decoder = OnTheFlyDecoder(
        bundle.task.am,
        bundle.task.lm,
        DecoderConfig(beam=BEAM, max_active=MAX_ACTIVE, vectorized=True),
    )
    reference = _cold_reference(decoder, bundle.scores)
    batched = BatchDecoder(decoder, batch_size=8).decode(bundle.scores)
    _assert_identical(reference, batched, "medium")
