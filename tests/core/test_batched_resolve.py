"""Batched LM resolution equivalence: resolve_batch vs scalar resolve.

The batched epsilon engine stands on ``LmLookup.resolve_batch`` being
an *exact* replay of per-item ``resolve`` calls — bit-identical
weights, the same back-off level counts, the same preemptive-pruning
decisions, and identical ``LookupStats`` counters including the Offset
Lookup Table's hit/miss evolution.  These tests pin that contract over
randomized LM graphs (with negative back-off penalties, which real
ARPA models have), plus the LM expansion cache's hit/evict accounting
and the ``nonneg_weights`` gate the decoders consult.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LmLookup,
    LmWordArcs,
    LookupStrategy,
)
from repro.core.trace import GraphSide
from repro.lm.graph import LmGraph
from repro.wfst.fst import SymbolTable, Wfst


def _random_lm(
    seed: int,
    vocab: int = 8,
    num_states: int = 6,
    negative_backoff: bool = False,
) -> LmGraph:
    """A random back-off LM graph honoring the construction invariants:

    word arcs ilabel-sorted, back-off arc last with a label above every
    word id, unigram state 0 holding all unigrams, back-off targets
    strictly below the source state (chains are acyclic by id order).
    """
    rng = np.random.default_rng(seed)
    words = SymbolTable("words")
    for w in range(1, vocab + 1):
        words.add(f"w{w}")
    backoff_label = words.add("#phi")

    fst = Wfst()
    fst.add_states(num_states)
    fst.start = 0
    for state in range(num_states):
        if state == 0:
            labels = np.arange(1, vocab + 1)
        else:
            count = int(rng.integers(0, vocab))
            labels = np.sort(
                rng.choice(np.arange(1, vocab + 1), size=count, replace=False)
            )
        for label in labels.tolist():
            fst.add_arc(
                state,
                ilabel=label,
                olabel=label,
                weight=round(float(rng.uniform(0.05, 5.0)), 3),
                nextstate=int(rng.integers(0, num_states)),
            )
        if state > 0:
            low = -0.8 if negative_backoff else 0.0
            fst.add_arc(
                state,
                ilabel=backoff_label,
                olabel=backoff_label,
                weight=round(float(rng.uniform(low, 2.0)), 3),
                nextstate=int(rng.integers(0, state)),
            )
        fst.set_final(state, 0.0)
    return LmGraph(
        fst=fst,
        words=words,
        backoff_label=backoff_label,
        state_of_context={(): 0},
        context_of_state=[()] * num_states,
    )


def _assert_batch_matches_scalar(
    graph, strategy, batches, preemptive, threshold, cutoff=None
):
    scalar = LmLookup(graph, strategy=strategy)
    batched = LmLookup(graph, strategy=strategy)
    if cutoff is not None:
        # Pin the engine: 0 forces the vectorized level-major path, a
        # large value forces the sequential row replay.
        batched.batch_sequential_cutoff = cutoff
    for states, word_ids, entries in batches:
        expected = [
            scalar.resolve(
                int(s),
                int(w),
                entry_cost=float(e),
                threshold=threshold,
                preemptive=preemptive,
            )
            for s, w, e in zip(states, word_ids, entries)
        ]
        got = batched.resolve_batch(
            states, word_ids, entries, threshold=threshold, preemptive=preemptive
        )
        for i, ref in enumerate(expected):
            assert got.weight[i] == ref.weight, (i, got.weight[i], ref.weight)
            assert int(got.next_state[i]) == ref.next_state
            assert bool(got.pruned[i]) == ref.pruned
            assert int(got.backoff_levels[i]) == ref.backoff_levels
        # Counter-for-counter equality, including OLT hits/misses and
        # probes (expansion_* fields are compare=False: scalar has no
        # expansion cache activity).
        assert batched.stats == scalar.stats
    if strategy is LookupStrategy.OFFSET_TABLE:
        # The OLT contents must evolve identically too, or the *next*
        # decode would diverge.
        assert np.array_equal(
            batched.offset_table._valid, scalar.offset_table._valid
        )
        mask = batched.offset_table._valid
        assert np.array_equal(
            batched.offset_table._tags[mask], scalar.offset_table._tags[mask]
        )
        assert np.array_equal(
            batched.offset_table._offsets[mask],
            scalar.offset_table._offsets[mask],
        )


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(list(LookupStrategy)),
    st.booleans(),
    st.booleans(),
    st.sampled_from([0, 1_000_000]),
)
def test_resolve_batch_matches_scalar(
    seed, strategy, preemptive, negative_backoff, cutoff
):
    graph = _random_lm(seed, negative_backoff=negative_backoff)
    rng = np.random.default_rng(seed + 1)
    num_states = graph.fst.num_states
    vocab = len(graph.words) - 2  # minus <eps> and #phi
    batches = []
    for _ in range(4):
        n = int(rng.integers(1, 20))
        batches.append(
            (
                rng.integers(0, num_states, size=n).astype(np.int64),
                rng.integers(1, vocab + 1, size=n).astype(np.int64),
                rng.uniform(0.0, 10.0, size=n),
            )
        )
    threshold = float(rng.uniform(2.0, 12.0)) if preemptive else math.inf
    _assert_batch_matches_scalar(
        graph, strategy, batches, preemptive, threshold, cutoff=cutoff
    )


@pytest.mark.parametrize("cutoff", [0, 1_000_000])
def test_resolve_batch_olt_warm_hit_ratio(cutoff):
    """Repeating a batch must warm the OLT identically on both paths."""
    graph = _random_lm(7)
    scalar = LmLookup(graph, strategy=LookupStrategy.OFFSET_TABLE)
    batched = LmLookup(graph, strategy=LookupStrategy.OFFSET_TABLE)
    batched.batch_sequential_cutoff = cutoff
    states = np.array([1, 2, 3, 1, 2, 3], dtype=np.int64)
    word_ids = np.array([1, 2, 3, 1, 2, 3], dtype=np.int64)
    entries = np.zeros(6)
    for _ in range(3):
        for s, w in zip(states.tolist(), word_ids.tolist()):
            scalar.resolve(s, w)
        batched.resolve_batch(states, word_ids, entries)
    assert batched.stats == scalar.stats
    assert batched.stats.olt_hits > 0
    assert batched.stats.olt_hit_ratio == scalar.stats.olt_hit_ratio


@pytest.mark.parametrize("cutoff", [0, 1_000_000])
def test_lookup_error_parity(cutoff):
    """A word the unigram state lacks raises identically on both paths."""
    graph = _random_lm(3, vocab=5)
    # Label 6 is within the symbol space (#phi) but not a word; use a
    # graph whose unigram state lacks a word instead: rebuild with a
    # hole by pointing at a fresh graph where word 5 is absent at 0.
    fst = Wfst()
    fst.add_states(2)
    fst.start = 0
    words = SymbolTable("words")
    for w in range(1, 5):
        words.add(f"w{w}")
    missing = words.add("w5")
    backoff_label = words.add("#phi")
    for label in range(1, 5):
        fst.add_arc(0, ilabel=label, olabel=label, weight=1.0, nextstate=0)
        fst.add_arc(1, ilabel=label, olabel=label, weight=1.0, nextstate=0)
    fst.add_arc(1, ilabel=backoff_label, olabel=backoff_label, weight=0.5, nextstate=0)
    fst.set_final(0, 0.0)
    fst.set_final(1, 0.0)
    graph = LmGraph(
        fst=fst,
        words=words,
        backoff_label=backoff_label,
        state_of_context={(): 0},
        context_of_state=[(), ()],
    )
    scalar = LmLookup(graph, strategy=LookupStrategy.BINARY)
    batched = LmLookup(graph, strategy=LookupStrategy.BINARY)
    batched.batch_sequential_cutoff = cutoff
    with pytest.raises(LookupError) as scalar_err:
        scalar.resolve(1, missing)
    with pytest.raises(LookupError) as batched_err:
        batched.resolve_batch(
            np.array([1], dtype=np.int64),
            np.array([missing], dtype=np.int64),
            np.zeros(1),
        )
    assert str(batched_err.value) == str(scalar_err.value)


def test_resolve_batch_rejects_tracing():
    class Sink:
        def on_state_fetch(self, side, state):
            pass

        def on_arc_fetch(self, side, state, ordinal):
            pass

        def on_token_write(self, nbytes):
            pass

        def on_token_hash_access(self, am, lm):
            pass

        def on_olt_access(self, lm_state, word_id, hit):
            pass

        def on_frame_end(self, frame, active):
            pass

    graph = _random_lm(1)
    lookup = LmLookup(graph, sink=Sink())
    assert not lookup.batch_supported
    with pytest.raises(RuntimeError):
        lookup.resolve_batch(
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.zeros(1),
        )


def test_expansion_cache_hits_misses_evictions():
    graph = _random_lm(11, num_states=8)
    lookup = LmLookup(
        graph, strategy=LookupStrategy.BINARY, expansion_cache_states=2
    )
    word_ids = np.array([1, 1], dtype=np.int64)
    entries = np.zeros(2)
    # Four distinct states through a 2-row cache: all miss, and the
    # last two evict the first two (LRU).
    for state in (1, 2, 3, 4):
        lookup.resolve_batch(
            np.full(2, state, dtype=np.int64), word_ids, entries
        )
    stats = lookup.stats
    assert stats.expansion_misses == 4
    # The second item of each batch hits the row the first just built.
    assert stats.expansion_hits == 4
    assert stats.expansion_evictions == 2
    # Revisiting an evicted state misses again; a cached one hits.
    lookup.resolve_batch(np.array([4], dtype=np.int64), word_ids[:1], entries[:1])
    assert lookup.stats.expansion_hits == 5
    lookup.resolve_batch(np.array([1], dtype=np.int64), word_ids[:1], entries[:1])
    assert lookup.stats.expansion_misses == 5
    assert 0.0 < lookup.stats.expansion_hit_ratio < 1.0
    assert lookup.expansion_cache.size_bytes() > 0


def test_reset_transient_state_clears_both_caches():
    graph = _random_lm(5)
    lookup = LmLookup(graph, strategy=LookupStrategy.OFFSET_TABLE)
    lookup.resolve_batch(
        np.array([1, 2], dtype=np.int64),
        np.array([1, 2], dtype=np.int64),
        np.zeros(2),
    )
    assert len(lookup.expansion_cache._rows) > 0
    # The OLT caches the pair at whichever chain state the arc was
    # found, so scan the full (state, word) space for live entries.
    cached = [
        (s, w)
        for s in range(graph.fst.num_states)
        for w in (1, 2)
        if lookup.offset_table.lookup(s, w) is not None
    ]
    assert cached  # the batch populated the OLT
    lookup.reset_transient_state()
    assert len(lookup.expansion_cache._rows) == 0
    assert all(
        lookup.offset_table.lookup(s, w) is None for s, w in cached
    )


def test_nonneg_weights_accepts_negative_backoff_with_nonneg_totals():
    """ARPA-style graphs: negative penalties, non-negative totals."""
    words = SymbolTable("words")
    for w in range(1, 3):
        words.add(f"w{w}")
    backoff_label = words.add("#phi")
    fst = Wfst()
    fst.add_states(2)
    fst.start = 0
    fst.add_arc(0, ilabel=1, olabel=1, weight=2.0, nextstate=0)
    fst.add_arc(0, ilabel=2, olabel=2, weight=3.0, nextstate=0)
    # State 1 backs off with a negative penalty, but every total stays
    # >= 0 (2.0 - 0.5, 3.0 - 0.5).
    fst.add_arc(1, ilabel=backoff_label, olabel=backoff_label, weight=-0.5, nextstate=0)
    fst.set_final(0, 0.0)
    fst.set_final(1, 0.0)
    graph = LmGraph(
        fst=fst,
        words=words,
        backoff_label=backoff_label,
        state_of_context={(): 0},
        context_of_state=[(), ()],
    )
    arcs = LmWordArcs.from_graph(graph)
    assert arcs.nonneg_weights

    # Now make one total genuinely negative: 0.3 - 0.5 < 0.
    fst.arcs[0][0] = fst.arcs[0][0].__class__(
        ilabel=1, olabel=1, weight=0.3, nextstate=0
    )
    graph_neg = LmGraph(
        fst=fst,
        words=words,
        backoff_label=backoff_label,
        state_of_context={(): 0},
        context_of_state=[(), ()],
    )
    assert not LmWordArcs.from_graph(graph_neg).nonneg_weights


def test_nonneg_weights_shadowing_rescues_deep_negative():
    """A negative deep total hidden by a shallower arc doesn't trip the
    gate: resolution can never reach the shadowed arc."""
    words = SymbolTable("words")
    words.add("w1")
    backoff_label = words.add("#phi")
    fst = Wfst()
    fst.add_states(2)
    fst.start = 0
    # Unigram arc for w1 would make a negative total through the
    # back-off (-1.0 + 0.2), but state 1 carries w1 itself, so the
    # chain never descends for it.
    fst.add_arc(0, ilabel=1, olabel=1, weight=0.2, nextstate=0)
    fst.add_arc(1, ilabel=1, olabel=1, weight=1.0, nextstate=0)
    fst.add_arc(1, ilabel=backoff_label, olabel=backoff_label, weight=-1.0, nextstate=0)
    fst.set_final(0, 0.0)
    fst.set_final(1, 0.0)
    graph = LmGraph(
        fst=fst,
        words=words,
        backoff_label=backoff_label,
        state_of_context={(): 0},
        context_of_state=[(), ()],
    )
    assert LmWordArcs.from_graph(graph).nonneg_weights
