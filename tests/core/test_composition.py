"""Tests for the LM lookup engine and the Offset Lookup Table."""

import math

import pytest

from repro.core import LmLookup, LookupStrategy, OffsetLookupTable
from repro.lm import SENTENCE_END


@pytest.fixture
def lm(tiny_task):
    return tiny_task.lm


@pytest.fixture
def model(tiny_task):
    return tiny_task.ngram


def _lookup(lm, strategy, entries=1024):
    return LmLookup(lm, strategy=strategy, offset_table_entries=entries)


class TestOffsetLookupTable:
    def test_miss_then_hit(self):
        table = OffsetLookupTable(64)
        assert table.lookup(3, 7) is None
        table.insert(3, 7, 42)
        assert table.lookup(3, 7) == 42

    def test_direct_mapped_eviction(self):
        table = OffsetLookupTable(1)  # every key maps to slot 0
        table.insert(0, 1, 10)
        table.insert(2, 3, 20)
        assert table.lookup(0, 1) is None or table.lookup(0, 1) != 10

    def test_invalidate(self):
        table = OffsetLookupTable(16)
        table.insert(1, 1, 5)
        table.invalidate()
        assert table.lookup(1, 1) is None

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            OffsetLookupTable(48)

    def test_size_bytes_matches_paper_configuration(self):
        # Section 3.5: 32K entries require 192 KB.
        table = OffsetLookupTable(32 * 1024)
        assert table.size_bytes == 192 * 1024


class TestStrategiesAgree:
    def test_all_strategies_find_same_arcs(self, lm, tiny_task):
        linear = _lookup(lm, LookupStrategy.LINEAR)
        binary = _lookup(lm, LookupStrategy.BINARY)
        olt = _lookup(lm, LookupStrategy.OFFSET_TABLE)
        for state in range(lm.fst.num_states):
            for word in tiny_task.grammar.vocabulary[:6]:
                word_id = lm.word_id(word)
                arcs = [
                    engine.find_arc(state, word_id)
                    for engine in (linear, binary, olt)
                ]
                assert len({(a.ilabel, a.nextstate, a.weight) if a else None for a in arcs}) == 1

    def test_linear_costs_more_probes_than_binary(self, lm, tiny_task):
        linear = _lookup(lm, LookupStrategy.LINEAR)
        binary = _lookup(lm, LookupStrategy.BINARY)
        state = lm.unigram_state  # widest state: one arc per word
        for word in tiny_task.grammar.vocabulary:
            word_id = lm.word_id(word)
            linear.find_arc(state, word_id)
            binary.find_arc(state, word_id)
        assert linear.stats.arc_probes > binary.stats.arc_probes

    def test_offset_table_hits_on_repeats(self, lm, tiny_task):
        olt = _lookup(lm, LookupStrategy.OFFSET_TABLE)
        state = lm.unigram_state
        word_id = lm.word_id(tiny_task.grammar.vocabulary[0])
        olt.find_arc(state, word_id)
        first_probes = olt.stats.arc_probes
        olt.find_arc(state, word_id)
        assert olt.stats.olt_hits == 1
        assert olt.stats.olt_misses == 1
        # A hit costs exactly one validating arc fetch.
        assert olt.stats.arc_probes == first_probes + 1

    def test_hit_ratio_property(self, lm, tiny_task):
        olt = _lookup(lm, LookupStrategy.OFFSET_TABLE)
        state = lm.unigram_state
        for _ in range(9):
            olt.find_arc(state, lm.word_id(tiny_task.grammar.vocabulary[1]))
        assert olt.stats.olt_hit_ratio == pytest.approx(8 / 9)


class TestResolve:
    def test_resolve_weight_equals_model_log_prob(self, lm, model, tiny_task):
        """The back-off walk reproduces the n-gram model exactly."""
        lookup = _lookup(lm, LookupStrategy.BINARY)
        for state in range(lm.fst.num_states):
            context = lm.context_of_state[state]
            for word in tiny_task.grammar.vocabulary:
                result = lookup.resolve(state, lm.word_id(word))
                expected = -model.log_prob(word, context)
                assert result.weight == pytest.approx(expected, rel=1e-9), (
                    context,
                    word,
                )

    def test_resolve_destination_has_matching_history(self, lm, tiny_task):
        lookup = _lookup(lm, LookupStrategy.BINARY)
        for word in tiny_task.grammar.vocabulary[:5]:
            result = lookup.resolve(lm.unigram_state, lm.word_id(word))
            context = lm.context_of_state[result.next_state]
            assert context == () or context[-1] == word

    def test_backoff_levels_counted(self, lm, model, tiny_task):
        lookup = _lookup(lm, LookupStrategy.BINARY)
        # Find some (state, word) needing back-off: a trigram state and a
        # word with no explicit trigram there.
        found = False
        for state in range(lm.fst.num_states):
            if lm.state_level(state) < 1:
                continue
            context = lm.context_of_state[state]
            for word in tiny_task.grammar.vocabulary:
                if not model.has_context(context) or word in model._explicit[
                    len(context)
                ].get(context, {}):
                    continue
                result = lookup.resolve(state, lm.word_id(word))
                assert result.backoff_levels >= 1
                found = True
                break
            if found:
                break
        assert found, "task too small to exercise back-off"

    def test_preemptive_prune_fires_with_tight_threshold(self, lm, model, tiny_task):
        lookup = _lookup(lm, LookupStrategy.BINARY)
        pruned_any = False
        for state in range(lm.fst.num_states):
            if lm.state_level(state) == 0:
                continue
            for word in tiny_task.grammar.vocabulary:
                result = lookup.resolve(
                    state,
                    lm.word_id(word),
                    entry_cost=0.0,
                    threshold=1e-6,
                    preemptive=True,
                )
                if result.pruned:
                    pruned_any = True
                    break
            if pruned_any:
                break
        assert pruned_any
        assert lookup.stats.preemptive_prunes >= 1

    def test_preemptive_prune_never_fires_with_loose_threshold(
        self, lm, tiny_task
    ):
        lookup = _lookup(lm, LookupStrategy.BINARY)
        for word in tiny_task.grammar.vocabulary[:5]:
            result = lookup.resolve(
                lm.unigram_state,
                lm.word_id(word),
                threshold=math.inf,
                preemptive=True,
            )
            assert not result.pruned
        assert lookup.stats.preemptive_prunes == 0

    def test_unknown_word_raises(self, lm):
        lookup = _lookup(lm, LookupStrategy.BINARY)
        missing = lm.words.add("zz-not-in-lm")
        with pytest.raises(LookupError):
            lookup.resolve(lm.unigram_state, missing)

    def test_sentence_end_not_a_word_arc(self, lm):
        """</s> lives in final weights, not arcs (build invariant)."""
        assert SENTENCE_END not in lm.words
