"""Vectorized hot-loop equivalence: outputs, counters, and traces.

The vectorized expansion (:mod:`repro.core.arcs`) must be an *exact*
replay of the scalar reference — identical transcripts and costs, but
also identical ``DecoderStats`` counters, since those feed the
accelerator models.  These tests pin that contract:

* a hypothesis sweep over random small tasks asserting scalar ==
  vectorized for both decoders;
* ``plan_recombination`` checked against a brute-force sequential
  replay of ``TokenTable.insert`` semantics;
* the traced-fallback rule: attaching a real ``TraceSink`` routes
  decoding through the scalar path, so traced runs see the same event
  stream the simulators were validated against.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import GmmAcousticModel
from repro.asr import TINY, build_task
from repro.core import (
    DecoderConfig,
    FullyComposedDecoder,
    OnTheFlyDecoder,
    VirtualComposedGraph,
    plan_recombination,
)

_TASK_CACHE: dict[int, tuple] = {}


def _task(seed: int):
    if seed not in _TASK_CACHE:
        config = TINY.with_overrides(
            name=f"tiny-vec-{seed}", seed=seed, vocab_size=10, corpus_sentences=80
        )
        task = build_task(config)
        scorer = GmmAcousticModel.from_emissions(
            task.emissions, num_mixtures=1, noise_scale=task.config.noise_scale
        )
        _TASK_CACHE[seed] = (task, scorer)
    return _TASK_CACHE[seed]


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.floats(min_value=6.0, max_value=18.0),
    st.sampled_from([0, 5, 800]),
    st.integers(min_value=0, max_value=10_000),
)
def test_vectorized_equals_scalar(task_seed, beam, max_active, utt_seed):
    task, scorer = _task(task_seed)
    rng = np.random.default_rng(utt_seed)
    words = [
        task.grammar.vocabulary[int(rng.integers(0, len(task.grammar.vocabulary)))]
        for _ in range(int(rng.integers(1, 4)))
    ]
    scores = scorer.score(task.synthesizer.synthesize(words).features)

    def config(vectorized):
        return DecoderConfig(
            beam=beam, max_active=max_active, vectorized=vectorized
        )

    for make in (
        lambda v: OnTheFlyDecoder(task.am, task.lm, config(v)),
        lambda v: FullyComposedDecoder(
            VirtualComposedGraph(task.am, task.lm), config(v)
        ),
    ):
        scalar = make(False).decode(scores)
        vectorized = make(True).decode(scores)
        assert vectorized.word_ids == scalar.word_ids
        assert vectorized.words == scalar.words
        assert vectorized.cost == scalar.cost
        assert vectorized.finals == scalar.finals
        assert vectorized.stats == scalar.stats


def _replay(keys, costs):
    """Brute-force sequential TokenTable.insert semantics."""
    best: dict[int, float] = {}
    owner: dict[int, int] = {}
    inserts = improvements = recombinations = 0
    for i, (key, cost) in enumerate(zip(keys, costs)):
        if key not in best:
            best[key] = cost
            owner[key] = i
            inserts += 1
        elif cost < best[key]:
            best[key] = cost
            owner[key] = i
            improvements += 1
        else:
            recombinations += 1
    first_arrival = list(best)  # dict insertion order
    winners = [owner[key] for key in first_arrival]
    return winners, first_arrival, inserts, improvements, recombinations


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.sampled_from([0.0, 1.0, 1.5, 2.0, 3.0]),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_plan_recombination_matches_sequential_replay(batch):
    keys = np.array([k for k, _ in batch], dtype=np.int64)
    costs = np.array([c for _, c in batch], dtype=np.float64)
    plan = plan_recombination(keys, costs)
    winners, first_arrival, inserts, improvements, recombinations = _replay(
        keys.tolist(), costs.tolist()
    )
    assert plan.winners.tolist() == winners
    assert plan.inserts == inserts
    assert plan.improvements == improvements
    assert plan.recombinations == recombinations
    # sorted_keys is the distinct keys ascending; slots maps each back
    # to its first-arrival position (the token's slot in the SoA table).
    assert plan.sorted_keys.tolist() == sorted(set(keys.tolist()))
    assert [
        first_arrival[int(slot)] for slot in plan.slots
    ] == plan.sorted_keys.tolist()


def test_plan_recombination_rejects_empty_batch():
    with pytest.raises(ValueError):
        plan_recombination(
            np.array([], dtype=np.int64), np.array([], dtype=np.float64)
        )


class CountingSink:
    """A real TraceSink that tallies every event it receives."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def on_state_fetch(self, side, state):
        self.counts["state_fetch", side] += 1

    def on_arc_fetch(self, side, state, ordinal):
        self.counts["arc_fetch", side] += 1

    def on_token_write(self, nbytes):
        self.counts["token_write"] += 1
        self.counts["token_bytes"] += nbytes

    def on_token_hash_access(self, am_state, lm_state):
        self.counts["token_hash"] += 1

    def on_olt_access(self, lm_state, word_id, hit):
        self.counts["olt", hit] += 1

    def on_frame_end(self, frame, active_tokens):
        self.counts["frame_end"] += 1
        self.counts["active_tokens"] += active_tokens


@pytest.mark.parametrize("decoder_name", ["on-the-fly", "fully-composed"])
def test_trace_sink_forces_scalar_path(tiny_task, tiny_scores, decoder_name):
    """A traced run must emit the scalar reference's exact event stream
    even when the config asks for vectorization."""

    def make(vectorized, sink=None):
        config = DecoderConfig(beam=14.0, vectorized=vectorized)
        if decoder_name == "on-the-fly":
            return OnTheFlyDecoder(tiny_task.am, tiny_task.lm, config, sink=sink)
        return FullyComposedDecoder(
            VirtualComposedGraph(tiny_task.am, tiny_task.lm), config, sink=sink
        )

    scores = tiny_scores[0]
    plain = make(True).decode(scores)
    vec_sink, scalar_sink = CountingSink(), CountingSink()
    traced_vec = make(True, sink=vec_sink).decode(scores)
    traced_scalar = make(False, sink=scalar_sink).decode(scores)

    assert vec_sink.counts == scalar_sink.counts
    assert vec_sink.counts["frame_end"] == scores.shape[0]
    assert traced_vec.words == traced_scalar.words == plain.words
    assert traced_vec.cost == traced_scalar.cost == plain.cost
    assert traced_vec.stats == traced_scalar.stats == plain.stats
