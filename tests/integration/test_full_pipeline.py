"""End-to-end integration: the whole paper's story on one small task.

Build a task, train its scorer, decode on all three platforms, compress
both representations, and check every headline relationship in one
place.  This is the repository's README, executed.
"""

import pytest

from repro.accel import (
    REZA,
    UNFOLD,
    FullyComposedSimulator,
    GpuModel,
    UnfoldSimulator,
)
from repro.asr import build_scorer, build_task
from repro.asr.task import KALDI_VOXFORGE
from repro.asr.wer import word_error_rate
from repro.compress import measure_dataset_sizing


@pytest.fixture(scope="module")
def pipeline():
    config = KALDI_VOXFORGE.with_overrides(
        name="integration-voxforge", vocab_size=80, corpus_sentences=800
    )
    task = build_task(config)
    scorer = build_scorer(task, oracle_gmm=True)
    utterances = task.test_set(6, max_words=5)
    scores = [scorer.score(u.features) for u in utterances]
    sizing = measure_dataset_sizing(task)
    factor = 1 / 8
    unfold = UnfoldSimulator(task, config=UNFOLD.scaled(factor)).run(scores)
    reza = FullyComposedSimulator(task, config=REZA.scaled(factor)).run(scores)
    gpu = GpuModel().search_run_report(
        [r.stats for r in unfold.results], task.name
    )
    return task, utterances, sizing, unfold, reza, gpu


class TestFullPipeline:
    def test_storage_story(self, pipeline):
        """On-the-fly + compression crushes the composed graph (Fig 8)."""
        *_, sizing, _, _, _ = pipeline[:6]
        sizing = pipeline[2]
        assert sizing.unfold_reduction > 10
        assert sizing.onthefly_comp_bytes < sizing.composed_comp_bytes

    def test_recognition_story(self, pipeline):
        """Both accelerators decode identically and accurately (Table 6)."""
        _, utterances, _, unfold, reza, _ = pipeline
        refs = [u.words for u in utterances]
        unfold_wer = word_error_rate(refs, [r.words for r in unfold.results])
        reza_wer = word_error_rate(refs, [r.words for r in reza.results])
        assert unfold_wer == pytest.approx(reza_wer, abs=0.02)
        assert unfold_wer < 0.4

    def test_memory_traffic_story(self, pipeline):
        """UNFOLD moves less data off-chip (Fig 11)."""
        *_, unfold, reza, _ = pipeline
        assert sum(unfold.dram_bytes_by_class.values()) < sum(
            reza.dram_bytes_by_class.values()
        )

    def test_energy_story(self, pipeline):
        """GPU >> accelerators; UNFOLD <= baseline (Fig 9)."""
        *_, unfold, reza, gpu = pipeline
        assert gpu.energy_mj_per_speech_second > unfold.energy_mj_per_speech_second
        assert (
            unfold.energy_mj_per_speech_second
            <= reza.energy_mj_per_speech_second * 1.1
        )

    def test_realtime_story(self, pipeline):
        """Everything is faster than real time; accelerators by a lot."""
        *_, unfold, reza, gpu = pipeline
        assert gpu.realtime_factor > 1
        assert unfold.realtime_factor > 20
        assert reza.realtime_factor > 20

    def test_area_story(self, pipeline):
        """UNFOLD is the smaller design (Section 5.1: 16% smaller)."""
        *_, unfold, reza, _ = pipeline
        assert unfold.area_mm2 < reza.area_mm2
