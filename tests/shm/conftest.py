"""Shared-memory test fixtures.

Every test in this package runs under a leak tripwire: any ``repro-*``
entry still present in ``/dev/shm`` after a test that was not there
before it fails the test.  Segment lifetime bugs (a pack without an
unlink, an attach that kept the name registered) show up here instead
of as machine-wide litter.
"""

import os

import pytest


def _repro_segments() -> set[str]:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("repro-")
        }
    except FileNotFoundError:  # non-Linux: nothing to watch
        return set()


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = _repro_segments()
    yield
    leaked = _repro_segments() - before
    assert not leaked, f"test leaked /dev/shm segments: {sorted(leaked)}"
