"""Property test: shm-attached decode ≡ pickled-bundle decode, bitwise.

The contract the sharded serving stack leans on: a recognizer attached
from a shared segment (``pack_recognizer(quantize=True)`` →
``attach_recognizer``) is indistinguishable from one loaded from an
on-disk bundle (``save_recognizer`` → ``load_recognizer``) — same
words, same costs bit-for-bit, and the same value for **every** decoder
statistic and lookup/cache counter, across beams, vectorized/scalar
paths, and preemptive-pruning settings.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asr.persist import load_recognizer, save_recognizer
from repro.core.decoder import DecoderConfig, OnTheFlyDecoder
from repro.shm import (
    ShmVersionError,
    attach_recognizer,
    pack_arrays,
    pack_recognizer,
)


@pytest.fixture(scope="module")
def bundle(tiny_task, tiny_scorer, tmp_path_factory):
    directory = tmp_path_factory.mktemp("recognizer-bundle")
    save_recognizer(directory, tiny_task.am, tiny_task.lm, tiny_scorer)
    return load_recognizer(directory)


@pytest.fixture(scope="module")
def attached(tiny_task, tiny_scorer):
    owner = pack_recognizer(tiny_task.am, tiny_task.lm, tiny_scorer)
    handle = attach_recognizer(owner.segment_name)
    yield handle
    handle.close()
    owner.unlink()


def _assert_bit_identical(reference, candidate):
    assert candidate.words == reference.words
    assert candidate.word_ids == reference.word_ids
    assert candidate.cost == reference.cost  # bitwise, no tolerance
    assert candidate.finals == reference.finals
    ref_stats, out_stats = reference.stats, candidate.stats
    for spec in dataclasses.fields(ref_stats):
        assert getattr(out_stats, spec.name) == getattr(
            ref_stats, spec.name
        ), f"stats.{spec.name} diverged"
    # LookupStats equality skips compare=False cache fields; check every
    # counter explicitly — cache behaviour is part of the contract.
    for spec in dataclasses.fields(ref_stats.lookup):
        assert getattr(out_stats.lookup, spec.name) == getattr(
            ref_stats.lookup, spec.name
        ), f"lookup.{spec.name} diverged"


@given(
    index=st.integers(min_value=0, max_value=5),
    beam=st.sampled_from([6.0, 10.0, 14.0]),
    vectorized=st.booleans(),
    preemptive=st.booleans(),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_attached_decode_bit_identical_to_bundle(
    bundle, attached, tiny_scores, index, beam, vectorized, preemptive
):
    config = DecoderConfig(
        beam=beam, vectorized=vectorized, preemptive_pruning=preemptive
    )
    scores = tiny_scores[index]
    reference = OnTheFlyDecoder(bundle.am, bundle.lm, config).decode(scores)
    candidate = OnTheFlyDecoder(
        attached.am, attached.lm, config, tables=attached.tables
    ).decode(scores)
    _assert_bit_identical(reference, candidate)


def test_attached_scorer_bit_identical(bundle, attached, tiny_utterances):
    for utterance in tiny_utterances[:3]:
        np.testing.assert_array_equal(
            attached.scorer.score(utterance.features),
            bundle.scorer.score(utterance.features),
        )


def test_attached_symbols_match_bundle(bundle, attached):
    assert list(attached.lm.words) == list(bundle.lm.words)
    assert attached.am.fst.num_states == bundle.am.fst.num_states
    assert attached.lm.fst.num_states == bundle.lm.fst.num_states
    assert attached.am.chain_state_senone == bundle.am.chain_state_senone


def test_attach_recognizer_rejects_plain_segment():
    with pack_arrays({"x": np.arange(4)}, meta={}) as owner:
        with pytest.raises(ShmVersionError, match="recognizer schema"):
            attach_recognizer(owner.name)
