"""Lifecycle tests for the shared-memory segment layer.

Pack/attach round-trips, read-only views, attach-after-unlink, checksum
verification against in-place corruption, and header version skew —
each failure mode must surface as its dedicated ``Shm*Error`` rather
than a numpy shape explosion three layers later.
"""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.shm import segments
from repro.shm.segments import (
    SHM_FORMAT_VERSION,
    ShmAttachError,
    ShmChecksumError,
    ShmVersionError,
    attach_arrays,
    pack_arrays,
    segment_name,
)


def _sample_arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        "weights": rng.standard_normal((13, 4)),
        "offsets": np.arange(29, dtype=np.int64),
        "flags": rng.integers(0, 2, size=17).astype(np.uint8),
        "single": np.array([3.5], dtype=np.float32),
        "empty": np.zeros((0,), dtype=np.int32),
    }


def _patch_segment(name: str, offset: int, data: bytes) -> None:
    """Flip bytes of a live segment through a raw mapping.

    Mirrors ``attach_arrays``' tracker guard: an owned segment's tracker
    registration belongs to the owner handle and must survive this
    drive-by mapping.
    """
    raw = shared_memory.SharedMemory(name=name)
    if raw.name not in segments._OWNED:
        segments._untrack(raw)
    raw.buf[offset : offset + len(data)] = data
    raw.close()


class TestRoundTrip:
    def test_pack_attach_round_trip(self):
        arrays = _sample_arrays()
        meta = {"preset": "tiny", "quantized": True, "count": 3}
        with pack_arrays(arrays, meta=meta) as owner:
            attached = attach_arrays(owner.name)
            try:
                assert set(attached.arrays) == set(arrays)
                for key, original in arrays.items():
                    view = attached.arrays[key]
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    np.testing.assert_array_equal(view, original)
                assert attached.meta == meta
                assert attached.nbytes == owner.nbytes
                assert attached.nbytes == sum(
                    a.nbytes for a in arrays.values()
                )
                assert not attached.owner
                assert owner.owner
            finally:
                attached.close()

    def test_owner_views_alias_shared_pages_not_inputs(self):
        source = np.arange(8, dtype=np.float64)
        with pack_arrays({"x": source}) as owner:
            source[:] = -1.0  # mutating the original must not leak in
            np.testing.assert_array_equal(
                owner.arrays["x"], np.arange(8, dtype=np.float64)
            )

    def test_non_contiguous_input_round_trips(self):
        base = np.arange(24, dtype=np.int64).reshape(4, 6)
        strided = base[:, ::2]
        assert not strided.flags.c_contiguous
        with pack_arrays({"s": strided}) as owner:
            attached = attach_arrays(owner.name)
            try:
                np.testing.assert_array_equal(attached.arrays["s"], strided)
            finally:
                attached.close()

    def test_views_are_read_only(self):
        with pack_arrays(_sample_arrays()) as owner:
            attached = attach_arrays(owner.name)
            try:
                for handle in (owner, attached):
                    with pytest.raises(ValueError):
                        handle.arrays["offsets"][0] = 99
            finally:
                attached.close()


class TestLifecycle:
    def test_attach_unknown_name(self):
        with pytest.raises(ShmAttachError):
            attach_arrays(segment_name())

    def test_attach_after_unlink(self):
        owner = pack_arrays(_sample_arrays())
        name = owner.name
        owner.unlink()
        with pytest.raises(ShmAttachError):
            attach_arrays(name)

    def test_owner_context_manager_unlinks(self):
        with pack_arrays(_sample_arrays()) as owner:
            name = owner.name
            attach_arrays(name).close()  # alive inside the block
        with pytest.raises(ShmAttachError):
            attach_arrays(name)

    def test_attacher_context_manager_keeps_segment(self):
        owner = pack_arrays(_sample_arrays())
        try:
            with attach_arrays(owner.name):
                pass
            again = attach_arrays(owner.name)  # close is not unlink
            again.close()
        finally:
            owner.unlink()

    def test_close_and_unlink_are_idempotent(self):
        owner = pack_arrays(_sample_arrays())
        attached = attach_arrays(owner.name)
        attached.close()
        attached.close()
        assert attached.arrays == {}
        owner.unlink()
        owner.unlink()


class TestCorruption:
    def test_checksum_mismatch_detected(self):
        arrays = _sample_arrays()
        with pack_arrays(arrays) as owner:
            blob_len = int.from_bytes(bytes(owner.shm.buf[8:16]), "little")
            base = segments._align(segments._HEADER + blob_len)
            spec = owner.manifest["arrays"]["weights"]
            victim = base + spec["offset"]
            original = bytes(owner.shm.buf[victim : victim + 1])
            _patch_segment(
                owner.name, victim, bytes([original[0] ^ 0xFF])
            )
            with pytest.raises(ShmChecksumError, match="weights"):
                attach_arrays(owner.name)
            # verify=False maps the damaged payload without checking.
            unchecked = attach_arrays(owner.name, verify=False)
            try:
                assert not np.array_equal(
                    unchecked.arrays["weights"], arrays["weights"]
                )
            finally:
                unchecked.close()

    def test_version_skew_rejected(self):
        with pack_arrays(_sample_arrays()) as owner:
            _patch_segment(
                owner.name,
                4,
                (SHM_FORMAT_VERSION + 1).to_bytes(4, "little"),
            )
            with pytest.raises(ShmVersionError, match="layout version"):
                attach_arrays(owner.name)
            # And even with checksums off: version gates come first.
            with pytest.raises(ShmVersionError):
                attach_arrays(owner.name, verify=False)

    def test_foreign_segment_rejected(self):
        with pack_arrays(_sample_arrays()) as owner:
            _patch_segment(owner.name, 0, b"NOPE")
            with pytest.raises(
                ShmVersionError, match="not a repro.shm segment"
            ):
                attach_arrays(owner.name)
