"""Tests for the word error rate metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import EditCounts, align_counts, corpus_edit_counts, word_error_rate

words = st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=8)


class TestAlign:
    def test_exact_match(self):
        counts = align_counts(["a", "b"], ["a", "b"])
        assert counts.total_edits == 0
        assert counts.error_rate == 0.0

    def test_substitution(self):
        counts = align_counts(["a", "b"], ["a", "c"])
        assert counts.substitutions == 1
        assert counts.total_edits == 1

    def test_insertion(self):
        counts = align_counts(["a"], ["a", "b"])
        assert counts.insertions == 1

    def test_deletion(self):
        counts = align_counts(["a", "b"], ["a"])
        assert counts.deletions == 1

    def test_empty_reference(self):
        counts = align_counts([], ["a"])
        assert counts.insertions == 1
        assert counts.error_rate == float("inf")
        assert align_counts([], []).error_rate == 0.0

    def test_mixed_errors(self):
        counts = align_counts(["a", "b", "c", "d"], ["a", "x", "d", "e"])
        # b->x substitution, c deleted, e inserted (one optimal alignment).
        assert counts.total_edits == 3

    def test_wer_can_exceed_one(self):
        assert word_error_rate([["a"]], [["b", "c", "d"]]) == pytest.approx(3.0)


class TestCorpus:
    def test_aggregation_weights_by_length(self):
        refs = [["a"] * 9, ["b"]]
        hyps = [["a"] * 9, ["x"]]
        assert word_error_rate(refs, hyps) == pytest.approx(0.1)

    def test_parallel_required(self):
        with pytest.raises(ValueError):
            corpus_edit_counts([["a"]], [])

    def test_counts_add(self):
        total = EditCounts(1, 2, 3, 10) + EditCounts(1, 0, 0, 10)
        assert total.total_edits == 7
        assert total.reference_words == 20


@settings(max_examples=80, deadline=None)
@given(words, words)
def test_metric_properties(ref, hyp):
    counts = align_counts(ref, hyp)
    # Edits bounded by max length; identity gives zero.
    assert counts.total_edits <= max(len(ref), len(hyp))
    assert counts.total_edits >= abs(len(ref) - len(hyp))
    if ref == hyp:
        assert counts.total_edits == 0
    # Symmetry of total edit count (ins/dels swap roles).
    reverse = align_counts(hyp, ref)
    assert counts.total_edits == reverse.total_edits
    assert counts.insertions == reverse.deletions
    assert counts.substitutions == reverse.substitutions
