"""Structural expectations for the paper-task presets (Table 1 shape)."""

import pytest

from repro.asr import build_task
from repro.asr.task import (
    EESEN_TEDLIUM,
    KALDI_LIBRISPEECH,
    KALDI_TEDLIUM,
    KALDI_VOXFORGE,
)


@pytest.fixture(scope="module")
def tasks():
    return {
        "voxforge": build_task(KALDI_VOXFORGE),
        "librispeech": build_task(KALDI_LIBRISPEECH),
        "tedlium": build_task(KALDI_TEDLIUM),
        "eesen": build_task(EESEN_TEDLIUM),
    }


class TestPresetShape:
    def test_voxforge_is_smallest(self, tasks):
        """Table 1: Voxforge is by far the smallest task."""
        vox = tasks["voxforge"]
        for name, task in tasks.items():
            if name == "voxforge":
                continue
            assert vox.am.fst.num_arcs < task.am.fst.num_arcs
            assert vox.lm.fst.num_arcs < task.lm.fst.num_arcs

    def test_eesen_lm_is_largest(self, tasks):
        """Table 1: EESEN-Tedlium carries the heaviest LM."""
        eesen_arcs = tasks["eesen"].lm.fst.num_arcs
        for name, task in tasks.items():
            if name == "eesen":
                continue
            assert eesen_arcs >= task.lm.fst.num_arcs, name

    def test_all_lms_are_trigram(self, tasks):
        for task in tasks.values():
            assert max(task.lm.num_states_by_level()) == 2

    def test_backoff_structure_everywhere(self, tasks):
        """Pruned LMs must actually have back-off arcs to exercise §3.3."""
        for task in tasks.values():
            backoffs = sum(
                1
                for s in task.lm.fst.states()
                if task.lm.backoff_arc(s) is not None
            )
            assert backoffs == task.lm.fst.num_states - 1  # all but state 0

    def test_word_tables_shared(self, tasks):
        for task in tasks.values():
            assert task.am.words is task.lm.words

    def test_unigram_fanout_equals_vocabulary(self, tasks):
        for task in tasks.values():
            unigram_arcs = task.lm.fst.out_arcs(task.lm.unigram_state)
            assert len(unigram_arcs) == task.config.vocab_size

    def test_tedlium_noisier_than_librispeech(self, tasks):
        assert (
            tasks["tedlium"].config.noise_scale
            > tasks["librispeech"].config.noise_scale
        )
