"""Tests for oracle n-best WER."""

import pytest

from repro.asr.wer import oracle_word_error_rate, word_error_rate


class TestOracleWer:
    def test_oracle_never_worse_than_one_best(self):
        refs = [["a", "b"], ["c"]]
        nbest = [[["a", "x"], ["a", "b"]], [["d"], ["e"]]]
        one_best = word_error_rate(refs, [n[0] for n in nbest])
        oracle = oracle_word_error_rate(refs, nbest)
        assert oracle <= one_best
        assert oracle == pytest.approx(1 / 3)  # a-b found; c never

    def test_empty_candidate_list(self):
        assert oracle_word_error_rate([["a"]], [[]]) == 1.0

    def test_parallel_required(self):
        with pytest.raises(ValueError):
            oracle_word_error_rate([["a"]], [])

    def test_oracle_with_decoder_nbest(self, tiny_task, tiny_scorer):
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=20.0)
        )
        utts = tiny_task.test_set(5, max_words=4)
        refs, one_best, nbest_lists = [], [], []
        for utt in utts:
            result = decoder.decode(tiny_scorer.score(utt.features))
            refs.append(utt.words)
            one_best.append(result.words)
            strings = [
                [tiny_task.lm.words.symbol_of(w) for w in words]
                for _, words in result.nbest(8)
            ]
            nbest_lists.append(strings)
        oracle = oracle_word_error_rate(refs, nbest_lists)
        assert oracle <= word_error_rate(refs, one_best)
