"""Tests for recognition error analysis."""

import pytest

from repro.asr.analysis import align_ops, analyze_errors
from repro.asr.wer import align_counts, word_error_rate


class TestAlignOps:
    def test_perfect_match(self):
        ops = align_ops(["a", "b"], ["a", "b"]).ops
        assert [op for op, _, _ in ops] == ["match", "match"]

    def test_substitution_recorded(self):
        alignment = align_ops(["a", "b"], ["a", "x"])
        assert ("sub", "b", "x") in alignment.ops

    def test_insertion_and_deletion(self):
        alignment = align_ops(["a", "b"], ["b", "c"])
        kinds = [op for op, _, _ in alignment.ops]
        assert "del" in kinds or "sub" in kinds
        assert alignment.counts.total_edits == 2

    def test_counts_reconcile_with_wer_metric(self):
        cases = [
            (["a", "b", "c"], ["a", "x", "c", "d"]),
            ([], ["a"]),
            (["a"], []),
            (["a", "a", "b"], ["b", "a"]),
        ]
        for ref, hyp in cases:
            assert (
                align_ops(ref, hyp).counts.total_edits
                == align_counts(ref, hyp).total_edits
            )


class TestErrorReport:
    def test_confusions_counted(self):
        refs = [["cat", "dog"], ["cat", "cow"]]
        hyps = [["cat", "hog"], ["cat", "cow"]]
        report = analyze_errors(refs, hyps)
        assert report.confusions[("dog", "hog")] == 1
        assert report.top_confusions(1) == [(("dog", "hog"), 1)]
        assert report.total.error_rate == pytest.approx(
            word_error_rate(refs, hyps)
        )

    def test_deletions_and_insertions(self):
        report = analyze_errors([["a", "b"]], [["a", "b", "c"]])
        assert report.insertions["c"] == 1
        report = analyze_errors([["a", "b"]], [["a"]])
        assert report.deletions["b"] == 1

    def test_by_length_breakdown(self):
        refs = [["a"], ["a", "b", "c"]]
        hyps = [["x"], ["a", "b", "c"]]
        report = analyze_errors(refs, hyps)
        by_length = report.wer_by_length()
        assert by_length[1] == 1.0
        assert by_length[3] == 0.0

    def test_parallel_required(self):
        with pytest.raises(ValueError):
            analyze_errors([["a"]], [])

    def test_real_decode_report(self, tiny_task, tiny_scorer):
        from repro.core import DecoderConfig, OnTheFlyDecoder

        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, DecoderConfig())
        utts = tiny_task.test_set(5, max_words=4)
        hyps = [decoder.decode(tiny_scorer.score(u.features)).words for u in utts]
        report = analyze_errors([u.words for u in utts], hyps)
        assert report.total.error_rate == pytest.approx(
            word_error_rate([u.words for u in utts], hyps)
        )
