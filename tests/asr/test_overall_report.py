"""Unit tests for OverallReport's pipeline arithmetic (Section 5.2)."""

import pytest

from repro.asr.system import COMM_SECONDS_PER_SPEECH_SECOND, OverallReport


def _report(scorer_s=0.2, search_s=0.1, speech_s=10.0):
    return OverallReport(
        platform="x",
        task_name="t",
        speech_seconds=speech_s,
        scorer_seconds=scorer_s,
        search_seconds=search_s,
        scorer_joules=1.0,
        search_joules=0.5,
        word_error_rate=0.1,
    )


class TestOverallReport:
    def test_stages_overlap(self):
        """Batched operation: pipeline time is the max stage, not the sum."""
        report = _report(scorer_s=0.2, search_s=0.1)
        comm = COMM_SECONDS_PER_SPEECH_SECOND * report.speech_seconds
        assert report.decode_seconds == pytest.approx(0.2 + comm)

    def test_search_bound_pipeline(self):
        report = _report(scorer_s=0.05, search_s=0.3)
        comm = COMM_SECONDS_PER_SPEECH_SECOND * report.speech_seconds
        assert report.decode_seconds == pytest.approx(0.3 + comm)

    def test_energy_is_sum_not_max(self):
        """Energy adds even when time overlaps (both units burn power)."""
        report = _report()
        assert report.total_joules == pytest.approx(1.5)

    def test_normalized_metrics(self):
        report = _report(speech_s=2.0)
        assert report.decode_ms_per_speech_second == pytest.approx(
            1e3 * report.decode_seconds / 2.0
        )
        assert report.energy_mj_per_speech_second == pytest.approx(750.0)
        assert report.realtime_factor == pytest.approx(
            2.0 / report.decode_seconds
        )

    def test_zero_speech_guards(self):
        report = _report(speech_s=0.0)
        assert report.decode_ms_per_speech_second == 0.0
        assert report.energy_mj_per_speech_second == 0.0
