"""Checkpoint/restore of streaming sessions.

The fault-tolerance layer rests on one invariant: restoring a
:class:`~repro.asr.streaming.SessionSnapshot` and replaying the frames
pushed since must be bit-identical to never having been interrupted —
words, cost, lattice, *and* every decoder/lookup counter.  The paper's
small-per-channel-state argument (Section 3) is what makes the
snapshot cheap; these tests pin down that it is also exact.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.asr.streaming import SessionSnapshot, StreamingSession
from repro.core import DecoderConfig, OnTheFlyDecoder

BATCH = 8


def _decoder(task, vectorized=True):
    return OnTheFlyDecoder(
        task.am, task.lm, DecoderConfig(beam=14.0, vectorized=vectorized)
    )


def _session(decoder):
    return StreamingSession(decoder, lookup=decoder.lookup.fork())


def _stats_dict(result):
    stats = asdict(result.stats)
    stats["lookup"] = asdict(result.stats.lookup)
    return stats


class TestSnapshotRestore:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_restore_is_bit_identical(
        self, tiny_task, tiny_scores, vectorized
    ):
        decoder = _decoder(tiny_task, vectorized)
        scores = tiny_scores[0]
        baseline = _session(decoder)
        interrupted = _session(decoder)
        cut = BATCH  # snapshot after the first batch
        baseline.push(scores[:cut])
        interrupted.push(scores[:cut])
        snapshot = interrupted.snapshot()
        resumed = StreamingSession.restore(decoder, snapshot)
        for start in range(cut, scores.shape[0], BATCH):
            batch = scores[start : start + BATCH]
            assert baseline.push(batch) == resumed.push(batch)
        want = baseline.finish()
        got = resumed.finish()
        assert got.words == want.words
        assert got.cost == want.cost
        assert [asdict(n) for n in got.lattice.nodes] == [
            asdict(n) for n in want.lattice.nodes
        ]
        # The whole stats block — frame work, active history, and the
        # lookup counters the forked caches maintain — must match too:
        # a restore that re-derives state by doing different work would
        # silently skew every cache-efficiency experiment.
        assert _stats_dict(got) == _stats_dict(want)

    def test_one_snapshot_seeds_several_restores(
        self, tiny_task, tiny_scores
    ):
        decoder = _decoder(tiny_task)
        scores = tiny_scores[1]
        session = _session(decoder)
        session.push(scores[:BATCH])
        snapshot = session.snapshot()
        finals = []
        for _ in range(2):
            resumed = StreamingSession.restore(decoder, snapshot)
            resumed.push(scores[BATCH:])
            finals.append(resumed.finish())
        session.push(scores[BATCH:])
        reference = session.finish()
        for final in finals:
            assert final.words == reference.words
            assert final.cost == reference.cost

    def test_snapshot_does_not_alias_live_session(
        self, tiny_task, tiny_scores
    ):
        decoder = _decoder(tiny_task)
        scores = tiny_scores[2]
        session = _session(decoder)
        session.push(scores[:BATCH])
        snapshot = session.snapshot()
        frames_at_snapshot = snapshot.frames
        table_cost = snapshot.table_cost.copy()
        # Keep decoding the live session; the snapshot must not move.
        session.push(scores[BATCH:])
        session.finish()
        assert snapshot.frames == frames_at_snapshot
        np.testing.assert_array_equal(snapshot.table_cost, table_cost)

    def test_snapshot_roundtrips_mid_stream_partial(
        self, tiny_task, tiny_scores
    ):
        decoder = _decoder(tiny_task)
        scores = tiny_scores[3]
        session = _session(decoder)
        partial = session.push(scores[:BATCH])
        snapshot = session.snapshot()
        resumed = StreamingSession.restore(decoder, snapshot)
        assert resumed.frames_consumed == partial.frames_consumed
        # An empty push re-reports the current partial hypothesis.
        assert resumed.push(scores[:0]) == session.push(scores[:0])

    def test_state_bytes_is_small(self, tiny_task, tiny_scores):
        # The premise the checkpoint design leans on: per-channel state
        # is tiny (Section 3), so rolling checkpoints are cheap.
        decoder = _decoder(tiny_task)
        session = _session(decoder)
        session.push(tiny_scores[0][:BATCH])
        snapshot = session.snapshot()
        assert isinstance(snapshot, SessionSnapshot)
        assert 0 < snapshot.state_bytes() < 1 << 20


class TestSnapshotErrors:
    def test_snapshot_after_finish_raises(self, tiny_task, tiny_scores):
        decoder = _decoder(tiny_task)
        session = _session(decoder)
        session.push(tiny_scores[0][:BATCH])
        session.finish()
        with pytest.raises(RuntimeError):
            session.snapshot()

    def test_restore_rejects_hot_loop_mismatch(
        self, tiny_task, tiny_scores
    ):
        vec = _decoder(tiny_task, vectorized=True)
        session = _session(vec)
        session.push(tiny_scores[0][:BATCH])
        snapshot = session.snapshot()
        scalar = _decoder(tiny_task, vectorized=False)
        with pytest.raises(ValueError):
            StreamingSession.restore(scalar, snapshot)
