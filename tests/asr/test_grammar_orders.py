"""Section 5.3: UNFOLD 'supports any grammar (bigram, trigram, pentagram...)'.

The same decoder hardware must work for every n-gram order: only the LM
WFST changes.  These tests build tasks at orders 1, 2, 3 and 4 and run
the full decode path on each.
"""

import numpy as np
import pytest

from repro.am import GmmAcousticModel
from repro.asr import build_task
from repro.asr.task import TINY
from repro.core import DecoderConfig, FullyComposedDecoder, OnTheFlyDecoder, VirtualComposedGraph


@pytest.fixture(scope="module", params=[1, 2, 3, 4])
def ordered_task(request):
    config = TINY.with_overrides(
        name=f"tiny-{request.param}gram",
        lm_order=request.param,
        lm_cutoffs=(1,) * request.param,
        corpus_sentences=150,
    )
    return build_task(config)


@pytest.fixture(scope="module")
def ordered_scorer(ordered_task):
    return GmmAcousticModel.from_emissions(ordered_task.emissions, num_mixtures=1)


class TestGrammarOrders:
    def test_lm_levels_match_order(self, ordered_task):
        levels = ordered_task.lm.num_states_by_level()
        assert max(levels) == ordered_task.config.lm_order - 1

    def test_decoding_works(self, ordered_task, ordered_scorer):
        decoder = OnTheFlyDecoder(
            ordered_task.am, ordered_task.lm, DecoderConfig(beam=14.0)
        )
        utterances = ordered_task.test_set(4, max_words=4)
        correct = 0
        for utterance in utterances:
            result = decoder.decode(ordered_scorer.score(utterance.features))
            assert result.success
            if result.words == utterance.words:
                correct += 1
        assert correct >= 2

    def test_equivalent_to_composed_baseline(self, ordered_task, ordered_scorer):
        config = DecoderConfig(beam=12.0, preemptive_pruning=False)
        onthefly = OnTheFlyDecoder(ordered_task.am, ordered_task.lm, config)
        baseline = FullyComposedDecoder(
            VirtualComposedGraph(ordered_task.am, ordered_task.lm), config
        )
        utterance = ordered_task.test_set(1, max_words=4)[0]
        scores = ordered_scorer.score(utterance.features)
        a = onthefly.decode(scores)
        b = baseline.decode(scores)
        assert a.words == b.words
        if a.success:
            assert a.cost == pytest.approx(b.cost, rel=1e-9)

    def test_backoff_chain_depth_bounded_by_order(self, ordered_task):
        """A back-off walk can descend at most order-1 levels."""
        from repro.core import LmLookup, LookupStrategy

        lookup = LmLookup(ordered_task.lm, strategy=LookupStrategy.BINARY)
        max_levels = 0
        for state in range(ordered_task.lm.fst.num_states):
            for word in ordered_task.grammar.vocabulary[:5]:
                result = lookup.resolve(state, ordered_task.lm.word_id(word))
                max_levels = max(max_levels, result.backoff_levels)
        assert max_levels <= ordered_task.config.lm_order - 1


class TestCliSmoke:
    def test_sizes_command(self, capsys):
        from repro.cli import main

        assert main(["sizes", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "reduction" in out

    def test_decode_command(self, capsys):
        from repro.cli import main

        assert main(["decode", "tiny", "--utterances", "2"]) == 0
        out = capsys.readouterr().out
        assert "WER" in out

    def test_unknown_task_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["decode", "nope"])
