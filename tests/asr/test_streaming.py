"""Streaming-session tests: batched decoding equals offline decoding."""

import numpy as np
import pytest

from repro.asr.streaming import StreamingSession, decode_streaming
from repro.core import DecoderConfig, OnTheFlyDecoder
from repro.core.tokens import SoaTokenTable, TokenTable


@pytest.fixture(scope="module")
def decoder(tiny_task):
    return OnTheFlyDecoder(tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0))


class TestStreaming:
    @pytest.mark.parametrize("batch_frames", [1, 7, 32, 1000])
    def test_equals_offline_decode(self, decoder, tiny_scores, batch_frames):
        """Batch size must not change the result (pure pipelining)."""
        offline = decoder.decode(tiny_scores[0])
        streamed, partials = decode_streaming(
            decoder, tiny_scores[0], batch_frames=batch_frames
        )
        assert streamed.words == offline.words
        if offline.success:
            assert streamed.cost == pytest.approx(offline.cost, rel=1e-9)
        assert partials[-1].frames_consumed == tiny_scores[0].shape[0]

    def test_partials_progress(self, decoder, tiny_scores):
        _, partials = decode_streaming(decoder, tiny_scores[1], batch_frames=20)
        frames = [p.frames_consumed for p in partials]
        assert frames == sorted(frames)
        assert all(p.active_tokens > 0 for p in partials)
        # Hypotheses can only grow or be revised, never vanish entirely
        # once words have been committed.
        assert len(partials[-1].words) >= 0

    def test_session_single_use(self, decoder, tiny_scores):
        session = StreamingSession(decoder)
        session.push(tiny_scores[0][:10])
        session.finish()
        with pytest.raises(RuntimeError):
            session.push(tiny_scores[0][10:])
        with pytest.raises(RuntimeError):
            session.finish()

    def test_bad_batch_rejected(self, decoder):
        session = StreamingSession(decoder)
        with pytest.raises(ValueError):
            session.push(np.zeros((4,)))

    def test_bad_batch_size_rejected(self, decoder, tiny_scores):
        with pytest.raises(ValueError):
            decode_streaming(decoder, tiny_scores[0], batch_frames=0)

    def test_stats_accumulate(self, decoder, tiny_scores):
        result, _ = decode_streaming(decoder, tiny_scores[0], batch_frames=16)
        assert result.stats.frames == tiny_scores[0].shape[0]
        assert result.stats.expansions > 0
        assert len(result.stats.active_history) == result.stats.frames


class TestStreamingFastPath:
    """The session's vectorized dispatch mirrors decode()'s parity."""

    def _stream(self, tiny_task, scores, vectorized, batch_frames):
        decoder = OnTheFlyDecoder(
            tiny_task.am,
            tiny_task.lm,
            DecoderConfig(beam=14.0, vectorized=vectorized),
        )
        session = StreamingSession(decoder)
        assert session._vectorized == (
            vectorized and decoder._arcs.pure_emitting
        )
        partials = []
        for start in range(0, scores.shape[0], batch_frames):
            partials.append(session.push(scores[start : start + batch_frames]))
        return session.finish(), partials

    @pytest.mark.parametrize("batch_frames", [1, 7, 32])
    def test_vectorized_equals_scalar_bitwise(
        self, tiny_task, tiny_scores, batch_frames
    ):
        """Not just same words: identical costs, DecoderStats and every
        intermediate partial — the offline parity contract, streamed."""
        for scores in tiny_scores[:3]:
            scalar, scalar_partials = self._stream(
                tiny_task, scores, False, batch_frames
            )
            vec, vec_partials = self._stream(
                tiny_task, scores, True, batch_frames
            )
            assert vec.words == scalar.words
            assert vec.cost == scalar.cost
            assert vec.stats == scalar.stats
            assert vec_partials == scalar_partials

    def test_fast_path_equals_offline(self, tiny_task, tiny_scores):
        offline = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0)
        ).decode(tiny_scores[0])
        # A session never resets the decoder's transient caches (serving
        # interleaves sessions), so stats parity needs a cold decoder.
        fresh = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0)
        )
        streamed, _ = decode_streaming(fresh, tiny_scores[0], batch_frames=9)
        assert streamed.words == offline.words
        assert streamed.cost == offline.cost
        assert streamed.stats == offline.stats


class TestStreamingEdgeCases:
    def test_zero_frame_batch_is_keepalive(self, decoder, tiny_scores):
        session = StreamingSession(decoder)
        before = session.push(tiny_scores[0][:10])
        num_senones = tiny_scores[0].shape[1]
        keepalive = session.push(np.zeros((0, num_senones)))
        assert keepalive == before
        assert session.frames_consumed == 10

    def test_finish_with_no_pushes(self, decoder):
        session = StreamingSession(decoder)
        result = session.finish()
        assert result.words == []
        assert result.stats.frames == 0

    def test_zero_frame_only_equals_no_pushes(self, decoder, tiny_scores):
        empty = np.zeros((0, tiny_scores[0].shape[1]))
        session = StreamingSession(decoder)
        partial = session.push(empty)
        assert partial.frames_consumed == 0
        assert partial.active_tokens == 1  # just the start token
        via_keepalive = session.finish()
        direct = StreamingSession(decoder).finish()
        assert via_keepalive.words == direct.words
        assert via_keepalive.success == direct.success

    @pytest.mark.parametrize(
        "empty_table", [TokenTable(), SoaTokenTable(1)]
    )
    def test_partial_on_emptied_beam(self, decoder, tiny_scores, empty_table):
        """A beam that pruned everything still yields a sane partial
        (both table layouts)."""
        session = StreamingSession(decoder)
        session.push(tiny_scores[0][:5])
        session._table = empty_table
        partial = session._partial()
        assert partial.words == []
        assert partial.cost == np.inf
        assert partial.active_tokens == 0
