"""Streaming-session tests: batched decoding equals offline decoding."""

import numpy as np
import pytest

from repro.asr.streaming import StreamingSession, decode_streaming
from repro.core import DecoderConfig, OnTheFlyDecoder


@pytest.fixture(scope="module")
def decoder(tiny_task):
    return OnTheFlyDecoder(tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0))


class TestStreaming:
    @pytest.mark.parametrize("batch_frames", [1, 7, 32, 1000])
    def test_equals_offline_decode(self, decoder, tiny_scores, batch_frames):
        """Batch size must not change the result (pure pipelining)."""
        offline = decoder.decode(tiny_scores[0])
        streamed, partials = decode_streaming(
            decoder, tiny_scores[0], batch_frames=batch_frames
        )
        assert streamed.words == offline.words
        if offline.success:
            assert streamed.cost == pytest.approx(offline.cost, rel=1e-9)
        assert partials[-1].frames_consumed == tiny_scores[0].shape[0]

    def test_partials_progress(self, decoder, tiny_scores):
        _, partials = decode_streaming(decoder, tiny_scores[1], batch_frames=20)
        frames = [p.frames_consumed for p in partials]
        assert frames == sorted(frames)
        assert all(p.active_tokens > 0 for p in partials)
        # Hypotheses can only grow or be revised, never vanish entirely
        # once words have been committed.
        assert len(partials[-1].words) >= 0

    def test_session_single_use(self, decoder, tiny_scores):
        session = StreamingSession(decoder)
        session.push(tiny_scores[0][:10])
        session.finish()
        with pytest.raises(RuntimeError):
            session.push(tiny_scores[0][10:])
        with pytest.raises(RuntimeError):
            session.finish()

    def test_bad_batch_rejected(self, decoder):
        session = StreamingSession(decoder)
        with pytest.raises(ValueError):
            session.push(np.zeros((4,)))

    def test_bad_batch_size_rejected(self, decoder, tiny_scores):
        with pytest.raises(ValueError):
            decode_streaming(decoder, tiny_scores[0], batch_frames=0)

    def test_stats_accumulate(self, decoder, tiny_scores):
        result, _ = decode_streaming(decoder, tiny_scores[0], batch_frames=16)
        assert result.stats.frames == tiny_scores[0].shape[0]
        assert result.stats.expansions > 0
        assert len(result.stats.active_history) == result.stats.frames
