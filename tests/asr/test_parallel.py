"""DecodePool tests: parallelism must not change any result.

The pool's determinism contract (see :mod:`repro.asr.parallel`): for a
given batch, results arrive in submission order and are identical —
transcripts, costs, and every ``DecoderStats`` counter — at every
parallelism level, because each utterance decodes the bundle-quantized
recognizer from a cold Offset Lookup Table.
"""

import pytest

from repro.asr.parallel import DecodePool
from repro.asr.streaming import transcribe_streams
from repro.core import DecoderConfig, OnTheFlyDecoder

CONFIG = DecoderConfig(beam=14.0)


@pytest.fixture(scope="module")
def serial_results(tiny_task, tiny_scorer, tiny_scores):
    with DecodePool(
        tiny_task.am, tiny_task.lm, scorer=tiny_scorer, config=CONFIG
    ) as pool:
        return pool.decode_scores(tiny_scores)


class TestDecodePool:
    def test_parallel_equals_serial_in_order(
        self, tiny_task, tiny_scorer, tiny_scores, serial_results
    ):
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            parallelism=2,
        ) as pool:
            parallel_results = pool.decode_scores(tiny_scores)
        assert len(parallel_results) == len(serial_results)
        for serial, parallel in zip(serial_results, parallel_results):
            assert parallel.words == serial.words
            assert parallel.cost == serial.cost
            assert parallel.stats == serial.stats

    def test_decode_utterances(
        self, tiny_task, tiny_scorer, tiny_utterances, serial_results
    ):
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            parallelism=2,
        ) as pool:
            results = pool.decode_utterances(tiny_utterances)
        for got, want in zip(results, serial_results):
            assert got.words == want.words
            assert got.cost == want.cost

    def test_decode_streams_matches_batch_decode(
        self, tiny_task, tiny_scorer, tiny_scores, serial_results
    ):
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            parallelism=2,
        ) as pool:
            streamed = pool.decode_streams(tiny_scores, batch_frames=16)
        for got, want in zip(streamed, serial_results):
            assert got.words == want.words
            assert got.cost == pytest.approx(want.cost, rel=1e-12)

    def test_results_independent_of_batch_order(
        self, tiny_task, tiny_scorer, tiny_scores, serial_results
    ):
        """Cold-OLT decoding: an utterance's result must not depend on
        what decoded before it on the same worker."""
        reordered = list(reversed(tiny_scores))
        with DecodePool(
            tiny_task.am, tiny_task.lm, scorer=tiny_scorer, config=CONFIG
        ) as pool:
            results = pool.decode_scores(reordered)
        for got, want in zip(results, reversed(serial_results)):
            assert got.words == want.words
            assert got.cost == want.cost
            assert got.stats == want.stats

    def test_validation(self, tiny_task, tiny_scorer, tiny_utterances):
        with pytest.raises(ValueError):
            DecodePool(tiny_task.am, tiny_task.lm, parallelism=0)
        with pytest.raises(ValueError):
            DecodePool(tiny_task.am, tiny_task.lm, parallelism=2)
        with DecodePool(tiny_task.am, tiny_task.lm) as pool:
            with pytest.raises(ValueError):
                pool.decode_utterances(tiny_utterances)


class TestBatchStrategy:
    def test_explicit_batch_size_is_bit_identical(
        self, tiny_task, tiny_scorer, tiny_scores, serial_results
    ):
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            batch_size=4,
        ) as pool:
            assert pool.strategy == "batch[4]"
            results = pool.decode_scores(tiny_scores)
        for got, want in zip(results, serial_results):
            assert got.words == want.words
            assert got.cost == want.cost
            assert got.stats == want.stats
            assert got.strategy == "batch[4]"

    def test_single_cpu_fallback_swaps_pool_for_batch(
        self, tiny_task, tiny_scorer, tiny_scores, serial_results, monkeypatch
    ):
        """parallelism=2 on a 1-CPU host must decode in-process with
        lockstep fusion — same results, no forked workers."""
        import repro.asr.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "visible_cpus", lambda: 1)
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            parallelism=2,
        ) as pool:
            assert pool.requested_parallelism == 2
            assert pool.parallelism == 1
            assert pool._executor is None
            assert pool.strategy == "batch[8]"
            results = pool.decode_scores(tiny_scores)
        for got, want in zip(results, serial_results):
            assert got.words == want.words
            assert got.cost == want.cost
            assert got.stats == want.stats
            assert got.strategy == "batch[8]"

    def test_fallback_escape_hatch_keeps_workers(
        self, tiny_task, tiny_scorer, tiny_scores, monkeypatch
    ):
        import repro.asr.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "visible_cpus", lambda: 1)
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            parallelism=2,
            single_cpu_fallback=False,
        ) as pool:
            assert pool.strategy == "pool[2]"
            results = pool.decode_scores(tiny_scores[:2])
        assert all(r.strategy == "pool[2]" for r in results)

    def test_multi_cpu_hosts_keep_workers(
        self, tiny_task, tiny_scorer, monkeypatch
    ):
        import repro.asr.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "visible_cpus", lambda: 8)
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            parallelism=2,
        ) as pool:
            assert pool.parallelism == 2
            assert pool.strategy == "pool[2]"

    def test_serial_results_record_strategy(
        self, serial_results
    ):
        assert all(r.strategy == "serial" for r in serial_results)


class TestTranscribeStreams:
    def test_serial_without_scorer_decodes_in_process(
        self, tiny_task, tiny_scores
    ):
        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        results = transcribe_streams(decoder, tiny_scores, batch_frames=16)
        expected = [decoder.decode(s) for s in tiny_scores]
        for got, want in zip(results, expected):
            assert got.words == want.words
            assert got.cost == pytest.approx(want.cost, rel=1e-9)

    def test_parallel_requires_scorer(self, tiny_task, tiny_scores):
        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        with pytest.raises(ValueError):
            transcribe_streams(decoder, tiny_scores, parallelism=2)

    def test_parallel_matches_serial_pool(
        self, tiny_task, tiny_scorer, tiny_scores
    ):
        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        serial = transcribe_streams(
            decoder, tiny_scores, batch_frames=16, scorer=tiny_scorer
        )
        parallel = transcribe_streams(
            decoder,
            tiny_scores,
            batch_frames=16,
            parallelism=2,
            scorer=tiny_scorer,
        )
        for got, want in zip(parallel, serial):
            assert got.words == want.words
            assert got.cost == want.cost
            assert got.stats == want.stats

    def test_existing_pool_is_reused_not_rebuilt(
        self, tiny_task, tiny_scorer, tiny_scores, monkeypatch
    ):
        """With ``pool=`` given, no throwaway pool is constructed and
        the caller's pool stays open afterwards."""
        import repro.asr.parallel as parallel_mod

        decoder = OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        with DecodePool(
            tiny_task.am, tiny_task.lm, scorer=tiny_scorer, config=CONFIG
        ) as pool:
            expected = pool.decode_streams(tiny_scores, batch_frames=16)

            def forbidden(*args, **kwargs):
                raise AssertionError(
                    "transcribe_streams built a new DecodePool"
                )

            monkeypatch.setattr(parallel_mod, "DecodePool", forbidden)
            got = transcribe_streams(
                decoder, tiny_scores, batch_frames=16, pool=pool
            )
            # Still usable: transcribe_streams must not close it.
            again = pool.decode_streams(tiny_scores, batch_frames=16)
        for a, b, c in zip(got, expected, again):
            assert a.words == b.words == c.words
            assert a.cost == b.cost == c.cost


class TestAsrSystemStreams:
    def test_system_caches_one_pool_across_calls(
        self, tiny_task, tiny_scorer, tiny_utterances
    ):
        from repro.asr import AsrSystem

        with AsrSystem(task=tiny_task, scorer=tiny_scorer) as system:
            first = system.transcribe_streams(
                tiny_utterances, config=CONFIG, batch_frames=16
            )
            second = system.transcribe_streams(
                tiny_utterances, config=CONFIG, batch_frames=16
            )
            assert len(system._pools) == 1
            # transcribe shares the same cached pool (same key).
            batch = system.transcribe(tiny_utterances, config=CONFIG)
            assert len(system._pools) == 1
        for got, want in zip(first, second):
            assert got.words == want.words
            assert got.cost == want.cost
        for got, want in zip(first, batch):
            assert got.words == want.words
            assert got.cost == pytest.approx(want.cost, rel=1e-9)

    def test_transcribe_batch_size_knob(
        self, tiny_task, tiny_scorer, tiny_utterances
    ):
        from repro.asr import AsrSystem

        with AsrSystem(task=tiny_task, scorer=tiny_scorer) as system:
            plain = system.transcribe(tiny_utterances, config=CONFIG)
            batched = system.transcribe(
                tiny_utterances, config=CONFIG, batch_size=4
            )
            # Distinct pool cache entries: the knob is part of the key.
            assert len(system._pools) == 2
        assert all(r.strategy == "serial" for r in plain)
        assert all(r.strategy == "batch[4]" for r in batched)
        for got, want in zip(batched, plain):
            assert got.words == want.words
            assert got.cost == want.cost
            assert got.stats == want.stats
