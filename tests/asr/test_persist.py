"""Round-trip tests for recognizer persistence."""

import numpy as np
import pytest

from repro.asr import build_scorer
from repro.asr.persist import load_recognizer, save_recognizer
from repro.core import DecoderConfig, OnTheFlyDecoder


@pytest.fixture(scope="module")
def bundle_dir(tiny_task, tiny_scorer, tmp_path_factory):
    path = tmp_path_factory.mktemp("recognizer")
    save_recognizer(path, tiny_task.am, tiny_task.lm, tiny_scorer)
    return path


class TestPersist:
    def test_files_written(self, bundle_dir):
        for name in ("manifest.json", "words.txt", "am.fst", "lm.fst", "scorer.npz"):
            assert (bundle_dir / name).exists(), name

    def test_round_trip_decoding_identical(
        self, tiny_task, tiny_scorer, tiny_scores, bundle_dir
    ):
        bundle = load_recognizer(bundle_dir)
        original = OnTheFlyDecoder(
            tiny_task.am, tiny_task.lm, DecoderConfig(beam=14.0)
        )
        restored = OnTheFlyDecoder(bundle.am, bundle.lm, DecoderConfig(beam=14.0))
        for scores in tiny_scores[:3]:
            a = original.decode(scores)
            b = restored.decode(scores)
            assert a.words == b.words
            if a.success:
                assert a.cost == pytest.approx(b.cost, rel=1e-6)

    def test_scorer_round_trip(self, tiny_task, tiny_scorer, bundle_dir):
        bundle = load_recognizer(bundle_dir)
        utt = tiny_task.test_set(1, max_words=3)[0]
        assert np.allclose(
            bundle.scorer.score(utt.features), tiny_scorer.score(utt.features)
        )

    def test_lm_metadata_restored(self, tiny_task, bundle_dir):
        bundle = load_recognizer(bundle_dir)
        assert bundle.lm.backoff_label == tiny_task.lm.backoff_label
        assert bundle.lm.unigram_state == 0
        assert bundle.lm.state_of_context == tiny_task.lm.state_of_context

    def test_dnn_scorer_round_trip(self, tiny_task, tmp_path):
        from repro.am import ScorerKind

        scorer = build_scorer(
            tiny_task, kind=ScorerKind.DNN, training_utterances=10, hidden=32
        )
        save_recognizer(tmp_path, tiny_task.am, tiny_task.lm, scorer)
        bundle = load_recognizer(tmp_path)
        utt = tiny_task.test_set(1, max_words=3)[0]
        assert np.allclose(
            bundle.scorer.score(utt.features), scorer.score(utt.features)
        )

    def test_version_check(self, bundle_dir, tmp_path):
        import json
        import shutil

        target = tmp_path / "bundle"
        shutil.copytree(bundle_dir, target)
        manifest = json.loads((target / "manifest.json").read_text())
        manifest["format_version"] = 99
        (target / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_recognizer(target)
