"""``push_sessions``: lockstep multi-session streaming, bit-exact.

The serving layer fuses concurrent streaming sessions into one kernel
call per frame via :func:`repro.asr.streaming.push_sessions`.  Its
contract mirrors the offline batch decoder's: every session's
partials, final result, lattice, stats and lookup counters must be
bit-identical to pushing that session's batches alone (with its own
forked lookup), ragged batches must retire early sessions cleanly, and
validation must complete before any session mutates so callers can
retry per-session after an exception.
"""

import dataclasses

import numpy as np
import pytest

from repro.asr.streaming import StreamingSession, push_sessions
from repro.core import DecoderConfig, OnTheFlyDecoder

LOOKUP_COUNTERS = (
    "lookups",
    "arc_probes",
    "olt_hits",
    "olt_misses",
    "backoff_arcs_taken",
    "preemptive_prunes",
    "expansion_hits",
    "expansion_misses",
    "expansion_evictions",
)


@pytest.fixture(scope="module")
def decoder(tiny_task):
    return OnTheFlyDecoder(
        tiny_task.am,
        tiny_task.lm,
        DecoderConfig(beam=14.0, max_active=800, vectorized=True),
    )


def _lattice_nodes(lattice):
    return [(n.word, n.frame, n.cost, n.backpointer) for n in lattice.nodes]


def _solo_reference(decoder, scores, chunk):
    """Each stream pushed alone on a fresh forked-lookup session."""
    partials, results = [], []
    for matrix in scores:
        session = StreamingSession(decoder, lookup=decoder.lookup.fork())
        parts = [
            session.push(matrix[start : start + chunk])
            for start in range(0, max(matrix.shape[0], 1), chunk)
        ]
        partials.append(parts)
        results.append(session.finish())
    return partials, results


def _fused_run(decoder, scores, chunk):
    sessions = [
        StreamingSession(decoder, lookup=decoder.lookup.fork())
        for _ in scores
    ]
    partials = [[] for _ in scores]
    longest = max(max(s.shape[0] for s in scores), 1)
    for start in range(0, longest, chunk):
        batches = [s[start : start + chunk] for s in scores]
        for i, partial in enumerate(push_sessions(sessions, batches)):
            partials[i].append(partial)
    return partials, [session.finish() for session in sessions]


def _assert_parity(ref, got):
    ref_partials, ref_results = ref
    got_partials, got_results = got
    for i, (rp, gp) in enumerate(zip(ref_partials, got_partials)):
        # The fused driver keeps pushing zero-frame keep-alives to
        # already-drained sessions; each re-reads the last hypothesis.
        assert len(gp) >= len(rp), i
        for j, g in enumerate(gp):
            assert rp[min(j, len(rp) - 1)] == g, (i, j)
    for i, (r, g) in enumerate(zip(ref_results, got_results)):
        assert r.words == g.words, i
        assert r.cost == g.cost, i
        assert r.finals == g.finals, i
        assert _lattice_nodes(r.lattice) == _lattice_nodes(g.lattice), i
        for f in dataclasses.fields(r.stats):
            if f.name == "lookup":
                continue
            assert getattr(r.stats, f.name) == getattr(g.stats, f.name), (
                i,
                f.name,
            )
        for name in LOOKUP_COUNTERS:
            assert getattr(r.stats.lookup, name) == getattr(
                g.stats.lookup, name
            ), (i, f"lookup.{name}")


class TestFusedSessionParity:
    @pytest.mark.parametrize("chunk", [9, 16])
    def test_lockstep_matches_solo_pushes(
        self, decoder, tiny_scores, chunk
    ):
        scores = tiny_scores[:4]
        _assert_parity(
            _solo_reference(decoder, scores, chunk),
            _fused_run(decoder, scores, chunk),
        )

    def test_ragged_streams_retire_early(self, decoder, tiny_scores):
        scores = [
            s[: max(0, s.shape[0] - 7 * i)]
            for i, s in enumerate(tiny_scores)
        ]
        _assert_parity(
            _solo_reference(decoder, scores, 16),
            _fused_run(decoder, scores, 16),
        )

    def test_shared_lookup_falls_back_to_sequential(
        self, decoder, tiny_scores
    ):
        # Two sessions on the decoder's own lookup: not fusable (one
        # cache can't replay two interleaved solo evolutions), but the
        # call still advances both via plain pushes.
        sessions = [StreamingSession(decoder) for _ in range(2)]
        partials = push_sessions(
            sessions, [tiny_scores[0][:8], tiny_scores[1][:8]]
        )
        assert [p.frames_consumed for p in partials] == [8, 8]

    def test_single_session_equals_push(self, decoder, tiny_scores):
        solo = StreamingSession(decoder, lookup=decoder.lookup.fork())
        expected = solo.push(tiny_scores[0][:12])
        fused = StreamingSession(decoder, lookup=decoder.lookup.fork())
        (got,) = push_sessions([fused], [tiny_scores[0][:12]])
        assert got == expected

    def test_empty_input(self):
        assert push_sessions([], []) == []


class TestValidation:
    def test_length_mismatch(self, decoder, tiny_scores):
        session = StreamingSession(decoder, lookup=decoder.lookup.fork())
        with pytest.raises(ValueError):
            push_sessions([session], [])

    def test_raises_before_any_session_advances(
        self, decoder, tiny_scores
    ):
        sessions = [
            StreamingSession(decoder, lookup=decoder.lookup.fork())
            for _ in range(3)
        ]
        bad = tiny_scores[2][:8, :2]  # too few senone columns
        with pytest.raises(ValueError):
            push_sessions(
                sessions, [tiny_scores[0][:8], tiny_scores[1][:8], bad]
            )
        assert [s.frames_consumed for s in sessions] == [0, 0, 0]

    def test_finished_session_rejected(self, decoder, tiny_scores):
        finished = StreamingSession(decoder, lookup=decoder.lookup.fork())
        finished.finish()
        live = StreamingSession(decoder, lookup=decoder.lookup.fork())
        with pytest.raises(RuntimeError):
            push_sessions(
                [live, finished], [tiny_scores[0][:8], tiny_scores[1][:8]]
            )
        assert live.frames_consumed == 0

    def test_zero_frame_keepalive(self, decoder, tiny_scores):
        sessions = [
            StreamingSession(decoder, lookup=decoder.lookup.fork())
            for _ in range(2)
        ]
        push_sessions(sessions, [tiny_scores[0][:8], tiny_scores[1][:8]])
        empty = tiny_scores[1][:0]
        partials = push_sessions(
            sessions, [tiny_scores[0][8:16], empty]
        )
        assert partials[0].frames_consumed == 16
        assert partials[1].frames_consumed == 8
