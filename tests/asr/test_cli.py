"""CLI plumbing tests (cheap paths; decode smoke lives in test_grammar_orders)."""

import pytest

import repro.cli as cli
from repro.experiments.common import ExperimentResult


class TestCliPlumbing:
    def test_task_table_complete(self):
        assert set(cli.TASKS) == {
            "tiny",
            "kaldi-voxforge",
            "kaldi-librispeech",
            "kaldi-tedlium",
            "eesen-tedlium",
        }

    def test_experiment_subcommand(self, capsys, monkeypatch):
        fake = ExperimentResult("fig99", "fake", [{"a": 1}])
        monkeypatch.setitem(
            __import__("repro.experiments.registry", fromlist=["EXPERIMENTS"]).EXPERIMENTS,
            "fig99",
            (lambda: fake, "fake experiment"),
        )
        assert cli.main(["experiment", "fig99"]) == 0
        out = capsys.readouterr().out
        assert "fig99" in out

    def test_experiment_unknown(self):
        with pytest.raises(KeyError):
            cli.main(["experiment", "not-a-real-id"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])
