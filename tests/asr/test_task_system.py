"""Tests for task construction, scorer training and the overall system."""

import pytest

from repro.am import ScorerKind
from repro.asr import (
    KALDI_VOXFORGE,
    PAPER_TASKS,
    AsrSystem,
    build_scorer,
    build_task,
    measure_component_sizes,
)
from repro.accel import REZA, UNFOLD, FullyComposedSimulator, UnfoldSimulator


class TestTaskConstruction:
    def test_tiny_task_complete(self, tiny_task):
        assert tiny_task.lm.fst.num_states > 1
        assert tiny_task.am.fst.num_states > 10
        assert tiny_task.num_senones == tiny_task.topology.num_senones(
            tiny_task.phones
        )

    def test_am_lm_share_word_ids(self, tiny_task):
        for word in tiny_task.grammar.vocabulary:
            assert tiny_task.am.words.id_of(word) == tiny_task.lm.words.id_of(word)

    def test_deterministic_build(self):
        a = build_task(KALDI_VOXFORGE)
        b = build_task(KALDI_VOXFORGE)
        assert a.lm.fst.num_states == b.lm.fst.num_states
        assert a.am.fst.num_arcs == b.am.fst.num_arcs
        assert a.corpus[:5] == b.corpus[:5]

    def test_presets_scale_up(self, tiny_task):
        vox = build_task(KALDI_VOXFORGE)
        assert vox.lm.fst.num_arcs > tiny_task.lm.fst.num_arcs
        assert vox.am.fst.num_states > tiny_task.am.fst.num_states

    def test_paper_tasks_cover_all_scorers(self):
        kinds = {config.scorer_kind for config in PAPER_TASKS}
        assert kinds == {ScorerKind.GMM, ScorerKind.DNN, ScorerKind.RNN}

    def test_test_set_sampling(self, tiny_task):
        utts = tiny_task.test_set(4, max_words=5)
        assert len(utts) == 4
        for utt in utts:
            assert 1 <= len(utt.words) <= 5
            assert utt.num_frames > 0

    def test_config_overrides(self):
        config = KALDI_VOXFORGE.with_overrides(vocab_size=10)
        assert config.vocab_size == 10
        assert config.name == KALDI_VOXFORGE.name


class TestScorerTraining:
    def test_oracle_gmm(self, tiny_task):
        scorer = build_scorer(tiny_task, oracle_gmm=True)
        assert scorer.kind is ScorerKind.GMM
        assert scorer.num_senones == tiny_task.num_senones

    @pytest.mark.parametrize("kind", list(ScorerKind))
    def test_trained_scorers(self, tiny_task, kind):
        scorer = build_scorer(tiny_task, kind=kind, training_utterances=15, hidden=64)
        assert scorer.kind is kind
        utt = tiny_task.test_set(1)[0]
        scores = scorer.score(utt.features)
        assert scores.shape == (utt.num_frames, tiny_task.num_senones)

    def test_component_sizes_wfst_dominates(self, tiny_task):
        """Figure 2: the WFST is by far the largest dataset component."""
        scorer = build_scorer(tiny_task, oracle_gmm=True)
        sizes = measure_component_sizes(tiny_task, scorer)
        assert sizes.wfst_share > 0.8
        assert sizes.total_onthefly_bytes < sizes.total_composed_bytes


class TestOverallSystem:
    @pytest.fixture(scope="class")
    def system(self, tiny_task):
        scorer = build_scorer(tiny_task, oracle_gmm=True)
        return AsrSystem(task=tiny_task, scorer=scorer)

    @pytest.fixture(scope="class")
    def utterances(self, tiny_task):
        return tiny_task.test_set(4, max_words=4)

    @pytest.fixture(scope="class")
    def reports(self, system, utterances, tiny_task):
        unfold_sim = UnfoldSimulator(tiny_task, config=UNFOLD.scaled(1 / 256))
        reza_sim = FullyComposedSimulator(tiny_task, config=REZA.scaled(1 / 256))
        return {
            "gpu": system.run_gpu_only(utterances),
            "unfold": system.run_with_accelerator(utterances, unfold_sim),
            "reza": system.run_with_accelerator(utterances, reza_sim),
        }

    def test_all_platforms_realtime(self, reports):
        for report in reports.values():
            assert report.realtime_factor > 1

    def test_accelerated_faster_than_gpu_only(self, reports):
        """Figure 12: hardware search beats the GPU-only pipeline."""
        assert reports["unfold"].decode_seconds < reports["gpu"].decode_seconds
        assert reports["reza"].decode_seconds < reports["gpu"].decode_seconds

    def test_accelerated_lower_energy(self, reports):
        """Figure 13: ~1.5x energy saving over the GPU-only pipeline."""
        assert reports["unfold"].total_joules < reports["gpu"].total_joules

    def test_scorer_is_comparable_stage_after_acceleration(self, reports):
        """Section 5.2: once the search is in hardware, the acoustic
        front-end is no longer negligible.  (At paper scale it dominates
        outright; the tiny test task's GMM is very small, so we assert
        comparability here and the full shape in the benchmarks.)"""
        report = reports["unfold"]
        assert report.scorer_seconds > 0.2 * report.search_seconds

    def test_wer_consistent_across_platforms(self, reports):
        """The same search explores the same space everywhere."""
        wers = {round(r.word_error_rate, 6) for r in reports.values()}
        assert len(wers) == 1

    def test_wer_reasonable(self, reports):
        assert reports["unfold"].word_error_rate < 0.5

    def test_metrics_well_formed(self, reports):
        for report in reports.values():
            assert report.decode_ms_per_speech_second > 0
            assert report.energy_mj_per_speech_second > 0
            assert report.speech_seconds > 0
