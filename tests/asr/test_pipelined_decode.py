"""Pipelined decoding must be bit-identical to the synchronous paths.

The tentpole invariant: turning on the asynchronous scoring pipeline —
at any chunk size, through any pool strategy, or via raw-feature
streaming — changes *when* scoring happens, never *what* the search
sees.  Transcripts, costs, every ``DecoderStats`` counter and the
lookup/cache counters must match the score-then-search baseline
exactly; a scorer failure must surface as a typed ``ScoringError``.
"""

import numpy as np
import pytest

from repro.am.pipeline import ScoringError
from repro.asr.parallel import DecodePool
from repro.asr.streaming import StreamingSession
from repro.core import DecoderConfig, OnTheFlyDecoder

CONFIG = DecoderConfig(beam=14.0)


@pytest.fixture(scope="module")
def sync_results(tiny_task, tiny_scorer, tiny_utterances):
    """The score-then-search baseline every pipelined run must match."""
    with DecodePool(
        tiny_task.am, tiny_task.lm, scorer=tiny_scorer, config=CONFIG
    ) as pool:
        return pool.decode_utterances(tiny_utterances)


def assert_identical(got, want):
    assert got.words == want.words
    assert got.cost == want.cost
    assert got.stats == want.stats  # every counter, incl. lookup deltas


class TestPipelinedPool:
    @pytest.mark.parametrize("chunk_frames", [1, 3, 8, 16, 1000])
    def test_serial_pipelined_is_bit_identical(
        self, tiny_task, tiny_scorer, tiny_utterances, sync_results,
        chunk_frames,
    ):
        """Every chunk size — 1, a ragged tail, chunk > frames — yields
        the synchronous words, costs and full stats tuple."""
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            pipeline_chunk_frames=chunk_frames,
        ) as pool:
            assert pool.strategy == f"serial+pipe[{chunk_frames}]"
            results = pool.decode_utterances(tiny_utterances)
        assert len(results) == len(sync_results)
        for got, want in zip(results, sync_results):
            assert_identical(got, want)
            assert got.strategy == f"serial+pipe[{chunk_frames}]"

    def test_lockstep_pipelined_is_bit_identical(
        self, tiny_task, tiny_scorer, tiny_utterances, sync_results
    ):
        """batch_size + pipeline: the fused kernels chew batch k while
        the pipeline scores batch k+1; results stay synchronous."""
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            batch_size=4,
            pipeline_chunk_frames=8,
        ) as pool:
            assert pool.strategy == "batch[4]+pipe[8]"
            results = pool.decode_utterances(tiny_utterances)
        for got, want in zip(results, sync_results):
            assert_identical(got, want)

    def test_worker_pool_pipelined_is_bit_identical(
        self, tiny_task, tiny_scorer, tiny_utterances, sync_results
    ):
        """Process fan-out: each worker overlaps scoring and search
        through its own persistent pipeline."""
        with DecodePool(
            tiny_task.am,
            tiny_task.lm,
            scorer=tiny_scorer,
            config=CONFIG,
            parallelism=2,
            single_cpu_fallback=False,
            pipeline_chunk_frames=8,
        ) as pool:
            assert pool.strategy == "pool[2]+pipe[8]"
            results = pool.decode_utterances(tiny_utterances)
        for got, want in zip(results, sync_results):
            assert_identical(got, want)

    def test_validation(self, tiny_task, tiny_scorer):
        with pytest.raises(ValueError):
            DecodePool(
                tiny_task.am,
                tiny_task.lm,
                scorer=tiny_scorer,
                pipeline_chunk_frames=0,
            )
        with pytest.raises(ValueError):
            DecodePool(tiny_task.am, tiny_task.lm, pipeline_chunk_frames=8)


class TestAsrSystemPipelined:
    def test_transcribe_pipeline_knob(
        self, tiny_task, tiny_scorer, tiny_utterances, sync_results
    ):
        from repro.asr import AsrSystem

        with AsrSystem(task=tiny_task, scorer=tiny_scorer) as system:
            plain = system.transcribe(tiny_utterances, config=CONFIG)
            piped = system.transcribe(
                tiny_utterances, config=CONFIG, pipeline_chunk_frames=8
            )
            # Distinct pool cache entries: the knob is part of the key.
            assert len(system._pools) == 2
        assert all(r.strategy == "serial+pipe[8]" for r in piped)
        for got, want in zip(piped, plain):
            assert_identical(got, want)
        for got, want in zip(piped, sync_results):
            assert_identical(got, want)


class TestPushFeatures:
    def _decoder(self, tiny_task):
        return OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)

    @pytest.mark.parametrize("batch_frames", [1, 7, 16, 1000])
    def test_feature_streaming_matches_score_streaming(
        self, tiny_task, tiny_scorer, tiny_utterances, batch_frames
    ):
        """push_features at any batch split == push of the same batches
        scored synchronously: final words, cost and stats identical."""
        for utterance in tiny_utterances[:3]:
            features = utterance.features
            reference = StreamingSession(self._decoder(tiny_task))
            for start in range(0, features.shape[0], batch_frames):
                reference.push(
                    tiny_scorer.score(features[start : start + batch_frames])
                )
            want = reference.finish()

            session = StreamingSession(
                self._decoder(tiny_task), scorer=tiny_scorer
            )
            for start in range(0, features.shape[0], batch_frames):
                session.push_features(features[start : start + batch_frames])
            got = session.finish()
            assert_identical(got, want)

    def test_partials_trail_by_one_batch(
        self, tiny_task, tiny_scorer, tiny_utterances
    ):
        """Lag-1 pipelining: the n-th push_features returns the partial
        after batch n-1; finish drains the tail."""
        features = tiny_utterances[0].features
        session = StreamingSession(
            self._decoder(tiny_task), scorer=tiny_scorer
        )
        first = session.push_features(features[:8])
        assert first.frames_consumed == 0
        second = session.push_features(features[8:16])
        assert second.frames_consumed == 8
        final = session.finish()
        assert final.stats.frames == 16

    def test_zero_frame_batch_is_a_keepalive(
        self, tiny_task, tiny_scorer, tiny_utterances
    ):
        features = tiny_utterances[0].features
        width = features.shape[1]
        session = StreamingSession(
            self._decoder(tiny_task), scorer=tiny_scorer
        )
        session.push_features(features[:8])
        session.push_features(np.zeros((0, width)))
        session.push_features(features[8:])
        got = session.finish()

        reference = StreamingSession(self._decoder(tiny_task))
        reference.push(tiny_scorer.score(features[:8]))
        reference.push(tiny_scorer.score(features[8:]))
        want = reference.finish()
        assert_identical(got, want)

    def test_scorer_failure_is_typed_and_session_survives_finish(
        self, tiny_task, tiny_scorer, tiny_utterances
    ):
        class Failing:
            chunk_exact = True
            num_senones = tiny_scorer.num_senones

            def score(self, features):
                if not np.isfinite(features[0, 0]):
                    raise RuntimeError("bad frame")
                return tiny_scorer.score(features)

        features = tiny_utterances[0].features.copy()
        session = StreamingSession(self._decoder(tiny_task), scorer=Failing())
        session.push_features(features[:8])
        poisoned = features[8:16].copy()
        poisoned[0, 0] = np.nan
        # The bad batch is scored asynchronously: the error surfaces at
        # the next interaction that consumes it, as a typed error.
        with pytest.raises(ScoringError):
            session.push_features(poisoned)
            session.finish()

    def test_push_without_scorer_rejected(self, tiny_task, tiny_utterances):
        session = StreamingSession(self._decoder(tiny_task))
        with pytest.raises(RuntimeError):
            session.push_features(tiny_utterances[0].features[:8])


class TestZeroFrameValidation:
    def test_wrong_width_zero_frame_batch_rejected(
        self, tiny_task, tiny_scores
    ):
        """The width check runs before the empty-batch early return: a
        (0, k) batch with a wrong senone width is malformed even though
        it carries no frames.  Only (0, 0) — the shape an empty wire
        payload decodes to — stays a legal keep-alive."""
        session = StreamingSession(
            OnTheFlyDecoder(tiny_task.am, tiny_task.lm, CONFIG)
        )
        with pytest.raises(ValueError):
            session.push(np.zeros((0, 2)))
        partial = session.push(np.zeros((0, 0)))
        assert partial.frames_consumed == 0
