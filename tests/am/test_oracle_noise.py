"""Oracle GMM must model the synthesizer's noise (regression test).

An oracle scorer built with unit variances against features synthesized
at noise_scale > 1 produces over-confident likelihoods that drown the
LM; the noise-aware oracle restores calibrated scores.
"""

import numpy as np
import pytest

from repro.am import (
    FeatureSynthesizer,
    GmmAcousticModel,
    HmmTopology,
    PhoneInventory,
    frame_accuracy,
    generate_lexicon,
    make_emission_model,
)


@pytest.fixture(scope="module")
def noisy_setup():
    rng = np.random.default_rng(3)
    phones = PhoneInventory.reduced(6)
    topology = HmmTopology()
    lexicon = generate_lexicon(["aba", "cede"], phones, rng, variant_probability=0)
    emissions = make_emission_model(phones, topology, rng, dim=8, separation=1.0)
    synth = FeatureSynthesizer(
        lexicon=lexicon,
        topology=topology,
        emissions=emissions,
        rng=rng,
        noise_scale=2.0,
        silence_probability=0.0,
    )
    return emissions, synth


class TestOracleNoise:
    def test_noise_aware_oracle_is_calibrated(self, noisy_setup):
        emissions, synth = noisy_setup
        utt = synth.synthesize(["aba", "cede"])
        aware = GmmAcousticModel.from_emissions(
            emissions, num_mixtures=1, noise_scale=2.0
        )
        naive = GmmAcousticModel.from_emissions(emissions, num_mixtures=1)
        aware_scores = aware.score(utt.features)
        naive_scores = naive.score(utt.features)
        # Same argmax structure (means unchanged)...
        assert frame_accuracy(aware_scores, utt.alignment) == pytest.approx(
            frame_accuracy(naive_scores, utt.alignment), abs=0.15
        )
        # ...but the naive model's score *spread* is inflated ~4x, which
        # is what overwhelms LM weights during search.
        aware_spread = np.mean(aware_scores.max(1) - aware_scores.min(1))
        naive_spread = np.mean(naive_scores.max(1) - naive_scores.min(1))
        assert naive_spread > 2.5 * aware_spread

    def test_variances_scaled(self, noisy_setup):
        emissions, _ = noisy_setup
        aware = GmmAcousticModel.from_emissions(
            emissions, num_mixtures=1, noise_scale=2.0
        )
        assert np.allclose(aware.variances, 4.0 * emissions.variances[:, None, :])
