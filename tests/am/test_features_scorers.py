"""Tests for feature synthesis and the three acoustic scorers."""

import numpy as np
import pytest

from repro.am import (
    FeatureSynthesizer,
    GmmAcousticModel,
    HmmTopology,
    MlpAcousticModel,
    PhoneInventory,
    RnnAcousticModel,
    ScorerKind,
    check_score_matrix,
    frame_accuracy,
    generate_lexicon,
    make_emission_model,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(29)
    phones = PhoneInventory.reduced(6)
    topology = HmmTopology()
    lexicon = generate_lexicon(
        ["ab", "cad", "def", "gif"], phones, rng, variant_probability=0.0
    )
    emissions = make_emission_model(phones, topology, rng, dim=8, separation=3.0)
    synth = FeatureSynthesizer(
        lexicon=lexicon,
        topology=topology,
        emissions=emissions,
        rng=rng,
        noise_scale=0.5,
        silence_probability=0.2,
    )
    return phones, topology, lexicon, emissions, synth


class TestSynthesis:
    def test_shapes_consistent(self, setup):
        *_, synth = setup
        utt = synth.synthesize(["ab", "cad"])
        assert utt.features.shape[0] == len(utt.alignment)
        assert utt.features.shape[1] == 8
        assert utt.words == ["ab", "cad"]

    def test_min_frames_is_senone_count(self, setup):
        phones, topology, lexicon, _, synth = setup
        utt = synth.synthesize(["ab"])
        min_senones = len(lexicon.primary("ab")) * topology.states_per_phone
        assert utt.num_frames >= min_senones

    def test_duration_seconds(self, setup):
        *_, synth = setup
        utt = synth.synthesize(["ab"])
        assert utt.duration_seconds == pytest.approx(utt.num_frames * 0.01)

    def test_alignment_follows_lexicon(self, setup):
        phones, topology, lexicon, _, synth = setup
        synth_nosil = FeatureSynthesizer(
            lexicon=lexicon,
            topology=topology,
            emissions=synth.emissions,
            rng=np.random.default_rng(1),
            silence_probability=0.0,
        )
        utt = synth_nosil.synthesize(["def"])
        expected = topology.senone_sequence(
            [phones.id_of(p) for p in lexicon.primary("def")]
        )
        dedup = [s for i, s in enumerate(utt.alignment) if i == 0 or s != utt.alignment[i - 1]]
        assert dedup == expected

    def test_batch(self, setup):
        *_, synth = setup
        utts = synth.synthesize_batch([["ab"], ["cad"]])
        assert len(utts) == 2


def _training_data(synth, sentences):
    utts = synth.synthesize_batch(sentences)
    feats = np.concatenate([u.features for u in utts])
    align = np.concatenate([np.asarray(u.alignment) for u in utts])
    return utts, feats, align


class TestGmm:
    def test_oracle_scores_reference_senones_highly(self, setup):
        *_, emissions, synth = setup
        gmm = GmmAcousticModel.from_emissions(emissions)
        utt = synth.synthesize(["ab", "def"])
        scores = gmm.score(utt.features)
        check_score_matrix(scores, gmm.num_senones)
        assert frame_accuracy(scores, utt.alignment) > 0.6

    def test_fit_recovers_generator(self, setup):
        *_, emissions, synth = setup
        _, feats, align = _training_data(synth, [["ab", "cad"]] * 30)
        gmm = GmmAcousticModel.fit(feats, align, emissions.num_senones)
        seen = sorted(set(align.tolist()))
        err = np.abs(gmm.means[seen, 0, :] - emissions.means[seen]).mean()
        assert err < 0.25

    def test_dim_mismatch_rejected(self, setup):
        *_, emissions, _ = setup
        gmm = GmmAcousticModel.from_emissions(emissions)
        with pytest.raises(ValueError):
            gmm.score(np.zeros((5, 3)))

    def test_metadata(self, setup):
        *_, emissions, _ = setup
        gmm = GmmAcousticModel.from_emissions(emissions, num_mixtures=2)
        assert gmm.kind is ScorerKind.GMM
        assert gmm.num_mixtures == 2
        assert gmm.size_bytes > 0
        assert gmm.flops_per_frame > 0


class TestMlp:
    def test_trained_mlp_beats_chance(self, setup):
        *_, emissions, synth = setup
        utts, feats, align = _training_data(synth, [["ab", "cad"], ["def", "gif"]] * 20)
        mlp = MlpAcousticModel.fit(feats, align, emissions.num_senones, hidden=128)
        test = utts[0]
        scores = mlp.score(test.features)
        check_score_matrix(scores, mlp.num_senones)
        chance = 1.0 / emissions.num_senones
        posterior_acc = frame_accuracy(mlp.posteriors(test.features), test.alignment)
        assert posterior_acc > 5 * chance

    def test_posteriors_normalized(self, setup):
        *_, emissions, synth = setup
        _, feats, align = _training_data(synth, [["ab"]] * 10)
        mlp = MlpAcousticModel.fit(feats, align, emissions.num_senones, hidden=64)
        post = mlp.posteriors(feats[:20])
        assert np.allclose(post.sum(axis=1), 1.0)

    def test_metadata(self, setup):
        *_, emissions, synth = setup
        _, feats, align = _training_data(synth, [["ab"]] * 5)
        mlp = MlpAcousticModel.fit(feats, align, emissions.num_senones, hidden=32)
        assert mlp.kind is ScorerKind.DNN
        assert mlp.hidden == 32
        assert mlp.size_bytes == 4 * (
            mlp.w_in.size + mlp.b_in.size + mlp.w_out.size + mlp.log_priors.size
        )


class TestRnn:
    def test_trained_rnn_beats_chance(self, setup):
        *_, emissions, synth = setup
        utts = synth.synthesize_batch([["ab", "cad"], ["def", "gif"]] * 15)
        rnn = RnnAcousticModel.fit(
            [u.features for u in utts],
            [np.asarray(u.alignment) for u in utts],
            emissions.num_senones,
            hidden=128,
        )
        test = utts[0]
        scores = rnn.score(test.features)
        check_score_matrix(scores, rnn.num_senones)
        chance = 1.0 / emissions.num_senones
        assert frame_accuracy(scores, test.alignment) > 5 * chance

    def test_reservoir_is_stable(self, setup):
        *_, emissions, synth = setup
        utt = synth.synthesize(["ab"] * 6)
        rnn = RnnAcousticModel.fit(
            [utt.features], [np.asarray(utt.alignment)], emissions.num_senones, hidden=64
        )
        states = rnn._run_reservoir(utt.features)
        assert np.all(np.abs(states) <= 1.0)

    def test_requires_training_data(self):
        with pytest.raises(ValueError):
            RnnAcousticModel.fit([], [], 10)

    def test_metadata(self, setup):
        *_, emissions, synth = setup
        utt = synth.synthesize(["ab"])
        rnn = RnnAcousticModel.fit(
            [utt.features], [np.asarray(utt.alignment)], emissions.num_senones, hidden=32
        )
        assert rnn.kind is ScorerKind.RNN
        assert rnn.flops_per_frame > MlpAcousticModel.fit(
            utt.features, np.asarray(utt.alignment), emissions.num_senones, hidden=32
        ).flops_per_frame


class TestValidation:
    def test_check_score_matrix_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            check_score_matrix(np.zeros(5), 5)
        with pytest.raises(ValueError):
            check_score_matrix(np.zeros((5, 4)), 5)
        with pytest.raises(ValueError):
            check_score_matrix(np.full((5, 4), np.nan), 4)

    def test_frame_accuracy_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            frame_accuracy(np.zeros((3, 2)), [0, 1])


class TestScaledScorer:
    def test_scales_scores(self, setup):
        import numpy as np
        from repro.am import ScaledScorer

        *_, emissions, synth = setup
        base = GmmAcousticModel.from_emissions(emissions, num_mixtures=1)
        scaled = ScaledScorer(base, 0.5)
        utt = synth.synthesize(["ab"])
        assert np.allclose(scaled.score(utt.features), 0.5 * base.score(utt.features))
        assert scaled.kind is base.kind
        assert scaled.num_senones == base.num_senones
        assert scaled.size_bytes == base.size_bytes
        assert scaled.flops_per_frame == base.flops_per_frame

    def test_invalid_scale(self, setup):
        from repro.am import ScaledScorer

        *_, emissions, _ = setup
        base = GmmAcousticModel.from_emissions(emissions)
        with pytest.raises(ValueError):
            ScaledScorer(base, 0.0)

    def test_score_spread(self):
        import numpy as np
        from repro.am import score_spread

        scores = np.array([[0.0, -10.0, -20.0], [5.0, -5.0, -15.0]])
        assert score_spread(scores) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            score_spread(np.zeros((0, 3)))
