"""Tests for the phone inventory and lexicon generation."""

import numpy as np
import pytest

from repro.am import PhoneInventory, SILENCE_PHONE, generate_lexicon
from repro.am.lexicon import Lexicon


@pytest.fixture
def phones():
    return PhoneInventory.reduced(10)


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestPhoneInventory:
    def test_standard_has_40_phones_with_silence(self):
        inv = PhoneInventory.standard()
        assert inv.num_phones == 40

    def test_silence_is_last_id(self, phones):
        assert phones.silence_id == 10
        assert phones.name_of(phones.silence_id) == SILENCE_PHONE
        assert phones.id_of(SILENCE_PHONE) == phones.silence_id

    def test_round_trip(self, phones):
        for phone in phones.real_phones():
            assert phones.name_of(phones.id_of(phone)) == phone

    def test_reduced_bounds(self):
        with pytest.raises(ValueError):
            PhoneInventory.reduced(0)
        with pytest.raises(ValueError):
            PhoneInventory.reduced(100)

    def test_real_phones_excludes_silence(self, phones):
        assert SILENCE_PHONE not in phones.real_phones()


class TestLexicon:
    def test_add_and_lookup(self, phones):
        lex = Lexicon(phones=phones)
        lex.add("cat", (phones.real_phones()[0],))
        assert "cat" in lex

    def test_empty_pronunciation_rejected(self, phones):
        lex = Lexicon(phones=phones)
        with pytest.raises(ValueError):
            lex.add("x", ())

    def test_unknown_phone_rejected(self, phones):
        lex = Lexicon(phones=phones)
        with pytest.raises(ValueError):
            lex.add("x", ("zz-not-a-phone",))

    def test_duplicate_variant_ignored(self, phones):
        lex = Lexicon(phones=phones)
        pron = (phones.real_phones()[0],)
        lex.add("x", pron)
        lex.add("x", pron)
        assert len(lex.pronunciations("x")) == 1

    def test_generate_covers_vocabulary(self, phones, rng):
        vocab = ["bada", "kilo", "nemo"]
        lex = generate_lexicon(vocab, phones, rng)
        assert set(lex.words) == set(vocab)
        for word in vocab:
            assert len(lex.primary(word)) >= 1

    def test_similar_spellings_share_phones(self, phones, rng):
        lex = generate_lexicon(["baba", "babo"], phones, rng, variant_probability=0)
        a = lex.primary("baba")
        b = lex.primary("babo")
        assert a[:3] == b[:3]  # letter-driven mapping

    def test_variants_appear_at_high_probability(self, phones):
        rng = np.random.default_rng(3)
        vocab = [f"word{chr(97 + i)}" for i in range(26)]
        vocab = [w.replace("0", "o") for w in vocab]
        lex = generate_lexicon(vocab, phones, rng, variant_probability=1.0)
        assert lex.num_pronunciations > len(vocab)

    def test_avg_pronunciation_len(self, phones, rng):
        lex = generate_lexicon(["ab", "abcdef"], phones, rng, variant_probability=0)
        assert lex.avg_pronunciation_len() == pytest.approx(4.0)

    def test_empty_lexicon_stats(self, phones):
        assert Lexicon(phones=phones).avg_pronunciation_len() == 0.0
