"""Scoring-pipeline tests: bit-parity, flow control, failure delivery.

The pipeline's contract (see :mod:`repro.am.pipeline`): score values
reaching the consumer are bitwise-identical to synchronous scoring at
every chunk size (chunk-exact scorers) or submission granularity
(everything else); a scorer failure arrives as a typed
:class:`ScoringError` on that submission's consumer without wedging
the worker; close and cancel never leave a consumer blocked.
"""

import threading
import time

import numpy as np
import pytest

from repro.am.pipeline import (
    PipelineClosed,
    ScoringError,
    ScoringPipeline,
    is_chunk_exact,
    iter_feature_chunks,
)


class FailingScorer:
    """Chunk-exact scorer that blows up on a marked feature matrix."""

    chunk_exact = True

    def __init__(self, inner):
        self.inner = inner
        self.num_senones = inner.num_senones

    def score(self, features):
        if features.shape[0] and not np.isfinite(features[0, 0]):
            raise RuntimeError("acoustic model rejected the features")
        return self.inner.score(features)


class SlowScorer:
    """Chunk-exact scorer with a hook to stall the worker mid-chunk."""

    chunk_exact = True

    def __init__(self, inner, gate: threading.Event):
        self.inner = inner
        self.num_senones = inner.num_senones
        self.gate = gate

    def score(self, features):
        self.gate.wait(timeout=5.0)
        return self.inner.score(features)


@pytest.fixture
def feat(tiny_utterances):
    """Zero matrices with the scorer's real feature width."""
    dim = tiny_utterances[0].features.shape[1]
    return lambda frames: np.zeros((frames, dim))


class TestChunkExactness:
    def test_gmm_is_chunk_exact(self, tiny_scorer):
        assert is_chunk_exact(tiny_scorer)

    def test_unmarked_scorer_defaults_to_false(self):
        class Bare:
            num_senones = 4

        assert not is_chunk_exact(Bare())

    def test_iter_feature_chunks_covers_ragged_tail(self):
        features = np.arange(70.0).reshape(7, 10)
        chunks = list(iter_feature_chunks(features, 3))
        assert [c.shape[0] for c in chunks] == [3, 3, 1]
        assert np.array_equal(np.concatenate(chunks), features)

    def test_iter_feature_chunks_validates(self):
        with pytest.raises(ValueError):
            list(iter_feature_chunks(np.zeros((3, 2)), 0))


class TestBitParity:
    @pytest.mark.parametrize("chunk_frames", [1, 3, 8, 16, 1000, None])
    def test_every_chunk_size_is_bitwise_identical(
        self, tiny_scorer, tiny_utterances, chunk_frames
    ):
        """All chunk sizes — including 1, a ragged tail, and
        chunk > frames — reproduce one-shot scoring bit-for-bit."""
        features = [u.features for u in tiny_utterances]
        expected = [tiny_scorer.score(f) for f in features]
        with ScoringPipeline(
            tiny_scorer, chunk_frames=chunk_frames
        ) as pipeline:
            got = pipeline.score_all(features)
        for a, b in zip(got, expected):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    def test_non_chunk_exact_scorer_is_scored_whole(
        self, tiny_scorer, tiny_utterances
    ):
        class Wrapped:
            chunk_exact = False
            num_senones = tiny_scorer.num_senones

            def __init__(self):
                self.calls = []

            def score(self, features):
                self.calls.append(features.shape[0])
                return tiny_scorer.score(features)

        scorer = Wrapped()
        features = tiny_utterances[0].features[:11]
        with ScoringPipeline(scorer, chunk_frames=4) as pipeline:
            assert pipeline.chunk_frames is None
            stream = pipeline.submit(features)
            chunks = list(stream.chunks())
        assert scorer.calls == [features.shape[0]]
        assert len(chunks) == 1

    def test_zero_frame_submission(self, tiny_scorer, feat):
        with ScoringPipeline(tiny_scorer, chunk_frames=4) as pipeline:
            result = pipeline.submit(feat(0)).result()
        assert result.shape == (0, tiny_scorer.num_senones)

    def test_interleaved_submissions_stay_ordered(
        self, tiny_scorer, tiny_utterances
    ):
        """Streams submitted back-to-back resolve to their own
        utterance's scores, in chunk order, regardless of overlap."""
        features = [u.features for u in tiny_utterances]
        with ScoringPipeline(tiny_scorer, chunk_frames=5) as pipeline:
            streams = [pipeline.submit(f) for f in features]
            for stream, feats in zip(streams, features):
                assert np.array_equal(
                    stream.result(), tiny_scorer.score(feats)
                )


class TestFailureAndLifecycle:
    def test_scorer_exception_is_typed_and_does_not_wedge(
        self, tiny_scorer, tiny_utterances
    ):
        """The poisoned submission raises ScoringError (cause attached);
        the next submission still scores normally on the same worker."""
        scorer = FailingScorer(tiny_scorer)
        good = tiny_utterances[0].features
        bad = good.copy()
        bad[0, 0] = np.nan
        with ScoringPipeline(scorer, chunk_frames=4) as pipeline:
            poisoned = pipeline.submit(bad)
            healthy = pipeline.submit(good)
            with pytest.raises(ScoringError) as excinfo:
                poisoned.result()
            assert isinstance(excinfo.value.__cause__, RuntimeError)
            assert np.array_equal(healthy.result(), tiny_scorer.score(good))
            # The error is sticky: a re-read raises again, never hangs.
            with pytest.raises(ScoringError):
                list(poisoned.chunks())

    def test_close_fails_queued_submissions(self, tiny_scorer, feat):
        """close(cancel=True) while the worker is stalled: submissions
        it never scored must fail typed, never resolve truncated."""
        gate = threading.Event()
        pipeline = ScoringPipeline(SlowScorer(tiny_scorer, gate))
        stalled = pipeline.submit(feat(4))
        queued = pipeline.submit(feat(4))
        closer = threading.Thread(target=lambda: pipeline.close(cancel=True))
        closer.start()
        gate.set()
        closer.join(timeout=5.0)
        assert not closer.is_alive()
        del stalled
        with pytest.raises(PipelineClosed):
            queued.result()
        with pytest.raises(PipelineClosed):
            pipeline.submit(feat(4))

    def test_cancel_releases_a_blocked_producer(self, tiny_scorer, feat):
        """depth=1 with no consumer blocks the worker on chunk 2;
        cancelling the stream must unblock it for later submissions."""
        with ScoringPipeline(
            tiny_scorer, chunk_frames=2, depth=1
        ) as pipeline:
            abandoned = pipeline.submit(feat(10))
            time.sleep(0.05)  # let the worker fill the depth-1 queue
            abandoned.cancel()
            follow_up = pipeline.submit(feat(4))
            assert follow_up.result().shape == (4, tiny_scorer.num_senones)

    def test_result_resolves_without_poll_stall(self, tiny_scorer, feat):
        """Completion is event-driven: resolving a handful of small
        submissions must not pay the 50 ms poll timeout per result."""
        features = feat(4)
        with ScoringPipeline(tiny_scorer) as pipeline:
            pipeline.submit(features).result()  # warm the worker
            start = time.perf_counter()
            for _ in range(5):
                pipeline.submit(features).result()
            elapsed = time.perf_counter() - start
        assert elapsed < 0.25  # 5 poll periods if completion polled

    def test_stream_is_single_consumer(self, tiny_scorer, feat):
        with ScoringPipeline(tiny_scorer) as pipeline:
            stream = pipeline.submit(feat(4))
            stream.result()
            with pytest.raises(RuntimeError):
                list(stream.chunks())

    def test_validation(self, tiny_scorer):
        with pytest.raises(ValueError):
            ScoringPipeline(tiny_scorer, chunk_frames=0)
        with ScoringPipeline(tiny_scorer) as pipeline:
            with pytest.raises(ValueError):
                pipeline.submit(np.zeros(3))
