"""Tests for the HMM topology and AM WFST construction."""

import math

import numpy as np
import pytest

from repro.am import HmmTopology, PhoneInventory, build_am_graph, generate_lexicon
from repro.wfst.fst import EPSILON
from repro.wfst.ops import enumerate_paths


@pytest.fixture
def phones():
    return PhoneInventory.reduced(8)


@pytest.fixture
def topology():
    return HmmTopology(states_per_phone=3, self_loop_prob=0.5)


@pytest.fixture
def lexicon(phones):
    rng = np.random.default_rng(17)
    return generate_lexicon(["abc", "de"], phones, rng, variant_probability=0.0)


class TestTopology:
    def test_costs(self, topology):
        assert topology.self_loop_cost == pytest.approx(math.log(2))
        assert topology.forward_cost == pytest.approx(math.log(2))
        assert topology.expected_frames_per_state == pytest.approx(2.0)

    def test_senone_ids_dense_and_invertible(self, topology, phones):
        seen = set()
        for phone in range(phones.num_phones):
            for j in range(3):
                senone = topology.senone_id(phone, j)
                seen.add(senone)
                assert topology.phone_of_senone(senone) == phone
                assert topology.state_of_senone(senone) == j
        assert seen == set(range(topology.num_senones(phones)))

    def test_bad_state_index(self, topology):
        with pytest.raises(ValueError):
            topology.senone_id(0, 3)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            HmmTopology(states_per_phone=0)
        with pytest.raises(ValueError):
            HmmTopology(self_loop_prob=1.0)

    def test_senone_sequence(self, topology):
        assert topology.senone_sequence([2]) == [6, 7, 8]

    def test_label_offset(self, topology):
        assert topology.senone_label(0) == 1
        assert topology.senone_of_label(1) == 0
        with pytest.raises(ValueError):
            topology.senone_of_label(0)


class TestAmGraph:
    def test_loop_state_is_start_and_final(self, lexicon, topology):
        am = build_am_graph(lexicon, topology, use_silence=False)
        assert am.loop_state == 0
        assert am.fst.start == 0
        assert am.fst.is_final(0)

    def test_state_count(self, lexicon, topology):
        am = build_am_graph(lexicon, topology, use_silence=False)
        expected_chain = sum(
            len(p) * 3 for w in lexicon.words for p in lexicon.pronunciations(w)
        )
        assert am.fst.num_states == 1 + expected_chain

    def test_every_chain_state_has_self_loop(self, lexicon, topology):
        am = build_am_graph(lexicon, topology, use_silence=False)
        for state in am.fst.states():
            if state == am.loop_state:
                continue
            self_loops = [
                a for a in am.fst.out_arcs(state) if a.nextstate == state
            ]
            assert len(self_loops) == 1
            senone = am.senone_of_state(state)
            assert self_loops[0].ilabel == topology.senone_label(senone)
            assert self_loops[0].weight == pytest.approx(topology.self_loop_cost)

    def test_cross_word_arcs_carry_word_labels(self, lexicon, topology):
        am = build_am_graph(lexicon, topology, use_silence=False)
        cross = [
            (s, a)
            for s, a in am.fst.all_arcs()
            if a.olabel != EPSILON
        ]
        assert len(cross) == len(lexicon.words)
        for _, arc in cross:
            assert arc.ilabel == EPSILON  # non-emitting word boundary
            assert arc.nextstate == am.loop_state

    def test_loop_state_fans_out_per_pronunciation(self, lexicon, topology):
        am = build_am_graph(lexicon, topology, use_silence=False)
        assert len(am.fst.out_arcs(am.loop_state)) == lexicon.num_pronunciations

    def test_silence_adds_epsilon_word_chain(self, lexicon, topology):
        with_sil = build_am_graph(lexicon, topology, use_silence=True)
        without = build_am_graph(lexicon, topology, use_silence=False)
        assert with_sil.fst.num_states == without.fst.num_states + 3
        # The silence chain emits no word label.
        extra_cross = [
            a
            for _, a in with_sil.fst.all_arcs()
            if a.nextstate == with_sil.loop_state and a.ilabel == EPSILON
        ]
        words = [a for a in extra_cross if a.olabel != EPSILON]
        silences = [a for a in extra_cross if a.olabel == EPSILON]
        assert len(words) == len(lexicon.words)
        assert len(silences) == 1

    def test_word_ids_shared_with_given_table(self, lexicon, topology):
        from repro.wfst.fst import SymbolTable

        table = SymbolTable("words")
        first = table.add("abc")
        am = build_am_graph(lexicon, topology, words=table, use_silence=False)
        assert am.words is table
        assert am.words.id_of("abc") == first

    def test_min_path_emits_each_senone_once(self, lexicon, topology):
        """The shortest accepting path visits every HMM state exactly once."""
        am = build_am_graph(lexicon, topology, use_silence=False)
        pron = lexicon.primary("de")
        expected = [
            topology.senone_label(s)
            for s in topology.senone_sequence(
                [lexicon.phones.id_of(p) for p in pron]
            )
        ]
        word_id = am.words.id_of("de")
        paths = enumerate_paths(am.fst, max_length=len(expected) + 1)
        matching = [
            p
            for p in paths
            if [o for o in p.olabels if o != EPSILON] == [word_id]
        ]
        shortest = min(matching, key=lambda p: len(p.ilabels))
        assert [l for l in shortest.ilabels if l != EPSILON] == expected

    def test_num_senones(self, lexicon, topology, phones):
        am = build_am_graph(lexicon, topology)
        assert am.num_senones == topology.num_senones(phones)

    def test_emitting_and_epsilon_arc_partition(self, lexicon, topology):
        am = build_am_graph(lexicon, topology)
        for state in am.fst.states():
            emitting = am.emitting_arcs(state)
            epsilon = am.epsilon_arcs(state)
            assert len(emitting) + len(epsilon) == len(am.fst.out_arcs(state))
