"""Property tests for feature synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import (
    FeatureSynthesizer,
    HmmTopology,
    PhoneInventory,
    generate_lexicon,
    make_emission_model,
)


def _setup(seed, self_loop=0.5, noise=0.5, silence=0.0):
    rng = np.random.default_rng(seed)
    phones = PhoneInventory.reduced(5)
    topology = HmmTopology(self_loop_prob=self_loop)
    lexicon = generate_lexicon(["aa", "bb", "ccc"], phones, rng, variant_probability=0)
    emissions = make_emission_model(phones, topology, rng, dim=6)
    synth = FeatureSynthesizer(
        lexicon=lexicon,
        topology=topology,
        emissions=emissions,
        rng=rng,
        noise_scale=noise,
        silence_probability=silence,
    )
    return phones, topology, lexicon, synth


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.1, 0.9))
def test_alignment_is_monotone_over_senone_chain(seed, self_loop):
    """Each utterance's alignment is its senone chain with repeats."""
    phones, topology, lexicon, synth = _setup(seed, self_loop=self_loop)
    utt = synth.synthesize(["aa", "ccc"])
    expected = topology.senone_sequence(
        [phones.id_of(p) for p in lexicon.primary("aa")]
    ) + topology.senone_sequence([phones.id_of(p) for p in lexicon.primary("ccc")])
    dedup = [
        s for i, s in enumerate(utt.alignment) if i == 0 or s != utt.alignment[i - 1]
    ]
    assert dedup == expected


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_zero_noise_features_equal_means(seed):
    _, _, _, synth = _setup(seed, noise=0.0)
    utt = synth.synthesize(["bb"])
    expected = synth.emissions.means[utt.alignment]
    assert np.allclose(utt.features, expected)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_silence_always_inserted_at_probability_one(seed):
    phones, topology, _, synth = _setup(seed, silence=1.0)
    utt = synth.synthesize(["aa"])
    silence_senones = set(topology.senone_sequence([phones.silence_id]))
    assert silence_senones & set(utt.alignment)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.2, 0.8))
def test_expected_duration_tracks_self_loop_prob(seed, self_loop):
    """Mean frames per senone approaches 1/(1 - p_self)."""
    _, topology, _, synth = _setup(seed, self_loop=self_loop)
    lengths = []
    for _ in range(30):
        utt = synth.synthesize(["ccc"])
        lengths.append(utt.num_frames / (3 * topology.states_per_phone))
    mean = float(np.mean(lengths))
    expected = topology.expected_frames_per_state
    assert mean == pytest.approx(expected, rel=0.35)
