"""Tests for vocabulary and corpus generation."""

import numpy as np
import pytest

from repro.lm import ReferenceGrammar, corpus_stats, make_vocabulary


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestVocabulary:
    def test_requested_count(self, rng):
        assert len(make_vocabulary(50, rng)) == 50

    def test_words_unique(self, rng):
        words = make_vocabulary(200, rng)
        assert len(set(words)) == 200

    def test_words_are_pronounceable_strings(self, rng):
        for word in make_vocabulary(30, rng):
            assert word.isalpha()
            assert 2 <= len(word) <= 9

    def test_deterministic_under_seed(self):
        a = make_vocabulary(20, np.random.default_rng(3))
        b = make_vocabulary(20, np.random.default_rng(3))
        assert a == b


class TestReferenceGrammar:
    def test_transitions_are_stochastic(self, rng):
        grammar = ReferenceGrammar.random(make_vocabulary(30, rng), rng)
        rows = grammar.transitions.sum(axis=1)
        assert np.allclose(rows, 1.0)

    def test_cannot_stop_immediately(self, rng):
        grammar = ReferenceGrammar.random(make_vocabulary(10, rng), rng)
        assert grammar.transitions[-1, -1] == 0.0

    def test_sentences_nonempty_and_bounded(self, rng):
        grammar = ReferenceGrammar.random(make_vocabulary(30, rng), rng)
        for _ in range(50):
            sentence = grammar.sample_sentence(max_len=12)
            assert 1 <= len(sentence) <= 12
            assert all(w in set(grammar.vocabulary) for w in sentence)

    def test_corpus_covers_vocabulary(self, rng):
        vocab = make_vocabulary(100, rng)
        grammar = ReferenceGrammar.random(vocab, rng, branching=3)
        corpus = grammar.sample_corpus(20)  # too few to cover naturally
        seen = {w for s in corpus for w in s}
        assert seen == set(vocab)

    def test_sparse_branching(self, rng):
        """Each word has few successors, so back-off will be exercised."""
        grammar = ReferenceGrammar.random(make_vocabulary(60, rng), rng, branching=4)
        support = (grammar.transitions[:-1, :-1] > 0).sum(axis=1)
        assert support.max() <= 4


class TestCorpusStats:
    def test_stats(self):
        stats = corpus_stats([["a", "b"], ["a"]])
        assert stats.num_sentences == 2
        assert stats.num_tokens == 3
        assert stats.vocabulary_size == 2
        assert stats.avg_sentence_len == pytest.approx(1.5)

    def test_empty(self):
        assert corpus_stats([]).avg_sentence_len == 0.0
