"""Tests for the Kneser-Ney estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm import (
    SENTENCE_END,
    ReferenceGrammar,
    build_lm_graph,
    make_vocabulary,
    train_ngram_model,
)
from repro.lm.kneser_ney import KneserNeyModel, train_kneser_ney
from repro.lm.ngram import NGramCounts


def _corpus(seed=3, vocab_size=30, sentences=400, branching=4):
    rng = np.random.default_rng(seed)
    vocab = make_vocabulary(vocab_size, rng)
    grammar = ReferenceGrammar.random(vocab, rng, branching=branching)
    return vocab, grammar, grammar.sample_corpus(sentences)


class TestKneserNey:
    def test_normalization_all_contexts(self):
        vocab, _, corpus = _corpus()
        model = train_kneser_ney(corpus, vocab, order=3)
        events = vocab + [SENTENCE_END]
        for k in range(model.order):
            for context in model.explicit_contexts(k):
                total = sum(model.prob(w, context) for w in events)
                assert total == pytest.approx(1.0, abs=1e-8), context

    def test_continuation_effect(self):
        """A word seen often but in one context only gets a small
        unigram back-off probability — the defining KN behaviour."""
        vocab = ["san", "francisco", "york", "new"]
        corpus = [["san", "francisco"]] * 30 + [
            ["new", "york"],
            ["new", "francisco"],  # give 'francisco' a 2nd context once
            ["york", "san"],
            ["york", "new"],
            ["san", "new"],
        ]
        kn = train_kneser_ney(corpus, vocab, order=2, cutoffs=(1, 1))
        katz = train_ngram_model(corpus, vocab, order=2, cutoffs=(1, 1))
        # Raw frequency makes 'francisco' the most likely unigram; its
        # continuation count (2 contexts) must demote it under KN.
        assert katz.prob("francisco") > katz.prob("new")
        assert kn.prob("francisco") < katz.prob("francisco")

    def test_perplexity_competitive(self):
        vocab, grammar, corpus = _corpus(seed=11, sentences=600)
        test = grammar.sample_corpus(60)
        kn = train_kneser_ney(corpus, vocab, order=3)
        katz = train_ngram_model(corpus, vocab, order=3, cutoffs=(1, 1, 2))
        # KN should be at least competitive with the plain estimator.
        assert kn.perplexity(test) < 1.3 * katz.perplexity(test)

    def test_order_one_rejected(self):
        vocab, _, corpus = _corpus()
        with pytest.raises(ValueError):
            train_kneser_ney(corpus, vocab, order=1)

    def test_graph_construction_and_decoding(self):
        """The KN model plugs into the whole stack unchanged."""
        vocab, grammar, corpus = _corpus(seed=7, vocab_size=12, sentences=150)
        model = train_kneser_ney(corpus, vocab, order=3, cutoffs=(1, 1, 1))
        graph = build_lm_graph(model)  # invariants checked inside
        assert graph.unigram_state == 0
        from repro.core import LmLookup, LookupStrategy

        lookup = LmLookup(graph, strategy=LookupStrategy.BINARY)
        for word in vocab[:5]:
            result = lookup.resolve(graph.unigram_state, graph.word_id(word))
            assert result.weight == pytest.approx(
                -model.log_prob(word, ()), rel=1e-9
            )

    def test_empty_corpus_rejected(self):
        counts = NGramCounts.from_corpus([], 2)
        with pytest.raises(ValueError):
            KneserNeyModel(["a"], counts)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_kn_normalization_property(seed):
    vocab, _, corpus = _corpus(seed=seed, vocab_size=10, sentences=60)
    model = train_kneser_ney(corpus, vocab, order=3, cutoffs=(1, 1, 2))
    events = vocab + [SENTENCE_END]
    for k in range(model.order):
        for context in model.explicit_contexts(k):
            total = sum(model.prob(w, context) for w in events)
            assert total == pytest.approx(1.0, abs=1e-8)
