"""Property tests tying the LM WFST to the n-gram model across seeds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LmLookup, LookupStrategy
from repro.lm import (
    SENTENCE_END,
    ReferenceGrammar,
    build_lm_graph,
    make_vocabulary,
    train_ngram_model,
)


def _random_lm(seed: int, order: int, vocab_size: int = 10):
    rng = np.random.default_rng(seed)
    vocab = make_vocabulary(vocab_size, rng)
    grammar = ReferenceGrammar.random(vocab, rng, branching=3)
    corpus = grammar.sample_corpus(60)
    model = train_ngram_model(corpus, vocab, order=order, cutoffs=(1, 1, 2, 2))
    return vocab, grammar, model, build_lm_graph(model)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=4))
def test_resolve_equals_model_probability(seed, order):
    """Back-off walks through the WFST reproduce the model exactly."""
    vocab, _, model, graph = _random_lm(seed, order)
    lookup = LmLookup(graph, strategy=LookupStrategy.BINARY)
    states = list(range(graph.fst.num_states))
    for state in states[:: max(1, len(states) // 8)]:
        context = graph.context_of_state[state]
        for word in vocab[:4]:
            result = lookup.resolve(state, graph.word_id(word))
            assert result.weight == pytest.approx(
                -model.log_prob(word, context), rel=1e-9
            )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sentence_scoring_through_graph(seed):
    """Graph walk + final weight == model sentence score, any sentence."""
    vocab, grammar, model, graph = _random_lm(seed, order=3)
    lookup = LmLookup(graph, strategy=LookupStrategy.BINARY)
    sentence = grammar.sample_sentence(max_len=6)
    state = graph.fst.start
    total = 0.0
    for word in sentence:
        result = lookup.resolve(state, graph.word_id(word))
        total += result.weight
        state = result.next_state
    total += graph.fst.final_weight(state)
    assert total == pytest.approx(-model.score_sentence(sentence), rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_all_strategies_agree_on_random_models(seed):
    vocab, _, _, graph = _random_lm(seed, order=3)
    engines = [
        LmLookup(graph, strategy=s, offset_table_entries=256)
        for s in LookupStrategy
    ]
    for word in vocab[:5]:
        word_id = graph.word_id(word)
        results = [e.resolve(graph.unigram_state, word_id) for e in engines]
        weights = {round(r.weight, 12) for r in results}
        states = {r.next_state for r in results}
        assert len(weights) == 1
        assert len(states) == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sentence_end_always_final(seed):
    """Every LM state can terminate a sentence (</s> backs off to unigram)."""
    _, _, model, graph = _random_lm(seed, order=3)
    del model
    import math

    for state in range(graph.fst.num_states):
        assert math.isfinite(graph.fst.final_weight(state))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pack_round_trip_random_models(seed):
    """The LM bit format survives arbitrary trained models."""
    from repro.compress import pack_lm, unpack_lm

    _, _, _, graph = _random_lm(seed, order=3)
    packed = pack_lm(graph)
    restored = unpack_lm(packed)
    assert restored.num_states == graph.fst.num_states
    assert restored.num_arcs == graph.fst.num_arcs
    # Spot-check: unigram fan-out preserved.
    assert len(restored.out_arcs(0)) == len(graph.fst.out_arcs(0))


def test_sentence_end_not_in_word_arcs_anywhere():
    _, _, _, graph = _random_lm(7, order=3)
    assert SENTENCE_END not in graph.words
