"""ARPA round-trip tests cross-checking the estimator."""

import io

import numpy as np
import pytest

from repro.lm import (
    SENTENCE_END,
    ReferenceGrammar,
    make_vocabulary,
    read_arpa,
    train_ngram_model,
    write_arpa,
)


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(41)
    vocab = make_vocabulary(25, rng)
    grammar = ReferenceGrammar.random(vocab, rng, branching=4)
    corpus = grammar.sample_corpus(200)
    model = train_ngram_model(corpus, vocab, order=3, cutoffs=(1, 1, 2))
    return vocab, model


def _round_trip(model):
    buffer = io.StringIO()
    write_arpa(model, buffer)
    buffer.seek(0)
    return read_arpa(buffer)


class TestRoundTrip:
    def test_orders_preserved(self, trained):
        _, model = trained
        arpa = _round_trip(model)
        assert arpa.order == model.order

    def test_ngram_counts_preserved(self, trained):
        _, model = trained
        arpa = _round_trip(model)
        for k in range(model.order):
            assert arpa.num_ngrams(k) == model.num_ngrams(k)

    def test_probabilities_preserved(self, trained):
        vocab, model = trained
        arpa = _round_trip(model)
        contexts = [(), (vocab[0],), (vocab[0], vocab[1])]
        for context in contexts:
            for word in vocab[:10] + [SENTENCE_END]:
                assert arpa.log_prob(word, context) == pytest.approx(
                    model.log_prob(word, context), abs=1e-5
                )

    def test_backoff_resolution_matches(self, trained):
        vocab, model = trained
        arpa = _round_trip(model)
        # Pick a context that certainly requires back-off.
        context = (vocab[-1], vocab[-2])
        for word in vocab[:5]:
            assert arpa.log_prob(word, context) == pytest.approx(
                model.log_prob(word, context), abs=1e-5
            )


class TestParsing:
    ARPA_TEXT = """\

\\data\\
ngram 1=3
ngram 2=1

\\1-grams:
-0.5\ta\t-0.30103
-0.7\tb
-0.2\t</s>

\\2-grams:
-0.1\ta b

\\end\\
"""

    def test_parse_minimal_file(self):
        arpa = read_arpa(io.StringIO(self.ARPA_TEXT))
        assert arpa.order == 2
        assert arpa.num_ngrams(0) == 3
        assert arpa.ngrams[0][("a",)] == (-0.5, -0.30103)
        assert arpa.ngrams[1][("a", "b")] == (-0.1, 0.0)

    def test_backoff_applied_for_unseen_bigram(self):
        arpa = read_arpa(io.StringIO(self.ARPA_TEXT))
        import math

        expected = (-0.30103 + -0.7) * math.log(10)
        assert arpa.log_prob("b", ("a",)) == pytest.approx(-0.1 * math.log(10))
        assert arpa.log_prob("a", ("a",)) == pytest.approx(
            (-0.30103 + -0.5) * math.log(10)
        )
        del expected

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            read_arpa(io.StringIO("no header here\n"))

    def test_count_mismatch_rejected(self):
        bad = self.ARPA_TEXT.replace("ngram 1=3", "ngram 1=4")
        with pytest.raises(ValueError):
            read_arpa(io.StringIO(bad))

    def test_unknown_word_is_impossible(self):
        arpa = read_arpa(io.StringIO(self.ARPA_TEXT))
        assert arpa.log_prob("zzz") == float("-inf")
