"""Tests for LM WFST construction."""

import math

import numpy as np
import pytest

from repro.lm import (
    SENTENCE_END,
    BACKOFF_SYMBOL,
    ReferenceGrammar,
    build_lm_graph,
    make_vocabulary,
    train_ngram_model,
)
from repro.wfst.fst import EPSILON

CORPUS = [
    ["one", "two", "three"],
    ["one", "two", "one"],
    ["two", "one"],
    ["three"],
    ["one", "two", "three"],
]
VOCAB = ["one", "two", "three"]


@pytest.fixture
def graph():
    model = train_ngram_model(CORPUS, VOCAB, order=3, cutoffs=(1, 1, 1))
    return build_lm_graph(model)


@pytest.fixture
def model():
    return train_ngram_model(CORPUS, VOCAB, order=3, cutoffs=(1, 1, 1))


class TestStructure:
    def test_unigram_state_is_zero(self, graph):
        assert graph.unigram_state == 0

    def test_unigram_state_has_arc_per_word(self, graph):
        labels = {a.ilabel for a in graph.fst.out_arcs(0)}
        assert labels == {graph.word_id(w) for w in VOCAB}

    def test_backoff_label_after_all_words(self, graph):
        assert all(graph.word_id(w) < graph.backoff_label for w in VOCAB)
        assert graph.words.symbol_of(graph.backoff_label) == BACKOFF_SYMBOL

    def test_backoff_arc_is_last_and_unique(self, graph):
        for state in graph.fst.states():
            if state == graph.unigram_state:
                continue
            arcs = graph.fst.out_arcs(state)
            backoffs = [a for a in arcs if a.ilabel == graph.backoff_label]
            assert len(backoffs) == 1
            assert arcs[-1] is backoffs[0]
            assert backoffs[0].olabel == EPSILON

    def test_unigram_state_has_no_backoff(self, graph):
        assert graph.backoff_arc(graph.unigram_state) is None

    def test_state_levels(self, graph):
        levels = graph.num_states_by_level()
        assert levels[0] == 1
        assert levels.get(1, 0) >= 1
        assert levels.get(2, 0) >= 1
        assert graph.state_level(0) == 0

    def test_start_state_has_start_history(self, graph):
        context = graph.context_of_state[graph.fst.start]
        assert all(w == "<s>" for w in context)

    def test_word_arcs_sorted(self, graph):
        for state in graph.fst.states():
            arcs = graph.fst.out_arcs(state)
            word_arcs = [a.ilabel for a in arcs if a.ilabel != graph.backoff_label]
            assert word_arcs == sorted(word_arcs)

    def test_finals_encode_sentence_end(self, graph, model):
        state = graph.unigram_state
        expected = -model.log_prob(SENTENCE_END, ())
        assert graph.fst.final_weight(state) == pytest.approx(expected)


class TestWeights:
    def test_word_arc_weight_is_explicit_prob(self, graph, model):
        # At the unigram state, arc weight == -log P*(w).
        for arc in graph.fst.out_arcs(graph.unigram_state):
            word = graph.words.symbol_of(arc.ilabel)
            assert arc.weight == pytest.approx(-model.log_prob(word, ()))

    def test_backoff_arc_weight_is_alpha(self, graph, model):
        for state in graph.fst.states():
            arc = graph.backoff_arc(state)
            if arc is None:
                continue
            context = graph.context_of_state[state]
            assert arc.weight == pytest.approx(-model.backoff_log_weight(context))

    def test_arc_destination_advances_history(self, graph):
        # Following word w from the unigram state lands in a state whose
        # context ends with w (or the unigram state if w has no state).
        for arc in graph.fst.out_arcs(graph.unigram_state):
            context = graph.context_of_state[arc.nextstate]
            word = graph.words.symbol_of(arc.ilabel)
            assert context == () or context[-1] == word

    def test_graph_walk_matches_model_score(self, graph, model):
        """Walking the graph with exact back-off equals model scoring."""
        for sentence in CORPUS:
            state = graph.fst.start
            total = 0.0
            for word in sentence:
                word_id = graph.word_id(word)
                # Back-off walk, as the decoder performs it.
                while True:
                    match = next(
                        (a for a in graph.fst.out_arcs(state) if a.ilabel == word_id),
                        None,
                    )
                    if match is not None:
                        total += match.weight
                        state = match.nextstate
                        break
                    backoff = graph.backoff_arc(state)
                    assert backoff is not None, "unigram floor must match all words"
                    total += backoff.weight
                    state = backoff.nextstate
            total += graph.fst.final_weight(state)
            assert total == pytest.approx(-model.score_sentence(sentence), rel=1e-9)


class TestScaling:
    def test_larger_vocab_builds_and_validates(self):
        rng = np.random.default_rng(23)
        vocab = make_vocabulary(150, rng)
        grammar = ReferenceGrammar.random(vocab, rng, branching=5)
        corpus = grammar.sample_corpus(800)
        model = train_ngram_model(corpus, vocab, order=3, cutoffs=(1, 1, 2))
        graph = build_lm_graph(model)  # invariant checks run inside
        assert graph.fst.num_states > len(vocab) / 2
        # Trigram pruning means trigram states exist but are not exhaustive.
        levels = graph.num_states_by_level()
        assert levels.get(2, 0) < model.num_ngrams(1)

    def test_bigram_model_has_no_trigram_states(self):
        model = train_ngram_model(CORPUS, VOCAB, order=2)
        graph = build_lm_graph(model)
        assert 2 not in graph.num_states_by_level()

    def test_unigram_model_single_state(self):
        model = train_ngram_model(CORPUS, VOCAB, order=1)
        graph = build_lm_graph(model)
        assert graph.fst.num_states == 1
        assert graph.fst.start == 0
        assert math.isfinite(graph.fst.final_weight(0))
