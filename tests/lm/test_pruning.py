"""Tests for relative-entropy LM pruning."""

import numpy as np
import pytest

from repro.lm import (
    SENTENCE_END,
    ReferenceGrammar,
    build_lm_graph,
    make_vocabulary,
    train_ngram_model,
)
from repro.lm.pruning import prune_model
from repro.wfst import uncompressed_size_bytes


@pytest.fixture
def trained():
    rng = np.random.default_rng(17)
    vocab = make_vocabulary(40, rng)
    grammar = ReferenceGrammar.random(vocab, rng, branching=5)
    corpus = grammar.sample_corpus(500)
    test = grammar.sample_corpus(60)
    model = train_ngram_model(corpus, vocab, order=3, cutoffs=(1, 1, 1))
    return vocab, model, test


class TestPruning:
    def test_removes_ngrams_and_shrinks_graph(self, trained):
        vocab, model, _ = trained
        before_ngrams = model.num_ngrams(1) + model.num_ngrams(2)
        before_bytes = uncompressed_size_bytes(build_lm_graph(model).fst)
        report = prune_model(model, threshold=1e-5)
        after_ngrams = model.num_ngrams(1) + model.num_ngrams(2)
        assert report.total_removed > 0
        assert after_ngrams == before_ngrams - report.total_removed
        after_bytes = uncompressed_size_bytes(build_lm_graph(model).fst)
        assert after_bytes < before_bytes

    def test_normalization_preserved(self, trained):
        vocab, model, _ = trained
        prune_model(model, threshold=1e-5)
        events = vocab + [SENTENCE_END]
        for k in range(model.order):
            for context in model.explicit_contexts(k):
                total = sum(model.prob(w, context) for w in events)
                assert total == pytest.approx(1.0, abs=1e-6), context

    def test_perplexity_degrades_gracefully(self, trained):
        vocab, model, test = trained
        baseline_ppl = model.perplexity(test)
        prune_model(model, threshold=1e-6)
        light_ppl = model.perplexity(test)
        prune_model(model, threshold=1e-3)
        heavy_ppl = model.perplexity(test)
        # Light pruning barely moves perplexity; heavy pruning costs more.
        assert light_ppl <= baseline_ppl * 1.2
        assert heavy_ppl >= light_ppl - 1e-9

    def test_unigrams_never_pruned(self, trained):
        vocab, model, _ = trained
        prune_model(model, threshold=1.0)  # absurdly aggressive
        # The back-off floor survives: every word still has a unigram.
        for word in vocab:
            assert model.prob(word) > 0
        assert model.num_ngrams(0) == len(vocab) + 1  # + </s>

    def test_graph_invariants_after_pruning(self, trained):
        _, model, _ = trained
        prune_model(model, threshold=1e-4)
        graph = build_lm_graph(model)  # invariant checks run inside
        assert graph.unigram_state == 0

    def test_decoding_still_works_after_pruning(self, trained):
        """Heavier pruning means more back-off traffic, not failure."""
        from repro.core import LmLookup, LookupStrategy

        vocab, model, _ = trained
        prune_model(model, threshold=1e-4)
        graph = build_lm_graph(model)
        lookup = LmLookup(graph, strategy=LookupStrategy.BINARY)
        for word in vocab[:10]:
            result = lookup.resolve(graph.unigram_state, graph.word_id(word))
            assert result.weight == pytest.approx(
                -model.log_prob(word, ()), rel=1e-6
            )

    def test_invalid_threshold(self, trained):
        _, model, _ = trained
        with pytest.raises(ValueError):
            prune_model(model, threshold=-1.0)

    def test_report_rates(self, trained):
        _, model, _ = trained
        report = prune_model(model, threshold=1e-5)
        for order in report.removed_by_order:
            assert 0.0 <= report.removal_rate(order) <= 1.0
