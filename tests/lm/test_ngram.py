"""Tests for the back-off n-gram estimator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm import (
    SENTENCE_END,
    BackoffNGramModel,
    NGramCounts,
    ReferenceGrammar,
    make_vocabulary,
    train_ngram_model,
)

CORPUS = [
    ["one", "two", "three"],
    ["one", "two", "one"],
    ["two", "one"],
    ["three"],
    ["one", "two", "three"],
]
VOCAB = ["one", "two", "three"]


@pytest.fixture
def model():
    return train_ngram_model(CORPUS, VOCAB, order=3, cutoffs=(1, 1, 1))


class TestCounts:
    def test_unigram_counts(self):
        counts = NGramCounts.from_corpus(CORPUS, order=3)
        unigrams = counts.counts[0][()]
        assert unigrams["one"] == 5
        assert unigrams["two"] == 4
        assert unigrams[SENTENCE_END] == 5

    def test_bigram_counts_include_start_context(self):
        counts = NGramCounts.from_corpus(CORPUS, order=2)
        assert counts.counts[1][("<s>",)]["one"] == 3

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            NGramCounts.from_corpus(CORPUS, order=0)

    def test_cutoffs_drop_rare_ngrams(self):
        counts = NGramCounts.from_corpus(CORPUS, order=2)
        before = counts.total_ngrams(1)
        counts.apply_cutoffs((1, 2))
        after = counts.total_ngrams(1)
        assert after < before
        # Unigrams never pruned.
        assert counts.total_ngrams(0) > 0

    def test_cutoff_drops_empty_contexts(self):
        counts = NGramCounts.from_corpus([["a", "b"]], order=2)
        counts.apply_cutoffs((1, 5))
        assert counts.counts[1] == {}


class TestProbabilities:
    def test_normalization_unigram(self, model):
        total = sum(model.prob(w) for w in VOCAB) + model.prob(SENTENCE_END)
        assert total == pytest.approx(1.0)

    def test_normalization_all_contexts(self, model):
        events = VOCAB + [SENTENCE_END]
        for k in range(1, model.order):
            for context in model.explicit_contexts(k):
                total = sum(model.prob(w, context) for w in events)
                assert total == pytest.approx(1.0, abs=1e-9), context

    def test_seen_bigram_more_likely_than_unseen(self, model):
        # "one two" occurs 3 times; "one three" never.
        assert model.prob("two", ("one",)) > model.prob("three", ("one",))

    def test_backoff_path_used_for_unseen(self, model):
        # P(three | two, two) must back off; still positive.
        p = model.prob("three", ("two", "two"))
        assert 0 < p < 1

    def test_every_word_has_positive_unigram(self, model):
        for word in VOCAB:
            assert model.prob(word) > 0

    def test_log_prob_consistent(self, model):
        assert model.log_prob("one") == pytest.approx(math.log(model.prob("one")))

    def test_score_sentence_sums_logs(self, model):
        words = ["one", "two"]
        by_hand = (
            model.log_prob("one", ("<s>", "<s>"))
            + model.log_prob("two", ("<s>", "one"))
            + model.log_prob(SENTENCE_END, ("one", "two"))
        )
        assert model.score_sentence(words) == pytest.approx(by_hand)

    def test_long_context_truncated(self, model):
        p_full = model.prob("two", ("x", "y", "z", "one"))
        p_trunc = model.prob("two", ("z", "one"))
        assert p_full == pytest.approx(p_trunc)

    def test_invalid_discount_rejected(self):
        counts = NGramCounts.from_corpus(CORPUS, 2)
        with pytest.raises(ValueError):
            BackoffNGramModel(VOCAB, counts, discount=1.5)

    def test_empty_corpus_rejected(self):
        counts = NGramCounts.from_corpus([], 2)
        with pytest.raises(ValueError):
            BackoffNGramModel(VOCAB, counts)


class TestModelStructure:
    def test_unigram_entries_cover_all_events(self, model):
        entries = {e.word for e in model.entries(0)}
        assert entries == set(VOCAB) | {SENTENCE_END}

    def test_backoff_weight_of_empty_context_is_zero(self, model):
        assert model.backoff_log_weight(()) == 0.0

    def test_unseen_context_alpha_is_one(self, model):
        assert model.backoff_log_weight(("three", "three")) == pytest.approx(0.0)

    def test_has_context(self, model):
        assert model.has_context(())
        assert model.has_context(("one",))
        assert not model.has_context(("zzz",))

    def test_num_ngrams_positive(self, model):
        assert model.num_ngrams(0) == 4
        assert model.num_ngrams(1) > 0


class TestPerplexity:
    def test_training_data_beats_shuffled(self):
        rng = np.random.default_rng(11)
        vocab = make_vocabulary(40, rng)
        grammar = ReferenceGrammar.random(vocab, rng, branching=4)
        train = grammar.sample_corpus(400)
        test = grammar.sample_corpus(50)
        model = train_ngram_model(train, vocab, order=3)
        ppl_matched = model.perplexity(test)
        shuffled = [list(rng.permutation(s)) for s in test if len(s) > 1]
        ppl_shuffled = model.perplexity(shuffled)
        assert ppl_matched < ppl_shuffled

    def test_higher_order_helps(self):
        rng = np.random.default_rng(5)
        vocab = make_vocabulary(30, rng)
        grammar = ReferenceGrammar.random(vocab, rng, branching=3)
        train = grammar.sample_corpus(500)
        test = grammar.sample_corpus(60)
        uni = train_ngram_model(train, vocab, order=1)
        tri = train_ngram_model(train, vocab, order=3)
        assert tri.perplexity(test) < uni.perplexity(test)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=3))
def test_normalization_property(seed, order):
    """Sum over the event space is 1 in every explicit context."""
    rng = np.random.default_rng(seed)
    vocab = make_vocabulary(12, rng)
    grammar = ReferenceGrammar.random(vocab, rng, branching=3)
    corpus = grammar.sample_corpus(40)
    model = train_ngram_model(corpus, vocab, order=order, cutoffs=(1, 1, 2))
    events = vocab + [SENTENCE_END]
    for k in range(model.order):
        for context in model.explicit_contexts(k):
            total = sum(model.prob(w, context) for w in events)
            assert total == pytest.approx(1.0, abs=1e-8)
