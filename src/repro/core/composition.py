"""On-the-fly LM arc lookup — the heart of UNFOLD (Sections 3.1-3.3).

When the Viterbi search crosses a word boundary in the AM graph, it must
locate the LM arc whose input label matches the word id among the
thousands of outgoing arcs of the current LM state.  The paper measures
three strategies:

* **linear** scan: ~10x slowdown over a fully-composed decoder;
* **binary** search over word-id-sorted arcs: ~3x slowdown;
* binary search + the **Offset Lookup Table** — a direct-mapped cache of
  recent ``(LM state, word id) -> arc offset`` results — plus preemptive
  back-off pruning: ~18% slowdown.

This module implements all three, with exact probe accounting (every
probe is an LM arc fetch, reported to the trace sink), the OLT model
(XOR-indexed, tagged, Section 3.5), and the back-off walk with the
preemptive pruning check of Section 3.3.
"""

from __future__ import annotations

import enum
import math
from collections import OrderedDict
from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.core.arcs import LmWordArcs
from repro.core.trace import GraphSide, NullSink, TraceSink
from repro.lm.graph import LmGraph
from repro.wfst.fst import Arc


class LookupStrategy(enum.Enum):
    LINEAR = "linear"
    BINARY = "binary"
    OFFSET_TABLE = "offset_table"


@dataclass
class LookupStats:
    """Activity counters for the LM lookup engine."""

    lookups: int = 0
    arc_probes: int = 0  # LM arc records touched while searching
    olt_hits: int = 0
    olt_misses: int = 0
    backoff_arcs_taken: int = 0
    preemptive_prunes: int = 0
    # LM expansion cache activity (the batched resolve engine).  The
    # cache memoizes graph-derived rows only, so these are excluded
    # from equality: scalar runs, which never touch the cache, must
    # still compare equal to batched runs stat-for-stat.
    expansion_hits: int = field(default=0, compare=False)
    expansion_misses: int = field(default=0, compare=False)
    expansion_evictions: int = field(default=0, compare=False)

    @property
    def olt_hit_ratio(self) -> float:
        total = self.olt_hits + self.olt_misses
        return self.olt_hits / total if total else 0.0

    @property
    def avg_probes_per_lookup(self) -> float:
        return self.arc_probes / self.lookups if self.lookups else 0.0

    @property
    def expansion_hit_ratio(self) -> float:
        total = self.expansion_hits + self.expansion_misses
        return self.expansion_hits / total if total else 0.0

    def clone(self) -> "LookupStats":
        """An independent copy (checkpointing; delta baselines)."""
        return replace(self)

    def assign(self, other: "LookupStats") -> None:
        """Overwrite every counter in place.

        In-place because a lookup's stats object is shared with its
        expansion cache — rebinding ``lookup.stats`` would silently
        split the two.  Used when restoring a session checkpoint.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(other, f.name))


class OffsetLookupTable:
    """Direct-mapped cache of recent LM arc-offset search results.

    Indexed by ``(state XOR word) mod entries`` with a 24-bit tag, as in
    Section 3.5.  Each entry stores the arc *ordinal* within its state
    (the paper's 23-bit arc offset).  Tag aliasing is modelled: two
    different (state, word) pairs can collide on both index and tag, in
    which case the table returns a wrong offset and the caller must
    validate the fetched arc — exactly what hardware would do.
    """

    TAG_BITS = 24

    def __init__(self, num_entries: int = 32 * 1024) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ValueError("num_entries must be a positive power of two")
        self.num_entries = num_entries
        self._mask = num_entries - 1
        # Validity is a generation stamp: an entry is live when its
        # stamp matches the current generation, so invalidation is a
        # counter bump instead of reallocating the arrays.  Stored as
        # numpy columns so the batched resolve engine can gather and
        # scatter entries in bulk; the scalar methods index them the
        # same way they indexed the previous plain lists.
        self._generation = 1
        self._valid = np.zeros(num_entries, dtype=np.int64)
        self._tags = np.zeros(num_entries, dtype=np.int64)
        self._offsets = np.zeros(num_entries, dtype=np.int64)

    def _slot(self, state: int, word: int) -> tuple[int, int]:
        index = (state ^ word) & self._mask
        tag = ((state * 0x9E3779B1) ^ (word * 0x85EBCA77)) & (
            (1 << self.TAG_BITS) - 1
        )
        return index, tag

    def lookup(self, state: int, word: int) -> int | None:
        """Cached arc ordinal, or None on miss."""
        index, tag = self._slot(state, word)
        if self._valid[index] == self._generation and self._tags[index] == tag:
            return int(self._offsets[index])
        return None

    def insert(self, state: int, word: int, ordinal: int) -> None:
        index, tag = self._slot(state, word)
        self._valid[index] = self._generation
        self._tags[index] = tag
        self._offsets[index] = ordinal

    def invalidate(self) -> None:
        """Drop every entry in O(1): stale stamps can no longer match."""
        self._generation += 1

    def export_state(self) -> dict:
        """Copy out the live entries (session checkpointing).

        Validity is exported as a plain boolean mask so the snapshot is
        independent of this table's generation counter.
        """
        return {
            "num_entries": self.num_entries,
            "valid": self._valid == self._generation,
            "tags": self._tags.copy(),
            "offsets": self._offsets.copy(),
        }

    def load_state(self, state: dict) -> None:
        """Replace the table's contents with an exported snapshot."""
        if state["num_entries"] != self.num_entries:
            raise ValueError(
                f"offset table geometry mismatch: snapshot has "
                f"{state['num_entries']} entries, table has "
                f"{self.num_entries}"
            )
        self._generation += 1  # drop whatever was resident
        self._valid = np.where(state["valid"], self._generation, 0)
        self._tags = state["tags"].copy()
        self._offsets = state["offsets"].copy()

    @property
    def size_bytes(self) -> int:
        """Storage: valid bit + 24-bit tag + 23-bit offset per entry."""
        return self.num_entries * 6


@dataclass
class ResolveResult:
    """Outcome of matching a word at an LM state, with back-off."""

    weight: float  # total LM cost (back-off penalties + arc weight)
    next_state: int
    pruned: bool = False  # stopped early by preemptive pruning
    backoff_levels: int = 0


@dataclass
class BatchResolveResult:
    """Vectorized :meth:`LmLookup.resolve_batch` outcome, one row per item."""

    weight: np.ndarray  # float64
    next_state: np.ndarray  # int64
    pruned: np.ndarray  # bool
    backoff_levels: np.ndarray  # int64


def _binary_probe_counts(labels: np.ndarray, words: np.ndarray) -> np.ndarray:
    """Probe count of ``LmLookup._binary`` for every query in ``words``.

    Simulates the lo/hi walk for all words at once; for absent words
    this is the full walk to exhaustion, exactly as the scalar search
    pays it.
    """
    n = int(labels.shape[0])
    total = words.shape[0]
    counts = np.zeros(total, dtype=np.int64)
    if n == 0:
        return counts
    lo = np.zeros(total, dtype=np.int64)
    hi = np.full(total, n - 1, dtype=np.int64)
    active = np.ones(total, dtype=bool)
    while True:
        idx = np.flatnonzero(active)
        if idx.shape[0] == 0:
            return counts
        mid = (lo[idx] + hi[idx]) // 2
        counts[idx] += 1
        got = labels[mid]
        w = words[idx]
        hit = got == w
        less = got < w
        more = ~hit & ~less
        lo[idx[less]] = mid[less] + 1
        hi[idx[more]] = mid[more] - 1
        still = ~hit
        still[less] &= lo[idx[less]] <= hi[idx[less]]
        still[more] &= lo[idx[more]] <= hi[idx[more]]
        active[idx] = still


@dataclass
class ExpansionRow:
    """One LM state's fully resolved expansion (the LM arc cache line).

    For every word id in the label space: the back-off chain level
    where the word's arc lives (-1 when it is absent from the whole
    chain), the arc's weight / destination / ordinal there, and the
    per-level search probe counts the scalar engine would spend — so a
    batch of resolves replays scalar costs and counters exactly.
    """

    chain: np.ndarray  # int64, the state's back-off chain
    chain_weights: np.ndarray  # float64, per-hop penalties
    found_level: np.ndarray  # int64[label_space]
    steps: np.ndarray  # int64[chain length, label_space]
    arc_weight: np.ndarray  # float64[label_space]
    arc_next: np.ndarray  # int64[label_space]
    arc_ordinal: np.ndarray  # int64[label_space]

    def __post_init__(self) -> None:
        # Native-Python mirrors for the small-batch sequential replay,
        # where per-item numpy scalar indexing would dominate the cost.
        # ``tolist`` round-trips float64 exactly, so replayed arithmetic
        # stays bit-identical to the array path.
        self.chain_py: list[int] = self.chain.tolist()
        self.chain_weights_py: list[float] = self.chain_weights.tolist()
        self.found_level_py: list[int] = self.found_level.tolist()
        self.steps_py: list[list[int]] = self.steps.tolist()
        self.arc_weight_py: list[float] = self.arc_weight.tolist()
        self.arc_next_py: list[int] = self.arc_next.tolist()
        self.arc_ordinal_py: list[int] = self.arc_ordinal.tolist()

    def size_bytes(self) -> int:
        return (
            self.chain.nbytes
            + self.chain_weights.nbytes
            + self.found_level.nbytes
            + self.steps.nbytes
            + self.arc_weight.nbytes
            + self.arc_next.nbytes
            + self.arc_ordinal.nbytes
        )


def expansion_row_bytes_bound(label_space: int, max_chain: int) -> int:
    """Worst-case bytes one :class:`ExpansionRow` can hold.

    Chain + per-hop weights, then found-level / per-level steps / the
    terminal arc columns over the label space — the number the sizing
    reports multiply by cache capacity to stay honest about the
    decode-time state the expansion cache adds.
    """
    return max_chain * 16 + label_space * 8 * (3 + max_chain) + label_space * 8


class LmExpansionCache:
    """Memoized per-LM-state expansion rows (the paper's LM arc cache).

    UNFOLD caches recently expanded LM arcs so repeated cross-word
    transitions out of the same LM state skip the arc search (Section
    3.3); this is the software analogue: an LRU-bounded map from LM
    state to its :class:`ExpansionRow`.  Rows derive from the immutable
    LM graph only, so eviction and reuse can never change results —
    just how much search work is re-spent, which the
    ``expansion_hits`` / ``expansion_misses`` / ``expansion_evictions``
    counters on :class:`LookupStats` report.
    """

    def __init__(
        self,
        word_arcs: LmWordArcs,
        strategy: "LookupStrategy",
        stats: LookupStats,
        capacity: int = 1024,
        row_source: dict[int, ExpansionRow] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._arcs = word_arcs
        self._strategy = strategy
        self.stats = stats
        self.capacity = capacity
        self._rows: OrderedDict[int, ExpansionRow] = OrderedDict()
        # Built rows are pure functions of the immutable LM graph, so
        # caches over the same graph (a lookup and its forks) can share
        # one build memo: residency — and with it every hit/miss/evict
        # counter — stays per-cache, only the construction cost is
        # shared.  Bounded by the number of LM states with word arcs.
        self._row_source = row_source if row_source is not None else {}
        self._words_iota = np.arange(word_arcs.label_space, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._rows.clear()

    def resident_states(self) -> list[int]:
        """Resident LM states, least recently used first."""
        return list(self._rows)

    def preload(self, states: list[int]) -> None:
        """Re-admit rows without touching any activity counter.

        Restores a checkpointed cache's residency and LRU order: rows
        are pure functions of the immutable graph (taken from the
        shared build memo or rebuilt), so the restored cache behaves —
        hit for hit, eviction for eviction — exactly like the one that
        was snapshotted.
        """
        rows = self._rows
        for state in states:
            row = rows.get(state)
            if row is not None:
                rows.move_to_end(state)
                continue
            row = self._row_source.get(state)
            if row is None:
                row = self._build_row(state)
                self._row_source[state] = row
            rows[state] = row
            while len(rows) > self.capacity:
                rows.popitem(last=False)

    def size_bytes(self) -> int:
        """Current storage held by resident rows."""
        return sum(row.size_bytes() for row in self._rows.values())

    def row_bytes_bound(self) -> int:
        """Worst-case bytes per row (deepest chain), for sizing reports."""
        return expansion_row_bytes_bound(
            self._arcs.label_space, self._arcs.max_chain
        )

    def rows_for(self, states: np.ndarray) -> list[ExpansionRow]:
        """The expansion row of each state, building/evicting as needed.

        Hit/miss accounting matches a sequential walk of ``states``:
        the first occurrence of an absent state misses (and builds),
        every other access hits.
        """
        rows = self._rows
        stats = self.stats
        out = []
        hits = 0
        misses = 0
        for state in states.tolist():
            row = rows.get(state)
            if row is None:
                misses += 1
                row = self._row_source.get(state)
                if row is None:
                    row = self._build_row(state)
                    self._row_source[state] = row
                rows[state] = row
                while len(rows) > self.capacity:
                    rows.popitem(last=False)
                    stats.expansion_evictions += 1
            else:
                hits += 1
                rows.move_to_end(state)
            out.append(row)
        stats.expansion_hits += hits
        stats.expansion_misses += misses
        return out

    def _build_row(self, state: int) -> ExpansionRow:
        arcs = self._arcs
        chain_lo = int(arcs.chain_offsets[state])
        chain_hi = int(arcs.chain_offsets[state + 1])
        chain = arcs.chain_states[chain_lo:chain_hi]
        chain_weights = arcs.chain_weights[chain_lo:chain_hi]
        space = arcs.label_space
        words = self._words_iota
        depth = chain.shape[0]
        found_level = np.full(space, -1, dtype=np.int64)
        steps = np.zeros((depth, space), dtype=np.int64)
        arc_weight = np.zeros(space, dtype=np.float64)
        arc_next = np.full(space, -1, dtype=np.int64)
        arc_ordinal = np.full(space, -1, dtype=np.int64)
        # Deepest level first, so shallower levels override: found_level
        # ends up the *first* level whose state carries the word's arc.
        for level in range(depth - 1, -1, -1):
            st = int(chain[level])
            lo = int(arcs.offsets[st])
            hi = int(arcs.offsets[st + 1])
            labels = arcs.ilabel[lo:hi]
            n = hi - lo
            pos = np.searchsorted(labels, words)
            present = np.zeros(space, dtype=bool)
            inb = pos < n
            present[inb] = labels[pos[inb]] == words[inb]
            found_level[present] = level
            ppos = pos[present]
            arc_weight[present] = arcs.weight[lo + ppos]
            arc_next[present] = arcs.nextstate[lo + ppos]
            arc_ordinal[present] = ppos
            if self._strategy is LookupStrategy.LINEAR:
                # The scan stops at the match, at the first larger
                # label, or at exhaustion — probing each arc it passes.
                steps[level] = np.where(inb, pos + 1, n)
            else:
                steps[level] = _binary_probe_counts(labels, words)
        return ExpansionRow(
            chain=chain,
            chain_weights=chain_weights,
            found_level=found_level,
            steps=steps,
            arc_weight=arc_weight,
            arc_next=arc_next,
            arc_ordinal=arc_ordinal,
        )


class LmLookup:
    """Locates LM arcs for cross-word transitions."""

    def __init__(
        self,
        graph: LmGraph,
        strategy: LookupStrategy = LookupStrategy.OFFSET_TABLE,
        offset_table_entries: int = 32 * 1024,
        sink: TraceSink | None = None,
        expansion_cache_states: int = 1024,
        word_arcs: LmWordArcs | None = None,
    ) -> None:
        self.graph = graph
        self.strategy = strategy
        self.sink = sink or NullSink()
        # Pure-functional runs skip per-event sink calls (same guard as
        # the decoders); traced runs keep the exact event order.
        self._tracing = not isinstance(self.sink, NullSink)
        self.stats = LookupStats()
        self.offset_table: OffsetLookupTable | None = None
        if strategy is LookupStrategy.OFFSET_TABLE:
            self.offset_table = OffsetLookupTable(offset_table_entries)
        # Per-state scalar views (word arcs with the back-off arc split
        # off).  The cell is shared with forks, so whichever lookup
        # builds the views first shares them with every sibling.  With
        # prebuilt ``word_arcs`` (a shared-memory attach, where walking
        # ``graph.fst`` is impossible) the views reconstruct lazily from
        # the CSR columns; otherwise they are built from the graph here,
        # as always.
        self._scalar_cell: list[tuple[list[list[Arc]], list[Arc | None]] | None]
        self._expansion_cache_states = expansion_cache_states
        self.expansion_cache: LmExpansionCache | None = None
        if word_arcs is not None:
            self._scalar_cell = [None]
            self._soa: LmWordArcs | None = word_arcs
        else:
            arc_views: list[list[Arc]] = []
            backoffs: list[Arc | None] = []
            for state in graph.fst.states():
                arcs = graph.fst.out_arcs(state)
                backoff = graph.backoff_arc(state)
                backoffs.append(backoff)
                arc_views.append(
                    arcs[:-1] if backoff is not None else list(arcs)
                )
            self._scalar_cell = [(arc_views, backoffs)]
            # Batched-resolve structures, built lazily on first use: the
            # CSR word-arc columns with flattened back-off chains, and
            # the LM expansion cache over them.
            self._soa = None
        # Shared expansion-row build memo (see LmExpansionCache); forks
        # reference the same dict so B lockstep channels build each hot
        # row once between them instead of once per channel.
        self._row_memo: dict[int, ExpansionRow] = {}
        # Below this many items a batch resolves by sequential replay
        # over the cached expansion rows: fixed array-op overhead beats
        # the per-item work until batches get fairly large.  Same
        # results and counters either way; tests pin it to force a path.
        self.batch_sequential_cutoff = 128

    def _scalar_views(self) -> tuple[list[list[Arc]], list[Arc | None]]:
        views = self._scalar_cell[0]
        if views is None:
            views = self._ensure_batch_structures().to_arc_lists()
            self._scalar_cell[0] = views
        return views

    @property
    def _word_arcs(self) -> list[list[Arc]]:
        """Per-state word-arc views (back-off arc excluded; it is last)."""
        return self._scalar_views()[0]

    @property
    def _backoff(self) -> list[Arc | None]:
        return self._scalar_views()[1]

    # -- single-state search ----------------------------------------------

    def find_arc(self, state: int, word_id: int) -> Arc | None:
        """The arc for ``word_id`` at ``state``, or None if backed off."""
        self.stats.lookups += 1
        if self.strategy is LookupStrategy.LINEAR:
            if self._tracing:
                self.sink.on_state_fetch(GraphSide.LM, state)
            return self._linear(state, word_id)
        if self.strategy is LookupStrategy.BINARY:
            if self._tracing:
                self.sink.on_state_fetch(GraphSide.LM, state)
            found = self._binary(state, word_id)
            return found[0] if found else None
        return self._with_offset_table(state, word_id)

    def _probe(self, state: int, ordinal: int) -> Arc:
        self.stats.arc_probes += 1
        if self._tracing:
            self.sink.on_arc_fetch(GraphSide.LM, state, ordinal)
        return self._word_arcs[state][ordinal]

    def _linear(self, state: int, word_id: int) -> Arc | None:
        for ordinal in range(len(self._word_arcs[state])):
            arc = self._probe(state, ordinal)
            if arc.ilabel == word_id:
                return arc
            if arc.ilabel > word_id:  # sorted: passed the slot
                return None
        return None

    def _binary(self, state: int, word_id: int) -> tuple[Arc, int] | None:
        arcs = self._word_arcs[state]
        lo, hi = 0, len(arcs) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            arc = self._probe(state, mid)
            if arc.ilabel == word_id:
                return arc, mid
            if arc.ilabel < word_id:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def _with_offset_table(self, state: int, word_id: int) -> Arc | None:
        table = self.offset_table
        assert table is not None
        cached = table.lookup(state, word_id)
        if cached is not None:
            arc = self._probe(state, cached)
            if arc.ilabel == word_id:  # tag aliasing check
                self.stats.olt_hits += 1
                if self._tracing:
                    self.sink.on_olt_access(state, word_id, True)
                return arc
        self.stats.olt_misses += 1
        if self._tracing:
            self.sink.on_olt_access(state, word_id, False)
            # Only a miss needs the state record (arc base + count) for
            # the binary search; an OLT hit goes straight to the arc.
            self.sink.on_state_fetch(GraphSide.LM, state)
        found = self._binary(state, word_id)
        if found is None:
            return None
        arc, ordinal = found
        table.insert(state, word_id, ordinal)
        return arc

    # -- full back-off resolution (Section 3.3) ----------------------------

    def resolve(
        self,
        state: int,
        word_id: int,
        entry_cost: float = 0.0,
        threshold: float = math.inf,
        preemptive: bool = False,
    ) -> ResolveResult:
        """Match ``word_id`` starting at ``state``, walking back-off arcs.

        Args:
            state: LM state to start from.
            word_id: Cross-word transition's word id.
            entry_cost: Hypothesis cost before LM rescoring (used by the
                preemptive pruning check).
            threshold: Current frame pruning threshold.
            preemptive: Enable Section 3.3's early abort: once the
                accumulated cost (monotonically increasing) exceeds the
                threshold, the hypothesis is discarded without finishing
                the walk.
        """
        accumulated = entry_cost
        levels = 0
        current = state
        while True:
            arc = self.find_arc(current, word_id)
            if arc is not None:
                return ResolveResult(
                    weight=(accumulated - entry_cost) + arc.weight,
                    next_state=arc.nextstate,
                    backoff_levels=levels,
                )
            backoff = self._backoff[current]
            if backoff is None:
                raise LookupError(
                    f"word {word_id} not found at the unigram state; the LM "
                    "must keep all unigrams (Section 3.3 guarantee)"
                )
            self.stats.arc_probes += 1
            if self._tracing:
                self.sink.on_arc_fetch(
                    GraphSide.LM, current, len(self._word_arcs[current])
                )
            self.stats.backoff_arcs_taken += 1
            accumulated += backoff.weight
            levels += 1
            if preemptive and accumulated > threshold:
                self.stats.preemptive_prunes += 1
                return ResolveResult(
                    weight=accumulated - entry_cost,
                    next_state=backoff.nextstate,
                    pruned=True,
                    backoff_levels=levels,
                )
            current = backoff.nextstate

    # -- batched resolution (the vectorized epsilon engine) -----------------

    def _ensure_batch_structures(self) -> LmWordArcs:
        if self._soa is None:
            self._soa = LmWordArcs.from_graph(self.graph)
        if self.expansion_cache is None:
            self.expansion_cache = LmExpansionCache(
                self._soa,
                self.strategy,
                self.stats,
                capacity=self._expansion_cache_states,
                row_source=self._row_memo,
            )
        return self._soa

    @property
    def batch_supported(self) -> bool:
        """Whether :meth:`resolve_batch` preserves scalar semantics here.

        Requires non-negative LM costs (so a frame's pruning threshold
        cannot move mid-phase) and no trace sink (batched work has no
        per-event order to report).
        """
        return self._ensure_batch_structures().nonneg_weights and not self._tracing

    def reset_transient_state(self) -> None:
        """Cold-start the per-decode caches (OLT + expansion rows).

        Neither affects results — only which work is re-spent — but
        clearing both keeps every activity counter independent of how
        utterances were batched (the pool's determinism contract).
        """
        if self.offset_table is not None:
            self.offset_table.invalidate()
        if self.expansion_cache is not None:
            self.expansion_cache.clear()

    def export_transient_state(self) -> dict:
        """Checkpoint of the lookup's mutable state.

        Captures everything a restored session needs to keep evolving
        exactly as the original would have: the activity counters, the
        Offset Lookup Table's live entries, and the expansion cache's
        residency (in LRU order).  The graph-derived structures are
        immutable and shared, so they stay out of the snapshot — that
        is the paper's small-per-channel-state argument doing the work.
        """
        return {
            "strategy": self.strategy.value,
            "stats": self.stats.clone(),
            "offset_table": (
                self.offset_table.export_state()
                if self.offset_table is not None
                else None
            ),
            "expansion_states": (
                self.expansion_cache.resident_states()
                if self.expansion_cache is not None
                else []
            ),
        }

    def load_transient_state(self, state: dict) -> None:
        """Restore a checkpoint taken by :meth:`export_transient_state`."""
        if state["strategy"] != self.strategy.value:
            raise ValueError(
                f"lookup strategy mismatch: snapshot is "
                f"{state['strategy']!r}, lookup is {self.strategy.value!r}"
            )
        self.stats.assign(state["stats"])
        if state["offset_table"] is not None:
            if self.offset_table is None:
                raise ValueError(
                    "snapshot carries an offset table but this lookup "
                    "has none"
                )
            self.offset_table.load_state(state["offset_table"])
        elif self.offset_table is not None:
            self.offset_table.invalidate()
        if state["expansion_states"]:
            if self.expansion_cache is None:
                self._ensure_batch_structures()
            self.expansion_cache.clear()
            self.expansion_cache.preload(state["expansion_states"])
        elif self.expansion_cache is not None:
            self.expansion_cache.clear()

    def fork(self) -> "LmLookup":
        """A cold clone sharing the immutable graph structures.

        The clone shares everything derived from the graph — per-state
        arc views, back-off arcs, the CSR word-arc columns — but owns
        fresh *transient* state: zeroed :class:`LookupStats`, an empty
        Offset Lookup Table of the same geometry, and an empty LM
        expansion cache.  A fork therefore behaves exactly like the
        parent lookup immediately after ``reset_transient_state()``,
        which is what gives each utterance of a lockstep batch (and
        each serve session) the same cache evolution — hence identical
        counters — as a solo cold decode.  Forks never trace: batched
        work has no per-event order to report, and the batched engines
        are gated off under a real sink anyway.
        """
        clone = object.__new__(LmLookup)
        clone.graph = self.graph
        clone.strategy = self.strategy
        clone.sink = NullSink()
        clone._tracing = False
        clone.stats = LookupStats()
        clone.offset_table = None
        if self.strategy is LookupStrategy.OFFSET_TABLE:
            entries = (
                self.offset_table.num_entries
                if self.offset_table is not None
                else 32 * 1024
            )
            clone.offset_table = OffsetLookupTable(entries)
        clone._scalar_cell = self._scalar_cell
        clone._expansion_cache_states = self._expansion_cache_states
        clone._soa = self._ensure_batch_structures()
        clone._row_memo = self._row_memo
        clone.expansion_cache = LmExpansionCache(
            clone._soa,
            clone.strategy,
            clone.stats,
            capacity=clone._expansion_cache_states,
            row_source=clone._row_memo,
        )
        clone.batch_sequential_cutoff = self.batch_sequential_cutoff
        return clone

    def resolve_batch(
        self,
        states: np.ndarray,
        words: np.ndarray,
        entry_costs: np.ndarray,
        threshold: float = math.inf,
        preemptive: bool = False,
    ) -> BatchResolveResult:
        """Vectorized :meth:`resolve` over a batch of (state, word) items.

        Equivalent to calling ``resolve`` item by item in array order —
        bit-identical weights (the back-off accumulator is replayed
        level by level in the scalar addition order) and identical
        ``LookupStats`` counters, including the Offset Lookup Table's
        hit/miss/probe accounting and its final contents.  The items
        must not be interleaved with scalar resolves that the batch
        order would not reproduce.
        """
        if self._tracing:
            raise RuntimeError(
                "resolve_batch has no per-event order; use resolve when tracing"
            )
        n = int(states.shape[0])
        arcs = self._ensure_batch_structures()
        cache = self.expansion_cache
        assert cache is not None
        rows = cache.rows_for(states)
        if n <= self.batch_sequential_cutoff:
            return self._resolve_batch_replay(
                rows, words, entry_costs, threshold, preemptive,
                arcs.label_space,
            )
        if np.any(words >= arcs.label_space) or np.any(words < 0):
            raise ValueError("word id outside the LM label space")
        return self._resolve_batch_vectorized(
            rows, words, entry_costs, threshold, preemptive
        )

    def _resolve_batch_replay(
        self,
        rows: list[ExpansionRow],
        words: np.ndarray,
        entry_costs: np.ndarray,
        threshold: float,
        preemptive: bool,
        label_space: int,
    ) -> BatchResolveResult:
        """Sequential replay of the batch over cached expansion rows.

        Literally the scalar ``resolve`` walk, item by item, except
        every arc search collapses to O(1) reads of the item's
        :class:`ExpansionRow` — so equality with the scalar engine
        (weights, counters, OLT evolution) holds by construction.
        Stats land on completion; like the vectorized engine, every
        item is accounted before an exhausted item raises.
        """
        stats = self.stats
        n = words.shape[0]
        word_list = words.tolist()
        entry_list = entry_costs.tolist()
        out_weight = [0.0] * n
        out_next = [-1] * n
        out_pruned = [False] * n
        out_levels = [0] * n
        exhausted_word = -1
        table = self.offset_table
        use_olt = self.strategy is LookupStrategy.OFFSET_TABLE
        if use_olt:
            assert table is not None
            slot_mask = table._mask
            tag_mask = (1 << OffsetLookupTable.TAG_BITS) - 1
            generation = table._generation
            valid = table._valid
            tags = table._tags
            ordinals = table._offsets
        lookups = probes = backoffs = prunes = hits = misses = 0
        for i in range(n):
            word = word_list[i]
            if word < 0 or word >= label_space:
                raise ValueError("word id outside the LM label space")
            row = rows[i]
            chain = row.chain_py
            chain_w = row.chain_weights_py
            steps = row.steps_py
            fl = row.found_level_py[word]
            entry = entry_list[i]
            accumulated = entry
            depth = len(chain)
            level = 0
            while True:
                if level > 0:
                    if level >= depth:
                        if exhausted_word < 0:
                            exhausted_word = word
                        break
                    probes += 1
                    backoffs += 1
                    accumulated += chain_w[level]
                    if preemptive and accumulated > threshold:
                        prunes += 1
                        out_weight[i] = accumulated - entry
                        out_next[i] = chain[level]
                        out_pruned[i] = True
                        out_levels[i] = level
                        break
                lookups += 1
                found_here = fl == level
                if use_olt:
                    state_l = chain[level]
                    index = (state_l ^ word) & slot_mask
                    if valid[index] == generation:
                        tag = (
                            (state_l * 0x9E3779B1) ^ (word * 0x85EBCA77)
                        ) & tag_mask
                        if tags[index] == tag:
                            # Cached entry: one validation probe on the
                            # fetched arc, a hit iff it is the word's.
                            probes += 1
                            if (
                                found_here
                                and ordinals[index]
                                == row.arc_ordinal_py[word]
                            ):
                                hits += 1
                                out_weight[i] = (
                                    accumulated - entry
                                ) + row.arc_weight_py[word]
                                out_next[i] = row.arc_next_py[word]
                                out_levels[i] = level
                                break
                        misses += 1
                        probes += steps[level][word]
                        if found_here:
                            valid[index] = generation
                            tags[index] = tag
                            ordinals[index] = row.arc_ordinal_py[word]
                    else:
                        misses += 1
                        probes += steps[level][word]
                        if found_here:
                            valid[index] = generation
                            tags[index] = (
                                (state_l * 0x9E3779B1) ^ (word * 0x85EBCA77)
                            ) & tag_mask
                            ordinals[index] = row.arc_ordinal_py[word]
                else:
                    probes += steps[level][word]
                if found_here:
                    out_weight[i] = (accumulated - entry) + row.arc_weight_py[
                        word
                    ]
                    out_next[i] = row.arc_next_py[word]
                    out_levels[i] = level
                    break
                level += 1
        stats.lookups += lookups
        stats.arc_probes += probes
        stats.backoff_arcs_taken += backoffs
        stats.preemptive_prunes += prunes
        stats.olt_hits += hits
        stats.olt_misses += misses
        if exhausted_word >= 0:
            raise LookupError(
                f"word {exhausted_word} not found at the unigram state; "
                "the LM must keep all unigrams (Section 3.3 guarantee)"
            )
        return BatchResolveResult(
            weight=np.array(out_weight, dtype=np.float64),
            next_state=np.array(out_next, dtype=np.int64),
            pruned=np.array(out_pruned, dtype=bool),
            backoff_levels=np.array(out_levels, dtype=np.int64),
        )

    def _resolve_batch_vectorized(
        self,
        rows: list[ExpansionRow],
        words: np.ndarray,
        entry_costs: np.ndarray,
        threshold: float,
        preemptive: bool,
    ) -> BatchResolveResult:
        """Level-major vectorized engine for large batches."""
        stats = self.stats
        n = int(words.shape[0])
        word_list = words.tolist()

        max_levels = 0
        for row in rows:
            depth = row.chain.shape[0]
            if depth > max_levels:
                max_levels = depth
        # Per-item views of the rows, padded to the deepest chain.
        chain_len = np.empty(n, dtype=np.int64)
        found_level = np.empty(n, dtype=np.int64)
        term_weight = np.empty(n, dtype=np.float64)
        term_next = np.empty(n, dtype=np.int64)
        term_ordinal = np.empty(n, dtype=np.int64)
        chain_state_mat = np.full((max_levels, n), -1, dtype=np.int64)
        chain_weight_mat = np.zeros((max_levels, n), dtype=np.float64)
        steps_mat = np.zeros((max_levels, n), dtype=np.int64)
        for i, (row, word) in enumerate(zip(rows, word_list)):
            depth = row.chain.shape[0]
            chain_len[i] = depth
            found_level[i] = row.found_level[word]
            term_weight[i] = row.arc_weight[word]
            term_next[i] = row.arc_next[word]
            term_ordinal[i] = row.arc_ordinal[word]
            chain_state_mat[:depth, i] = row.chain
            chain_weight_mat[:depth, i] = row.chain_weights
            steps_mat[:depth, i] = row.steps[:, word]

        accumulated = entry_costs.astype(np.float64, copy=True)
        out_weight = np.zeros(n, dtype=np.float64)
        out_next = np.full(n, -1, dtype=np.int64)
        out_pruned = np.zeros(n, dtype=bool)
        out_levels = np.zeros(n, dtype=np.int64)
        searched = np.zeros((max_levels, n), dtype=bool)
        exhausted = np.zeros(n, dtype=bool)
        alive = np.ones(n, dtype=bool)
        for level in range(max_levels):
            if level > 0:
                # Items that missed at the previous level take one
                # back-off arc (a probe), pay its penalty, then face
                # the preemptive check — in exactly that scalar order.
                dead_end = alive & (chain_len <= level)
                if np.any(dead_end):
                    exhausted |= dead_end
                    alive &= ~dead_end
                taking = int(np.count_nonzero(alive))
                if taking == 0:
                    break
                stats.arc_probes += taking
                stats.backoff_arcs_taken += taking
                accumulated[alive] = (
                    accumulated[alive] + chain_weight_mat[level, alive]
                )
                if preemptive:
                    pruned_now = alive & (accumulated > threshold)
                    count = int(np.count_nonzero(pruned_now))
                    if count:
                        stats.preemptive_prunes += count
                        out_weight[pruned_now] = (
                            accumulated[pruned_now] - entry_costs[pruned_now]
                        )
                        out_next[pruned_now] = chain_state_mat[level, pruned_now]
                        out_pruned[pruned_now] = True
                        out_levels[pruned_now] = level
                        alive &= ~pruned_now
            searching = int(np.count_nonzero(alive))
            if searching == 0:
                break
            stats.lookups += searching
            searched[level] = alive
            found = alive & (found_level == level)
            if np.any(found):
                out_weight[found] = (
                    accumulated[found] - entry_costs[found]
                ) + term_weight[found]
                out_next[found] = term_next[found]
                out_levels[found] = level
                alive &= ~found
        exhausted |= alive  # missed at the deepest level, no back-off left

        if self.strategy is LookupStrategy.OFFSET_TABLE:
            self._replay_offset_table(
                words, searched, found_level, term_ordinal, chain_state_mat,
                steps_mat,
            )
        else:
            stats.arc_probes += int(steps_mat[searched].sum())

        if np.any(exhausted):
            word = int(words[int(np.flatnonzero(exhausted)[0])])
            raise LookupError(
                f"word {word} not found at the unigram state; the LM "
                "must keep all unigrams (Section 3.3 guarantee)"
            )
        return BatchResolveResult(
            weight=out_weight,
            next_state=out_next,
            pruned=out_pruned,
            backoff_levels=out_levels,
        )

    def _replay_offset_table(
        self,
        words: np.ndarray,
        searched: np.ndarray,
        found_level: np.ndarray,
        term_ordinal: np.ndarray,
        chain_state_mat: np.ndarray,
        steps_mat: np.ndarray,
    ) -> None:
        """Replay the batch's OLT accesses exactly, in scalar order.

        The access stream is item-major (each item walks its whole
        chain before the next item starts).  An access's outcome
        depends only on its slot's entry at access time; entries change
        only when a *found-level* access misses and inserts — and after
        any found-level access, hit or miss, the slot provably holds
        exactly that (tag, ordinal) pair.  So each access's view of its
        slot is: the nearest preceding found-level access in its slot
        group if any, else the live table entry — a segmented
        forward-fill, no sequential walk needed.
        """
        table = self.offset_table
        assert table is not None
        stats = self.stats
        # (item, level) pairs in stream order.
        pairs = np.argwhere(searched.T)
        if pairs.shape[0] == 0:
            return
        item = pairs[:, 0]
        level = pairs[:, 1]
        a_state = chain_state_mat[level, item]
        a_word = words[item]
        a_found = found_level[item] == level
        a_ordinal = term_ordinal[item]  # meaningful on found accesses
        a_steps = steps_mat[level, item]
        a_slot = (a_state ^ a_word) & table._mask
        tag_mask = (1 << OffsetLookupTable.TAG_BITS) - 1
        a_tag = ((a_state * 0x9E3779B1) ^ (a_word * 0x85EBCA77)) & tag_mask

        # Group accesses by slot, keeping stream order within groups.
        order = np.argsort(a_slot, kind="stable")
        total = order.shape[0]
        slot_sorted = a_slot[order]
        tag_sorted = a_tag[order]
        ordinal_sorted = a_ordinal[order]
        found_sorted = a_found[order]
        steps_sorted = a_steps[order]
        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        np.not_equal(slot_sorted[1:], slot_sorted[:-1], out=new_group[1:])
        group_index = np.cumsum(new_group) - 1
        # Segmented forward-fill: index of the latest found-level access
        # at-or-before each position within its slot group (-1 if none),
        # via the banded running-max trick (bands are disjoint because
        # every candidate is >= -1 and < total).
        candidate = np.where(found_sorted, np.arange(total), -1)
        band = candidate + group_index * np.int64(total + 1)
        run_incl = np.maximum.accumulate(band) - group_index * np.int64(total + 1)
        prev_found = np.empty(total, dtype=np.int64)
        prev_found[0] = -1
        prev_found[1:] = np.where(new_group[1:], -1, run_incl[:-1])

        # Entry seen by each access: predecessor's pair, else live table.
        has_prev = prev_found >= 0
        prev_clipped = np.maximum(prev_found, 0)
        entry_valid = np.where(
            has_prev, True, table._valid[slot_sorted] == table._generation
        )
        entry_tag = np.where(
            has_prev, tag_sorted[prev_clipped], table._tags[slot_sorted]
        )
        entry_ordinal = np.where(
            has_prev, ordinal_sorted[prev_clipped], table._offsets[slot_sorted]
        )

        cached = entry_valid & (entry_tag == tag_sorted)
        hit = found_sorted & cached & (entry_ordinal == ordinal_sorted)
        # A live cached entry that fails validation costs one probe
        # before the binary search.  (The scalar path would fault on an
        # aliased ordinal past the state's arc count; the batch treats
        # it as the failed validation probe it models.)
        stale = cached & ~hit
        misses = ~hit
        stats.olt_hits += int(np.count_nonzero(hit))
        stats.olt_misses += int(np.count_nonzero(misses))
        stats.arc_probes += int(
            np.count_nonzero(hit)
            + np.count_nonzero(stale)
            + steps_sorted[misses].sum()
        )

        # Final table contents: the last found-level access of each slot
        # leaves exactly its own (tag, ordinal) pair, whether it hit
        # (idempotent) or missed (inserted).
        group_last = np.empty(total, dtype=bool)
        group_last[-1] = True
        group_last[:-1] = new_group[1:]
        final_found = run_incl[group_last]
        writes = final_found >= 0
        write_pos = final_found[writes]
        write_slot = slot_sorted[group_last][writes]
        table._valid[write_slot] = table._generation
        table._tags[write_slot] = tag_sorted[write_pos]
        table._offsets[write_slot] = ordinal_sorted[write_pos]
