"""On-the-fly LM arc lookup — the heart of UNFOLD (Sections 3.1-3.3).

When the Viterbi search crosses a word boundary in the AM graph, it must
locate the LM arc whose input label matches the word id among the
thousands of outgoing arcs of the current LM state.  The paper measures
three strategies:

* **linear** scan: ~10x slowdown over a fully-composed decoder;
* **binary** search over word-id-sorted arcs: ~3x slowdown;
* binary search + the **Offset Lookup Table** — a direct-mapped cache of
  recent ``(LM state, word id) -> arc offset`` results — plus preemptive
  back-off pruning: ~18% slowdown.

This module implements all three, with exact probe accounting (every
probe is an LM arc fetch, reported to the trace sink), the OLT model
(XOR-indexed, tagged, Section 3.5), and the back-off walk with the
preemptive pruning check of Section 3.3.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.trace import GraphSide, NullSink, TraceSink
from repro.lm.graph import LmGraph
from repro.wfst.fst import Arc


class LookupStrategy(enum.Enum):
    LINEAR = "linear"
    BINARY = "binary"
    OFFSET_TABLE = "offset_table"


@dataclass
class LookupStats:
    """Activity counters for the LM lookup engine."""

    lookups: int = 0
    arc_probes: int = 0  # LM arc records touched while searching
    olt_hits: int = 0
    olt_misses: int = 0
    backoff_arcs_taken: int = 0
    preemptive_prunes: int = 0

    @property
    def olt_hit_ratio(self) -> float:
        total = self.olt_hits + self.olt_misses
        return self.olt_hits / total if total else 0.0

    @property
    def avg_probes_per_lookup(self) -> float:
        return self.arc_probes / self.lookups if self.lookups else 0.0


class OffsetLookupTable:
    """Direct-mapped cache of recent LM arc-offset search results.

    Indexed by ``(state XOR word) mod entries`` with a 24-bit tag, as in
    Section 3.5.  Each entry stores the arc *ordinal* within its state
    (the paper's 23-bit arc offset).  Tag aliasing is modelled: two
    different (state, word) pairs can collide on both index and tag, in
    which case the table returns a wrong offset and the caller must
    validate the fetched arc — exactly what hardware would do.
    """

    TAG_BITS = 24

    def __init__(self, num_entries: int = 32 * 1024) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ValueError("num_entries must be a positive power of two")
        self.num_entries = num_entries
        self._mask = num_entries - 1
        # Validity is a generation stamp: an entry is live when its
        # stamp matches the current generation, so invalidation is a
        # counter bump instead of reallocating the arrays.
        self._generation = 1
        self._valid = [0] * num_entries
        self._tags = [0] * num_entries
        self._offsets = [0] * num_entries

    def _slot(self, state: int, word: int) -> tuple[int, int]:
        index = (state ^ word) & self._mask
        tag = ((state * 0x9E3779B1) ^ (word * 0x85EBCA77)) & (
            (1 << self.TAG_BITS) - 1
        )
        return index, tag

    def lookup(self, state: int, word: int) -> int | None:
        """Cached arc ordinal, or None on miss."""
        index, tag = self._slot(state, word)
        if self._valid[index] == self._generation and self._tags[index] == tag:
            return self._offsets[index]
        return None

    def insert(self, state: int, word: int, ordinal: int) -> None:
        index, tag = self._slot(state, word)
        self._valid[index] = self._generation
        self._tags[index] = tag
        self._offsets[index] = ordinal

    def invalidate(self) -> None:
        """Drop every entry in O(1): stale stamps can no longer match."""
        self._generation += 1

    @property
    def size_bytes(self) -> int:
        """Storage: valid bit + 24-bit tag + 23-bit offset per entry."""
        return self.num_entries * 6


@dataclass
class ResolveResult:
    """Outcome of matching a word at an LM state, with back-off."""

    weight: float  # total LM cost (back-off penalties + arc weight)
    next_state: int
    pruned: bool = False  # stopped early by preemptive pruning
    backoff_levels: int = 0


class LmLookup:
    """Locates LM arcs for cross-word transitions."""

    def __init__(
        self,
        graph: LmGraph,
        strategy: LookupStrategy = LookupStrategy.OFFSET_TABLE,
        offset_table_entries: int = 32 * 1024,
        sink: TraceSink | None = None,
    ) -> None:
        self.graph = graph
        self.strategy = strategy
        self.sink = sink or NullSink()
        # Pure-functional runs skip per-event sink calls (same guard as
        # the decoders); traced runs keep the exact event order.
        self._tracing = not isinstance(self.sink, NullSink)
        self.stats = LookupStats()
        self.offset_table: OffsetLookupTable | None = None
        if strategy is LookupStrategy.OFFSET_TABLE:
            self.offset_table = OffsetLookupTable(offset_table_entries)
        # Per-state word-arc views (back-off arc excluded; it is last).
        self._word_arcs: list[list[Arc]] = []
        self._backoff: list[Arc | None] = []
        for state in graph.fst.states():
            arcs = graph.fst.out_arcs(state)
            backoff = graph.backoff_arc(state)
            self._backoff.append(backoff)
            self._word_arcs.append(arcs[:-1] if backoff is not None else list(arcs))

    # -- single-state search ----------------------------------------------

    def find_arc(self, state: int, word_id: int) -> Arc | None:
        """The arc for ``word_id`` at ``state``, or None if backed off."""
        self.stats.lookups += 1
        if self.strategy is LookupStrategy.LINEAR:
            if self._tracing:
                self.sink.on_state_fetch(GraphSide.LM, state)
            return self._linear(state, word_id)
        if self.strategy is LookupStrategy.BINARY:
            if self._tracing:
                self.sink.on_state_fetch(GraphSide.LM, state)
            found = self._binary(state, word_id)
            return found[0] if found else None
        return self._with_offset_table(state, word_id)

    def _probe(self, state: int, ordinal: int) -> Arc:
        self.stats.arc_probes += 1
        if self._tracing:
            self.sink.on_arc_fetch(GraphSide.LM, state, ordinal)
        return self._word_arcs[state][ordinal]

    def _linear(self, state: int, word_id: int) -> Arc | None:
        for ordinal in range(len(self._word_arcs[state])):
            arc = self._probe(state, ordinal)
            if arc.ilabel == word_id:
                return arc
            if arc.ilabel > word_id:  # sorted: passed the slot
                return None
        return None

    def _binary(self, state: int, word_id: int) -> tuple[Arc, int] | None:
        arcs = self._word_arcs[state]
        lo, hi = 0, len(arcs) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            arc = self._probe(state, mid)
            if arc.ilabel == word_id:
                return arc, mid
            if arc.ilabel < word_id:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def _with_offset_table(self, state: int, word_id: int) -> Arc | None:
        table = self.offset_table
        assert table is not None
        cached = table.lookup(state, word_id)
        if cached is not None:
            arc = self._probe(state, cached)
            if arc.ilabel == word_id:  # tag aliasing check
                self.stats.olt_hits += 1
                if self._tracing:
                    self.sink.on_olt_access(state, word_id, True)
                return arc
        self.stats.olt_misses += 1
        if self._tracing:
            self.sink.on_olt_access(state, word_id, False)
            # Only a miss needs the state record (arc base + count) for
            # the binary search; an OLT hit goes straight to the arc.
            self.sink.on_state_fetch(GraphSide.LM, state)
        found = self._binary(state, word_id)
        if found is None:
            return None
        arc, ordinal = found
        table.insert(state, word_id, ordinal)
        return arc

    # -- full back-off resolution (Section 3.3) ----------------------------

    def resolve(
        self,
        state: int,
        word_id: int,
        entry_cost: float = 0.0,
        threshold: float = math.inf,
        preemptive: bool = False,
    ) -> ResolveResult:
        """Match ``word_id`` starting at ``state``, walking back-off arcs.

        Args:
            state: LM state to start from.
            word_id: Cross-word transition's word id.
            entry_cost: Hypothesis cost before LM rescoring (used by the
                preemptive pruning check).
            threshold: Current frame pruning threshold.
            preemptive: Enable Section 3.3's early abort: once the
                accumulated cost (monotonically increasing) exceeds the
                threshold, the hypothesis is discarded without finishing
                the walk.
        """
        accumulated = entry_cost
        levels = 0
        current = state
        while True:
            arc = self.find_arc(current, word_id)
            if arc is not None:
                return ResolveResult(
                    weight=(accumulated - entry_cost) + arc.weight,
                    next_state=arc.nextstate,
                    backoff_levels=levels,
                )
            backoff = self._backoff[current]
            if backoff is None:
                raise LookupError(
                    f"word {word_id} not found at the unigram state; the LM "
                    "must keep all unigrams (Section 3.3 guarantee)"
                )
            self.stats.arc_probes += 1
            if self._tracing:
                self.sink.on_arc_fetch(
                    GraphSide.LM, current, len(self._word_arcs[current])
                )
            self.stats.backoff_arcs_taken += 1
            accumulated += backoff.weight
            levels += 1
            if preemptive and accumulated > threshold:
                self.stats.preemptive_prunes += 1
                return ResolveResult(
                    weight=accumulated - entry_cost,
                    next_state=backoff.nextstate,
                    pruned=True,
                    backoff_levels=levels,
                )
            current = backoff.nextstate
