"""Fully-composed baseline Viterbi decoder (Reza et al. [34]).

The same frame-synchronous beam search as the on-the-fly decoder, but
over the single offline-composed WFST: one state id per token, one arc
fetch per expansion, no LM lookups, no back-off walks at decode time —
and, correspondingly, the gigabyte-scale dataset the paper is built to
eliminate.

Runs over a :class:`~repro.core.virtual.VirtualComposedGraph`, which is
path-identical to the materialized composition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.beam import BeamConfig
from repro.core.decoder import DecodeResult, DecoderConfig, DecoderStats
from repro.core.lattice import COMPACT_RECORD_BYTES, RAW_RECORD_BYTES, WordLattice
from repro.core.trace import GraphSide, NullSink, TraceSink
from repro.core.virtual import VirtualComposedGraph
from repro.wfst.fst import EPSILON


@dataclass(slots=True)
class _Token:
    state: int
    cost: float
    lattice_node: int


@dataclass
class _Table:
    tokens: dict[int, _Token] = field(default_factory=dict)
    best_cost: float = math.inf
    inserts: int = 0
    recombinations: int = 0

    def insert(self, state: int, cost: float, lattice_node: int) -> bool:
        existing = self.tokens.get(state)
        if existing is None:
            self.tokens[state] = _Token(state, cost, lattice_node)
            self.inserts += 1
        elif cost < existing.cost:
            existing.cost = cost
            existing.lattice_node = lattice_node
        else:
            self.recombinations += 1
            return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True


class FullyComposedDecoder:
    """Beam search over the offline-composed graph."""

    def __init__(
        self,
        graph: VirtualComposedGraph,
        config: DecoderConfig | None = None,
        sink: TraceSink | None = None,
        compact_lattice: bool = False,
    ) -> None:
        self.graph = graph
        self.config = config or DecoderConfig()
        self.sink = sink or NullSink()
        self._tracing = not isinstance(self.sink, NullSink)
        # The MICRO-49 baseline predates the compact lattice format.
        self._lattice_record = (
            COMPACT_RECORD_BYTES if compact_lattice else RAW_RECORD_BYTES
        )

    def decode(self, scores: np.ndarray) -> DecodeResult:
        if scores.ndim != 2 or scores.shape[1] < self.graph.am.num_senones:
            raise ValueError(
                f"score matrix shape {scores.shape} incompatible with "
                f"{self.graph.am.num_senones} senones"
            )
        config = self.config
        beam = BeamConfig(beam=config.beam, max_active=config.max_active)
        stats = DecoderStats()
        lattice = WordLattice()
        sink = self.sink
        graph = self.graph

        current = _Table()
        current.insert(graph.start, 0.0, -1)

        num_frames = scores.shape[0]
        tracing = self._tracing
        scale = config.acoustic_scale
        for frame in range(num_frames):
            survivors, pruned = self._prune(current, beam)
            stats.beam_pruned += pruned
            frame_scores = scores[frame].tolist()
            next_table = _Table()
            insert = next_table.insert
            frame_expansions = 0
            for token in survivors:
                state = token.state
                token_cost = token.cost
                lattice_node = token.lattice_node
                if tracing:
                    sink.on_state_fetch(GraphSide.COMPOSED, state)
                    am_state, lm_state = graph.decode_state(state)
                    sink.on_token_hash_access(am_state, lm_state)
                for arc in graph.out_arcs(state):
                    if arc.ilabel == EPSILON:
                        continue
                    if tracing:
                        sink.on_arc_fetch(GraphSide.COMPOSED, state, arc.ordinal)
                    frame_expansions += 1
                    cost = (
                        token_cost
                        + arc.weight
                        - scale * frame_scores[arc.ilabel - 1]
                    )
                    insert(arc.nextstate, cost, lattice_node)
            stats.am_state_fetches += len(survivors)
            stats.am_arc_fetches += frame_expansions
            stats.expansions += frame_expansions
            self._epsilon_phase(next_table, frame, lattice, stats, beam)
            stats.tokens_created += next_table.inserts
            stats.tokens_recombined += next_table.recombinations
            stats.active_history.append(len(next_table.tokens))
            sink.on_frame_end(frame, len(next_table.tokens))
            current = next_table
        stats.frames = num_frames
        return self._finalize(current, lattice, stats)

    def _prune(self, table: _Table, beam: BeamConfig) -> tuple[list[_Token], int]:
        total = len(table.tokens)
        if total == 0:
            return [], 0
        threshold = table.best_cost + beam.beam
        survivors = [t for t in table.tokens.values() if t.cost <= threshold]
        if beam.max_active and len(survivors) > beam.max_active:
            import heapq

            survivors = heapq.nsmallest(
                beam.max_active, survivors, key=lambda t: t.cost
            )
        return survivors, total - len(survivors)

    def _epsilon_phase(
        self,
        table: _Table,
        frame: int,
        lattice: WordLattice,
        stats: DecoderStats,
        beam: BeamConfig,
    ) -> None:
        graph = self.graph
        sink = self.sink
        worklist = [
            t
            for t in list(table.tokens.values())
            if any(a.ilabel == EPSILON for a in graph.out_arcs(t.state))
        ]
        while worklist:
            token = worklist.pop()
            threshold = table.best_cost + beam.beam
            if token.cost > threshold:
                stats.beam_pruned += 1
                continue
            for arc in graph.out_arcs(token.state):
                if arc.ilabel != EPSILON:
                    continue
                sink.on_arc_fetch(GraphSide.COMPOSED, token.state, arc.ordinal)
                stats.am_arc_fetches += 1
                stats.expansions += 1
                cost = token.cost + arc.weight
                node = token.lattice_node
                if arc.olabel != EPSILON:
                    node = lattice.add(arc.olabel, frame, cost, token.lattice_node)
                    sink.on_token_write(self._lattice_record)
                    stats.token_writes += 1
                    stats.words_emitted += 1
                inserted = table.insert(arc.nextstate, cost, node)
                if inserted and any(
                    a.ilabel == EPSILON for a in graph.out_arcs(arc.nextstate)
                ):
                    worklist.append(table.tokens[arc.nextstate])

    def _finalize(
        self, table: _Table, lattice: WordLattice, stats: DecoderStats
    ) -> DecodeResult:
        best_cost = math.inf
        best_node = -1
        for token in table.tokens.values():
            if not self.graph.is_final(token.state):
                continue
            total = token.cost + self.graph.final_weight(token.state)
            if total < best_cost:
                best_cost = total
                best_node = token.lattice_node
        word_ids = lattice.backtrace(best_node) if best_node >= 0 else []
        if math.isinf(best_cost):
            word_ids = []
        words = [self.graph.lm.words.symbol_of(w) for w in word_ids]
        return DecodeResult(
            word_ids=word_ids,
            words=words,
            cost=best_cost,
            stats=stats,
            lattice=lattice,
        )
