"""Fully-composed baseline Viterbi decoder (Reza et al. [34]).

The same frame-synchronous beam search as the on-the-fly decoder, but
over the single offline-composed WFST: one state id per token, one arc
fetch per expansion, no LM lookups, no back-off walks at decode time —
and, correspondingly, the gigabyte-scale dataset the paper is built to
eliminate.

Runs over a :class:`~repro.core.virtual.VirtualComposedGraph`, which is
path-identical to the materialized composition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.arcs import EmittingArcs, EpsilonArcs, plan_recombination
from repro.core.beam import BeamConfig
from repro.core.decoder import DecodeResult, DecoderConfig, DecoderStats
from repro.core.lattice import COMPACT_RECORD_BYTES, RAW_RECORD_BYTES, WordLattice
from repro.core.trace import GraphSide, NullSink, TraceSink
from repro.core.virtual import VirtualComposedGraph
from repro.wfst.fst import EPSILON


@dataclass(slots=True)
class _Token:
    state: int
    cost: float
    lattice_node: int


@dataclass
class _Table:
    tokens: dict[int, _Token] = field(default_factory=dict)
    best_cost: float = math.inf
    inserts: int = 0
    recombinations: int = 0

    def insert(self, state: int, cost: float, lattice_node: int) -> bool:
        existing = self.tokens.get(state)
        if existing is None:
            self.tokens[state] = _Token(state, cost, lattice_node)
            self.inserts += 1
        elif cost < existing.cost:
            existing.cost = cost
            existing.lattice_node = lattice_node
        else:
            self.recombinations += 1
            return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True


_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=np.float64)


class _LazyComposedMap:
    """Dict-of-_Token facade over a :class:`_SoaTable` (lazy, identity-stable)."""

    __slots__ = ("_table",)

    def __init__(self, table: "_SoaTable") -> None:
        self._table = table

    def get(self, state: int, default=None):
        slot = self._table.find_slot(state)
        if slot is None:
            return default
        return self._table.materialize(state, slot)

    def __getitem__(self, state: int) -> _Token:
        slot = self._table.find_slot(state)
        if slot is None:
            raise KeyError(state)
        return self._table.materialize(state, slot)

    def __len__(self) -> int:
        return len(self._table)

    def values(self):
        table = self._table
        for slot, state in enumerate(table._base_state.tolist()):
            yield table.materialize(state, slot)
        base_size = table._base_state.shape[0]
        for index, state in enumerate(table._extra_state):
            yield table.materialize(state, base_size + index)


class _SoaTable:
    """Composed-state table storing the frontier as numpy columns.

    Same design as :class:`repro.core.tokens.SoaTokenTable` (bulk fill
    from the vectorized expansion, lazy _Token materialization for the
    epsilon phase), keyed by composed state id.  Insert semantics and
    counters match :class:`_Table`.
    """

    def __init__(self) -> None:
        self.best_cost = math.inf
        self.inserts = 0
        self.recombinations = 0
        self._base_state = _EMPTY_INT
        self._base_cost = _EMPTY_FLOAT
        self._base_node = _EMPTY_INT
        self._extra_state: list[int] = []
        self._extra_cost: list[float] = []
        self._extra_node: list[int] = []
        # Bulk winners are indexed by binary search over their sorted
        # keys; epsilon arrivals land in a small dict (same scheme as
        # SoaTokenTable).
        self._sorted_keys = _EMPTY_INT
        self._slot_for_sorted = _EMPTY_INT
        self._extra_slot: dict[int, int] = {}
        self._materialized: dict[int, _Token] = {}
        self.tokens = _LazyComposedMap(self)

    def bulk_fill(
        self,
        states: np.ndarray,
        costs: np.ndarray,
        nodes: np.ndarray,
        sorted_keys: np.ndarray,
        slots: np.ndarray,
        recombinations: int,
    ) -> None:
        """Install a vectorized expansion's winners (empty table only)."""
        self._base_state = states
        self._base_cost = costs
        self._base_node = nodes
        self._sorted_keys = sorted_keys
        self._slot_for_sorted = slots
        self.inserts = states.shape[0]
        self.recombinations = recombinations
        if states.shape[0]:
            self.best_cost = float(costs.min())

    def find_slot(self, state: int) -> int | None:
        sorted_keys = self._sorted_keys
        size = sorted_keys.shape[0]
        if size:
            pos = int(np.searchsorted(sorted_keys, state))
            if pos < size and sorted_keys[pos] == state:
                return int(self._slot_for_sorted[pos])
        return self._extra_slot.get(state)

    def __len__(self) -> int:
        return self._base_state.shape[0] + len(self._extra_state)

    def insert(self, state: int, cost: float, lattice_node: int) -> bool:
        slot = self.find_slot(state)
        if slot is None:
            self._extra_slot[state] = self._base_state.shape[0] + len(
                self._extra_state
            )
            self._extra_state.append(state)
            self._extra_cost.append(cost)
            self._extra_node.append(lattice_node)
            self.inserts += 1
        else:
            base_size = self._base_state.shape[0]
            if slot < base_size:
                current = self._base_cost[slot]
            else:
                current = self._extra_cost[slot - base_size]
            if cost < current:
                if slot < base_size:
                    self._base_cost[slot] = cost
                    self._base_node[slot] = lattice_node
                else:
                    self._extra_cost[slot - base_size] = cost
                    self._extra_node[slot - base_size] = lattice_node
                token = self._materialized.get(state)
                if token is not None:
                    token.cost = cost
                    token.lattice_node = lattice_node
            else:
                self.recombinations += 1
                return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True

    def materialize(self, state: int, slot: int) -> _Token:
        token = self._materialized.get(state)
        if token is None:
            base_size = self._base_state.shape[0]
            if slot < base_size:
                token = _Token(
                    state, float(self._base_cost[slot]), int(self._base_node[slot])
                )
            else:
                index = slot - base_size
                token = _Token(
                    state, self._extra_cost[index], self._extra_node[index]
                )
            self._materialized[state] = token
        return token

    def epsilon_seeds(
        self, has_epsilon: np.ndarray, num_lm: int
    ) -> list[_Token]:
        """Tokens whose AM side has epsilon out-arcs, in table order."""
        seeds = []
        base_state = self._base_state
        materialized = self._materialized
        if base_state.shape[0]:
            picked = np.flatnonzero(has_epsilon[base_state // num_lm])
            if picked.shape[0]:
                for state, cost, node in zip(
                    base_state[picked].tolist(),
                    self._base_cost[picked].tolist(),
                    self._base_node[picked].tolist(),
                ):
                    token = materialized.get(state)
                    if token is None:
                        token = _Token(state, cost, node)
                        materialized[state] = token
                    seeds.append(token)
        base_size = base_state.shape[0]
        for index, state in enumerate(self._extra_state):
            if has_epsilon[state // num_lm]:
                seeds.append(self.materialize(state, base_size + index))
        return seeds

    def epsilon_seed_columns(
        self, has_epsilon: np.ndarray, num_lm: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Seed tokens as (state, cost, node) arrays, in table order.

        The array analogue of :meth:`epsilon_seeds` for the batched
        epsilon phase: no _Token objects are materialized, and the
        returned columns are snapshots (the batched phase only runs
        when seed costs provably cannot change mid-phase).
        """
        state_col, cost_col, node_col = self.columns()
        if not state_col.shape[0]:
            return state_col, cost_col, node_col
        picked = np.flatnonzero(has_epsilon[state_col // num_lm])
        return state_col[picked], cost_col[picked], node_col[picked]

    def base_slot_hints(self, keys: np.ndarray) -> np.ndarray:
        """Bulk-winner slot of each composed key, -1 where absent.

        One vectorized binary search replacing a per-insert
        ``searchsorted``; valid as long as no ``bulk_fill`` intervenes
        (the sorted base index is static after it).
        """
        out = np.full(keys.shape[0], -1, dtype=np.int64)
        sorted_keys = self._sorted_keys
        size = sorted_keys.shape[0]
        if size:
            pos = np.minimum(np.searchsorted(sorted_keys, keys), size - 1)
            match = sorted_keys[pos] == keys
            out[match] = self._slot_for_sorted[pos[match]]
        return out

    def insert_hinted(
        self, state: int, cost: float, lattice_node: int, base_slot: int
    ) -> bool:
        """:meth:`insert` with the base-index search precomputed.

        ``base_slot`` is the key's entry from :meth:`base_slot_hints`
        (-1 when the key is not among the bulk winners); epsilon-phase
        arrivals are still looked up in the side dict.
        """
        slot = base_slot if base_slot >= 0 else self._extra_slot.get(state)
        if slot is None:
            self._extra_slot[state] = self._base_state.shape[0] + len(
                self._extra_state
            )
            self._extra_state.append(state)
            self._extra_cost.append(cost)
            self._extra_node.append(lattice_node)
            self.inserts += 1
        else:
            base_size = self._base_state.shape[0]
            if slot < base_size:
                current = self._base_cost[slot]
            else:
                current = self._extra_cost[slot - base_size]
            if cost < current:
                if slot < base_size:
                    self._base_cost[slot] = cost
                    self._base_node[slot] = lattice_node
                else:
                    self._extra_cost[slot - base_size] = cost
                    self._extra_node[slot - base_size] = lattice_node
                token = self._materialized.get(state)
                if token is not None:
                    token.cost = cost
                    token.lattice_node = lattice_node
            else:
                self.recombinations += 1
                return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self._extra_state:
            return self._base_state, self._base_cost, self._base_node
        return (
            np.concatenate(
                [self._base_state, np.array(self._extra_state, dtype=np.int64)]
            ),
            np.concatenate(
                [self._base_cost, np.array(self._extra_cost, dtype=np.float64)]
            ),
            np.concatenate(
                [self._base_node, np.array(self._extra_node, dtype=np.int64)]
            ),
        )


class FullyComposedDecoder:
    """Beam search over the offline-composed graph."""

    def __init__(
        self,
        graph: VirtualComposedGraph,
        config: DecoderConfig | None = None,
        sink: TraceSink | None = None,
        compact_lattice: bool = False,
    ) -> None:
        self.graph = graph
        self.config = config or DecoderConfig()
        self.sink = sink or NullSink()
        self._tracing = not isinstance(self.sink, NullSink)
        # The MICRO-49 baseline predates the compact lattice format.
        self._lattice_record = (
            COMPACT_RECORD_BYTES if compact_lattice else RAW_RECORD_BYTES
        )
        # Composed emitting arcs mirror AM emitting arcs with the LM
        # side carried along unchanged (their output labels are all
        # epsilon), so one CSR build over the AM graph serves every
        # composed state — no lazy composition on the emitting path.
        self._arcs = EmittingArcs.from_fst(graph.am.fst)
        # Composed epsilon arcs likewise mirror AM epsilon arcs: the
        # batched epsilon phase composes the LM side itself through
        # the graph's lookup, bypassing the lazy per-state arc cache.
        self._eps_arcs = EpsilonArcs.from_fst(graph.am.fst)
        self._batched_epsilon_ok: bool | None = None  # resolved lazily
        self._num_lm = graph.lm.fst.num_states
        # Epsilon out-degree depends only on the AM side; a flat flag
        # array keeps the worklist check off the lazy composed cache.
        am_fst = graph.am.fst
        self._has_epsilon = [
            any(a.ilabel == EPSILON for a in am_fst.out_arcs(s))
            for s in am_fst.states()
        ]
        self._has_epsilon_arr = np.array(self._has_epsilon, dtype=bool)
        # Per-side final weights (inf when non-final) for the
        # vectorized finalize; composed final weight is their sum.
        lm_fst = graph.lm.fst
        self._am_final_w = np.array(
            [
                am_fst.final_weight(s) if am_fst.is_final(s) else math.inf
                for s in am_fst.states()
            ],
            dtype=np.float64,
        )
        self._lm_final_w = np.array(
            [
                lm_fst.final_weight(s) if lm_fst.is_final(s) else math.inf
                for s in lm_fst.states()
            ],
            dtype=np.float64,
        )
        #: Wall-clock phase breakdown of the last decode (when
        #: ``config.profile``), as in ``OnTheFlyDecoder``.
        self.last_phase_seconds: dict[str, float] | None = None

    def decode(self, scores: np.ndarray) -> DecodeResult:
        if scores.ndim != 2 or scores.shape[1] < self.graph.am.num_senones:
            raise ValueError(
                f"score matrix shape {scores.shape} incompatible with "
                f"{self.graph.am.num_senones} senones"
            )
        config = self.config
        beam = BeamConfig(beam=config.beam, max_active=config.max_active)
        stats = DecoderStats()
        lattice = WordLattice()
        sink = self.sink
        graph = self.graph

        num_frames = scores.shape[0]
        tracing = self._tracing
        scores = np.ascontiguousarray(scores, dtype=np.float64)
        vectorized = (
            config.vectorized and not tracing and self._arcs.pure_emitting
        )
        batched_epsilon = vectorized and self._epsilon_batchable()
        profile = config.profile
        expand_seconds = epsilon_seconds = 0.0
        started = perf_counter() if profile else 0.0
        scale = config.acoustic_scale

        current: _Table = _SoaTable() if vectorized else _Table()
        current.insert(graph.start, 0.0, -1)
        rows = None if vectorized else scores.tolist()

        for frame in range(num_frames):
            mark = perf_counter() if profile else 0.0
            if vectorized:
                next_table, num_survivors, frame_expansions, pruned = (
                    self._expand_frame_vectorized(current, scores[frame], beam)
                )
            else:
                survivors, pruned = self._prune(current, beam)
                num_survivors = len(survivors)
                frame_scores = rows[frame]
                next_table = _Table()
                insert = next_table.insert
                frame_expansions = 0
                for token in survivors:
                    state = token.state
                    token_cost = token.cost
                    lattice_node = token.lattice_node
                    if tracing:
                        sink.on_state_fetch(GraphSide.COMPOSED, state)
                        am_state, lm_state = graph.decode_state(state)
                        sink.on_token_hash_access(am_state, lm_state)
                    for arc in graph.out_arcs(state):
                        if arc.ilabel == EPSILON:
                            continue
                        if tracing:
                            sink.on_arc_fetch(
                                GraphSide.COMPOSED, state, arc.ordinal
                            )
                        frame_expansions += 1
                        cost = (
                            token_cost
                            + arc.weight
                            - scale * frame_scores[arc.ilabel - 1]
                        )
                        insert(arc.nextstate, cost, lattice_node)
            if profile:
                expand_seconds += perf_counter() - mark
            stats.beam_pruned += pruned
            stats.am_state_fetches += num_survivors
            stats.am_arc_fetches += frame_expansions
            stats.expansions += frame_expansions
            mark = perf_counter() if profile else 0.0
            if batched_epsilon:
                self._epsilon_phase_batched(next_table, frame, lattice, stats, beam)
            else:
                self._epsilon_phase(next_table, frame, lattice, stats, beam)
            if profile:
                epsilon_seconds += perf_counter() - mark
            stats.tokens_created += next_table.inserts
            stats.tokens_recombined += next_table.recombinations
            stats.active_history.append(len(next_table.tokens))
            if tracing:
                sink.on_frame_end(frame, len(next_table.tokens))
            current = next_table
        stats.frames = num_frames
        result = self._finalize(current, lattice, stats)
        if profile:
            total = perf_counter() - started
            self.last_phase_seconds = {
                "expand": expand_seconds,
                "epsilon": epsilon_seconds,
                "other": total - expand_seconds - epsilon_seconds,
                "total": total,
            }
        return result

    def _expand_frame_vectorized(
        self, table: _SoaTable, score_row: np.ndarray, beam: BeamConfig
    ) -> tuple[_SoaTable, int, int, int]:
        """Prune + emitting expansion over composed states, in bulk.

        Emitting composed arcs never move the LM side, so the AM-graph
        CSR columns are gathered per composed state: destination key
        ``am_next * num_lm + lm`` and weight equal to the AM arc's.
        Candidate evaluation order, cost arithmetic and recombination
        outcomes replicate the scalar loop exactly.
        """
        state_col, cost_col, node_col = table.columns()
        total = state_col.shape[0]
        next_table = _SoaTable()
        if total == 0:
            return next_table, 0, 0, 0
        threshold = table.best_cost + beam.beam
        keep = np.flatnonzero(cost_col <= threshold)
        pruned = total - keep.shape[0]
        if beam.max_active and keep.shape[0] > beam.max_active:
            keep = keep[
                np.argsort(cost_col[keep], kind="stable")[: beam.max_active]
            ]
            pruned = total - beam.max_active
        num_survivors = int(keep.shape[0])
        num_lm = np.int64(self._num_lm)
        survivor_states = state_col[keep]
        am_states, lm_states = np.divmod(survivor_states, num_lm)
        arcs = self._arcs
        token_index, flat = arcs.gather(am_states)
        frame_expansions = int(flat.shape[0])
        if frame_expansions == 0:
            return next_table, num_survivors, 0, pruned
        survivor_cost = cost_col[keep]
        candidate_cost = (
            survivor_cost[token_index]
            + arcs.weight[flat]
            - self.config.acoustic_scale * score_row[arcs.score_index[flat]]
        )
        keys = arcs.nextstate[flat] * num_lm + lm_states[token_index]
        plan = plan_recombination(keys, candidate_cost)
        winners = plan.winners
        next_table.bulk_fill(
            keys[winners],
            candidate_cost[winners],
            node_col[keep][token_index[winners]],
            plan.sorted_keys,
            plan.slots,
            plan.recombinations,
        )
        return next_table, num_survivors, frame_expansions, pruned

    def _prune(self, table: _Table, beam: BeamConfig) -> tuple[list[_Token], int]:
        total = len(table.tokens)
        if total == 0:
            return [], 0
        threshold = table.best_cost + beam.beam
        survivors = [t for t in table.tokens.values() if t.cost <= threshold]
        if beam.max_active and len(survivors) > beam.max_active:
            import heapq

            survivors = heapq.nsmallest(
                beam.max_active, survivors, key=lambda t: t.cost
            )
        return survivors, total - len(survivors)

    def _epsilon_batchable(self) -> bool:
        """Whether the batched epsilon phase preserves scalar semantics.

        Same gates as ``OnTheFlyDecoder._epsilon_batchable``: the
        epsilon graph must be single-level and every composed epsilon
        weight (AM arc weight, plus the LM's resolved total on
        cross-word arcs) non-negative, so the frame's pruning
        threshold stays constant for the whole phase.
        """
        ok = self._batched_epsilon_ok
        if ok is None:
            ok = (
                self._eps_arcs.single_level
                and self._eps_arcs.nonneg_weights
                and self.graph._lookup.batch_supported
            )
            self._batched_epsilon_ok = ok
        return ok

    def _epsilon_phase_batched(
        self,
        table: _SoaTable,
        frame: int,
        lattice: WordLattice,
        stats: DecoderStats,
        beam: BeamConfig,
    ) -> None:
        """One frame's epsilon phase as batched composition.

        Replays the scalar loop exactly under the
        :meth:`_epsilon_batchable` gates, composing cross-word arcs
        through :meth:`LmLookup.resolve_batch` instead of the lazy
        per-state composed-arc cache: seeds are processed in the
        worklist's pop order (reverse table order) and the arrivals
        are committed in the scalar loop's interleaved order.
        """
        num_lm = self._num_lm
        state_col, cost_col, node_col = table.epsilon_seed_columns(
            self._has_epsilon_arr, num_lm
        )
        num_seeds = state_col.shape[0]
        if num_seeds == 0:
            return
        threshold = table.best_cost + beam.beam
        # The worklist pops seeds off the end: reverse table order.
        state_col = state_col[::-1]
        cost_col = cost_col[::-1]
        node_col = node_col[::-1]
        alive = cost_col <= threshold
        keep = np.flatnonzero(alive)
        stats.beam_pruned += int(num_seeds - keep.shape[0])
        if keep.shape[0] == 0:
            return
        eps = self._eps_arcs
        am_col, lm_col = np.divmod(state_col[keep], np.int64(num_lm))
        token_index, flat = eps.gather(am_col)
        num_pairs = int(flat.shape[0])
        stats.am_arc_fetches += num_pairs
        stats.expansions += num_pairs
        if num_pairs == 0:
            return
        olabels = eps.olabel[flat]
        pair_lm = lm_col[token_index]
        pair_node = node_col[keep][token_index]
        dest_am = eps.nextstate[flat]
        # Composed weight first, token cost second — the scalar loop
        # adds ``token.cost + arc.weight`` where the composed arc's
        # weight was formed as ``am_weight + resolve.weight``.
        composed_w = eps.weight[flat].copy()
        final_lm = pair_lm.copy()

        is_word = olabels != EPSILON
        word_idx = np.flatnonzero(is_word)
        if word_idx.shape[0]:
            result = self.graph._lookup.resolve_batch(
                pair_lm[word_idx],
                olabels[word_idx],
                np.zeros(word_idx.shape[0], dtype=np.float64),
            )
            composed_w[word_idx] = eps.weight[flat][word_idx] + result.weight
            final_lm[word_idx] = result.next_state
        cost = cost_col[keep][token_index] + composed_w

        keys = dest_am * np.int64(num_lm) + final_lm
        hints = table.base_slot_hints(keys).tolist()
        commit_word = is_word.tolist()
        commit_key = keys.tolist()
        commit_cost = cost.tolist()
        commit_node = pair_node.tolist()
        commit_olabel = olabels.tolist()
        add = lattice.add
        insert = table.insert_hinted
        words_done = 0
        # Single-level gate: no arrival re-enters the worklist, so the
        # scalar loop's remaining work is exactly this commit sequence.
        for i in range(len(commit_key)):
            arrival_cost = commit_cost[i]
            node = commit_node[i]
            if commit_word[i]:
                node = add(commit_olabel[i], frame, arrival_cost, node)
                words_done += 1
            insert(commit_key[i], arrival_cost, node, hints[i])
        stats.token_writes += words_done
        stats.words_emitted += words_done

    def _epsilon_phase(
        self,
        table: _Table,
        frame: int,
        lattice: WordLattice,
        stats: DecoderStats,
        beam: BeamConfig,
    ) -> None:
        graph = self.graph
        sink = self.sink
        tracing = self._tracing
        # Composed epsilon out-degree depends only on the AM state, so
        # the membership check never forces a lazy composed expansion.
        has_epsilon = self._has_epsilon
        num_lm = self._num_lm
        if isinstance(table, _SoaTable):
            worklist = table.epsilon_seeds(self._has_epsilon_arr, num_lm)
        else:
            worklist = [
                t
                for t in list(table.tokens.values())
                if has_epsilon[t.state // num_lm]
            ]
        while worklist:
            token = worklist.pop()
            threshold = table.best_cost + beam.beam
            if token.cost > threshold:
                stats.beam_pruned += 1
                continue
            for arc in graph.out_arcs(token.state):
                if arc.ilabel != EPSILON:
                    continue
                if tracing:
                    sink.on_arc_fetch(
                        GraphSide.COMPOSED, token.state, arc.ordinal
                    )
                stats.am_arc_fetches += 1
                stats.expansions += 1
                cost = token.cost + arc.weight
                node = token.lattice_node
                if arc.olabel != EPSILON:
                    node = lattice.add(arc.olabel, frame, cost, token.lattice_node)
                    if tracing:
                        sink.on_token_write(self._lattice_record)
                    stats.token_writes += 1
                    stats.words_emitted += 1
                inserted = table.insert(arc.nextstate, cost, node)
                if inserted and has_epsilon[arc.nextstate // num_lm]:
                    worklist.append(table.tokens[arc.nextstate])

    def _finalize(
        self, table: _Table, lattice: WordLattice, stats: DecoderStats
    ) -> DecodeResult:
        best_cost = math.inf
        best_node = -1
        if isinstance(table, _SoaTable):
            state_col, cost_col, node_col = table.columns()
            if state_col.shape[0]:
                am_states, lm_states = np.divmod(state_col, self._num_lm)
                totals = cost_col + (
                    self._am_final_w[am_states] + self._lm_final_w[lm_states]
                )
                finite = np.flatnonzero(np.isfinite(totals))
                if finite.shape[0]:
                    # First minimum, as the sequential strict-< scan keeps.
                    best = finite[int(np.argmin(totals[finite]))]
                    best_cost = float(totals[best])
                    best_node = int(node_col[best])
        else:
            for token in table.tokens.values():
                if not self.graph.is_final(token.state):
                    continue
                total = token.cost + self.graph.final_weight(token.state)
                if total < best_cost:
                    best_cost = total
                    best_node = token.lattice_node
        word_ids = lattice.backtrace(best_node) if best_node >= 0 else []
        if math.isinf(best_cost):
            word_ids = []
        words = [self.graph.lm.words.symbol_of(w) for w in word_ids]
        return DecodeResult(
            word_ids=word_ids,
            words=words,
            cost=best_cost,
            stats=stats,
            lattice=lattice,
        )
