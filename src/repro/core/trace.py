"""Decoder-to-simulator event tracing.

The functional decoders are instrumented with a narrow sink interface:
every state fetch, arc fetch, token write and offset-table access is
reported as it happens.  The accelerator simulators subscribe a sink
that converts events into memory addresses and drives the cache/DRAM
models; functional runs pass no sink and pay almost nothing.

Graph ids distinguish the traffic classes Figure 11 separates (states,
arcs, tokens) and the two arc streams the accelerator caches separately
(AM arcs vs LM arcs).
"""

from __future__ import annotations

import enum
from typing import Protocol


class GraphSide(enum.Enum):
    """Which dataset a fetch touched."""

    AM = "am"
    LM = "lm"
    COMPOSED = "composed"  # the fully-composed baseline's single WFST


class TraceSink(Protocol):
    """Receiver for decoder memory events."""

    def on_state_fetch(self, side: GraphSide, state: int) -> None: ...

    def on_arc_fetch(self, side: GraphSide, state: int, ordinal: int) -> None: ...

    def on_token_write(self, nbytes: int) -> None: ...

    def on_token_hash_access(self, am_state: int, lm_state: int) -> None: ...

    def on_olt_access(self, lm_state: int, word_id: int, hit: bool) -> None: ...

    def on_frame_end(self, frame: int, active_tokens: int) -> None: ...


class NullSink:
    """No-op sink for purely functional decoding."""

    def on_state_fetch(self, side: GraphSide, state: int) -> None:
        pass

    def on_arc_fetch(self, side: GraphSide, state: int, ordinal: int) -> None:
        pass

    def on_token_write(self, nbytes: int) -> None:
        pass

    def on_token_hash_access(self, am_state: int, lm_state: int) -> None:
        pass

    def on_olt_access(self, lm_state: int, word_id: int, hit: bool) -> None:
        pass

    def on_frame_end(self, frame: int, active_tokens: int) -> None:
        pass
