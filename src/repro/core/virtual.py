"""Virtual fully-composed WFST.

The baseline accelerator (Reza et al. [34]) searches the offline
composition AM ∘ LM.  Materializing that graph is exactly the memory
explosion the paper is about — for the larger tasks it does not fit
comfortably even in simulation.  ``VirtualComposedGraph`` exposes the
composed machine *by contract*: composed states are (AM state, LM
state) pairs encoded as dense integers, and ``out_arcs`` computes each
state's composed arcs on demand with exact back-off (phi) semantics.

A decoder running over this object explores precisely the graph offline
composition would have produced (tests verify this against a real
materialized composition on small tasks), while the size of the full
graph is computed separately by ``repro.compress.sizing``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.am.graph import AmGraph
from repro.core.composition import LmLookup, LookupStrategy
from repro.lm.graph import LmGraph
from repro.wfst.fst import EPSILON


@dataclass(frozen=True)
class ComposedArc:
    """A composed arc, annotated with its provenance for addressing."""

    ilabel: int
    olabel: int
    weight: float
    nextstate: int  # encoded composite id
    ordinal: int  # arc index within the source composite state


class VirtualComposedGraph:
    """AM ∘ LM, computed lazily, addressed densely."""

    def __init__(self, am: AmGraph, lm: LmGraph) -> None:
        self.am = am
        self.lm = lm
        self._num_lm = lm.fst.num_states
        # Exact-semantics lookup; BINARY avoids OLT state in the baseline.
        self._lookup = LmLookup(lm, strategy=LookupStrategy.BINARY)
        self._cache: dict[int, list[ComposedArc]] = {}

    # -- state encoding ----------------------------------------------------

    def encode(self, am_state: int, lm_state: int) -> int:
        return am_state * self._num_lm + lm_state

    def decode_state(self, state: int) -> tuple[int, int]:
        return divmod(state, self._num_lm)

    @property
    def start(self) -> int:
        return self.encode(self.am.fst.start, self.lm.fst.start)

    @property
    def num_states_bound(self) -> int:
        """Dense id-space size (upper bound on reachable states)."""
        return self.am.fst.num_states * self._num_lm

    def final_weight(self, state: int) -> float:
        am_state, lm_state = self.decode_state(state)
        am_final = self.am.fst.final_weight(am_state)
        lm_final = self.lm.fst.final_weight(lm_state)
        return am_final + lm_final

    def is_final(self, state: int) -> bool:
        am_state, lm_state = self.decode_state(state)
        return self.am.fst.is_final(am_state) and self.lm.fst.is_final(lm_state)

    # -- lazy arc expansion --------------------------------------------------

    def out_arcs(self, state: int) -> list[ComposedArc]:
        cached = self._cache.get(state)
        if cached is not None:
            return cached
        am_state, lm_state = self.decode_state(state)
        arcs: list[ComposedArc] = []
        for ordinal, arc in enumerate(self.am.fst.out_arcs(am_state)):
            if arc.olabel == EPSILON:
                arcs.append(
                    ComposedArc(
                        ilabel=arc.ilabel,
                        olabel=EPSILON,
                        weight=arc.weight,
                        nextstate=self.encode(arc.nextstate, lm_state),
                        ordinal=ordinal,
                    )
                )
            else:
                result = self._lookup.resolve(lm_state, arc.olabel)
                arcs.append(
                    ComposedArc(
                        ilabel=arc.ilabel,
                        olabel=arc.olabel,
                        weight=arc.weight + result.weight,
                        nextstate=self.encode(arc.nextstate, result.next_state),
                        ordinal=ordinal,
                    )
                )
        self._cache[state] = arcs
        return arcs

    def clear_cache(self) -> None:
        self._cache.clear()

    def materialize_equivalent(self) -> "Wfst":  # noqa: F821 - doc type
        """Reference composition via the generic phi composer (tests only)."""
        from repro.wfst.compose import compose

        return compose(self.am.fst, self.lm.fst, phi_label=self.lm.backoff_label)
