"""Structure-of-arrays arc storage for the vectorized decode hot loop.

The scalar decoders walk per-state Python lists of ``Arc`` objects.
That layout is convenient for the cycle-level simulation (every fetch
is a discrete, traceable event) but hostile to bulk math: expanding a
frame touches tens of thousands of Python objects.

:class:`EmittingArcs` flattens a graph's *emitting* arcs (non-epsilon
input label) into CSR-style numpy columns, built once per graph:

* ``offsets[s] : offsets[s + 1]`` — the slice of state ``s``'s arcs;
* ``ilabel`` / ``weight`` / ``nextstate`` / ``ordinal`` — contiguous
  per-arc columns, in the same order the scalar loop visits them.

:func:`plan_recombination` then replays sequential Viterbi insertion
over a frame's full candidate batch: it computes, entirely in numpy,
which candidate each destination key ends up keeping, the order keys
first appeared (dict insertion order), and the exact
insert/improvement/recombination counter outcomes the scalar
``TokenTable`` would have produced.  The vectorized decoders are
equivalence-tested against the scalar path down to ``DecoderStats``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.wfst.fst import EPSILON


@dataclass(frozen=True)
class EmittingArcs:
    """CSR view of one graph's emitting arcs."""

    offsets: np.ndarray  # int64, num_states + 1
    ilabel: np.ndarray  # int64, one entry per emitting arc
    weight: np.ndarray  # float64
    nextstate: np.ndarray  # int64
    ordinal: np.ndarray  # int64, arc index within its source state
    #: ``ilabel - 1``: the acoustic-score column each arc consumes.
    score_index: np.ndarray  # int64
    #: True when every emitting arc has an epsilon *output* label, i.e.
    #: emitting expansion never moves the LM side (holds for the HMM
    #: topologies ``repro.am.graph`` builds).  The vectorized composed
    #: key ``nextstate * num_lm + lm`` is only valid under this flag.
    pure_emitting: bool

    @classmethod
    def from_fst(cls, fst) -> "EmittingArcs":
        """Flatten ``fst``'s non-epsilon-input arcs, once."""
        num_states = fst.num_states
        offsets = np.zeros(num_states + 1, dtype=np.int64)
        ilabels: list[int] = []
        weights: list[float] = []
        nextstates: list[int] = []
        ordinals: list[int] = []
        pure = True
        for state in fst.states():
            count = 0
            for ordinal, arc in enumerate(fst.out_arcs(state)):
                if arc.ilabel == EPSILON:
                    continue
                ilabels.append(arc.ilabel)
                weights.append(arc.weight)
                nextstates.append(arc.nextstate)
                ordinals.append(ordinal)
                if arc.olabel != EPSILON:
                    pure = False
                count += 1
            offsets[state + 1] = offsets[state] + count
        ilabel = np.array(ilabels, dtype=np.int64)
        return cls(
            offsets=offsets,
            ilabel=ilabel,
            weight=np.array(weights, dtype=np.float64),
            nextstate=np.array(nextstates, dtype=np.int64),
            ordinal=np.array(ordinals, dtype=np.int64),
            score_index=ilabel - 1,
            pure_emitting=pure,
        )

    @property
    def num_arcs(self) -> int:
        return int(self.ilabel.shape[0])

    def counts(self, states: np.ndarray) -> np.ndarray:
        """Emitting out-degree of each state in ``states``."""
        return self.offsets[states + 1] - self.offsets[states]

    def gather(self, states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand a batch of source states into their arc slices.

        Returns ``(token_index, flat)`` where ``flat`` indexes the arc
        columns and ``token_index[i]`` is the position in ``states``
        that arc ``flat[i]`` came from.  Arcs appear grouped by token,
        in ``states`` order — exactly the scalar loop's visit order.
        """
        starts = self.offsets[states]
        counts = self.offsets[states + 1] - starts
        total = int(counts.sum())
        token_index = np.repeat(np.arange(states.shape[0]), counts)
        # Position of each arc within its own group, via a segmented iota.
        segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.repeat(starts, counts) + (
            np.arange(total, dtype=np.int64) - segment_starts
        )
        return token_index, flat


@dataclass(frozen=True)
class RecombinationPlan:
    """Outcome of replaying sequential Viterbi insertion over a batch."""

    #: Candidate index (into the batch, arrival order) that each
    #: destination key keeps, listed in first-arrival order of the keys
    #: — i.e. the scalar table's dict insertion order.
    winners: np.ndarray
    #: The distinct destination keys, ascending — a binary-searchable
    #: index over the winner table.
    sorted_keys: np.ndarray
    #: ``slots[i]``: position of ``sorted_keys[i]``'s winner in the
    #: (first-arrival-ordered) ``winners`` array.
    slots: np.ndarray
    inserts: int
    improvements: int
    recombinations: int


def plan_recombination(
    keys: np.ndarray, costs: np.ndarray
) -> RecombinationPlan:
    """Replay ``TokenTable.insert`` over a whole candidate batch.

    ``keys``/``costs`` are the batch in arrival order.  Sequential
    semantics being replicated: the first candidate for a key inserts;
    a later candidate *strictly* cheaper than the key's running best
    improves (taking over the key's lattice node); anything else
    recombines.  The key's final owner is therefore the *first*
    candidate to reach the key's minimum cost.

    Strategy: stable-sort by key so each key's candidates stay in
    arrival order, convert costs to exact integer ranks (ties share a
    rank), then shift each key's ranks into its own disjoint band so a
    single global running minimum acts as a per-key running minimum.
    Strict drops of that running minimum are exactly the sequential
    insert/improve events.
    """
    total = int(keys.shape[0])
    if total == 0:
        raise ValueError("empty candidate batch")
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.empty(total, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    group_index = np.cumsum(new_group) - 1
    num_groups = int(group_index[-1]) + 1
    # Exact tie-aware integer ranks of the float costs (ties share a
    # rank, so ranks compare exactly like the floats do).
    cost_order = np.argsort(costs)
    sorted_costs = costs[cost_order]
    distinct = np.empty(total, dtype=np.int64)
    distinct[0] = 0
    np.not_equal(sorted_costs[1:], sorted_costs[:-1], out=distinct[1:])
    ranks = np.empty(total, dtype=np.int64)
    ranks[cost_order] = np.cumsum(distinct)
    banded = ranks[order] - group_index * np.int64(total + 1)
    running = np.minimum.accumulate(banded)
    improved = np.empty(total, dtype=bool)
    improved[0] = True
    np.less(running[1:], running[:-1], out=improved[1:])
    improved_total = int(np.count_nonzero(improved))
    # Winner of each group: its last strict improvement.  Improvement
    # positions are ascending with non-decreasing group index, so the
    # last position before each group boundary is the group's winner.
    improved_pos = np.flatnonzero(improved)
    improved_group = group_index[improved_pos]
    last_of_group = np.empty(improved_pos.shape[0], dtype=bool)
    last_of_group[-1] = True
    np.not_equal(improved_group[1:], improved_group[:-1], out=last_of_group[:-1])
    winners = order[improved_pos[last_of_group]]
    # Reorder groups into first-arrival order to match dict insertion.
    first_pos = np.flatnonzero(new_group)
    first_arrival = order[first_pos]
    perm = np.argsort(first_arrival, kind="stable")
    winners = winners[perm]
    slots = np.empty(num_groups, dtype=np.int64)
    slots[perm] = np.arange(num_groups, dtype=np.int64)
    return RecombinationPlan(
        winners=winners,
        sorted_keys=sorted_keys[first_pos],
        slots=slots,
        inserts=num_groups,
        improvements=improved_total - num_groups,
        recombinations=total - improved_total,
    )
