"""Structure-of-arrays arc storage for the vectorized decode hot loop.

The scalar decoders walk per-state Python lists of ``Arc`` objects.
That layout is convenient for the cycle-level simulation (every fetch
is a discrete, traceable event) but hostile to bulk math: expanding a
frame touches tens of thousands of Python objects.

:class:`EmittingArcs` flattens a graph's *emitting* arcs (non-epsilon
input label) into CSR-style numpy columns, built once per graph:

* ``offsets[s] : offsets[s + 1]`` — the slice of state ``s``'s arcs;
* ``ilabel`` / ``weight`` / ``nextstate`` / ``ordinal`` — contiguous
  per-arc columns, in the same order the scalar loop visits them.

:class:`EpsilonArcs` does the same for the *epsilon* arcs (epsilon
input label) the within-frame epsilon phase walks, and additionally
records the two structural facts the batched epsilon engine gates on:
whether the epsilon graph is single-level (no epsilon arc leads to a
state that has epsilon arcs of its own) and whether every epsilon
weight is non-negative (so the frame's pruning threshold cannot move
during the phase).

:class:`LmWordArcs` flattens an LM graph's word arcs (back-off arc
excluded) into the same CSR layout, ilabel-sorted within each state,
plus each state's *back-off chain* — the sequence of states a failed
lookup walks through, with the per-hop back-off penalties — so a batch
of `LmLookup.resolve` walks becomes numpy gathers over precomputed
columns instead of per-token arc chasing (the software analogue of the
paper's preemptive back-off machinery, Sections 3.3-3.4).

:func:`plan_recombination` then replays sequential Viterbi insertion
over a frame's full candidate batch: it computes, entirely in numpy,
which candidate each destination key ends up keeping, the order keys
first appeared (dict insertion order), and the exact
insert/improvement/recombination counter outcomes the scalar
``TokenTable`` would have produced.  The vectorized decoders are
equivalence-tested against the scalar path down to ``DecoderStats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.wfst.fst import EPSILON, Arc


def _csr_gather(
    offsets: np.ndarray, states: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand a batch of source states into their CSR arc slices.

    Returns ``(token_index, flat)`` where ``flat`` indexes the arc
    columns and ``token_index[i]`` is the position in ``states`` that
    arc ``flat[i]`` came from.  Arcs appear grouped by token, in
    ``states`` order — exactly the scalar loops' visit order.
    """
    starts = offsets[states]
    counts = offsets[states + 1] - starts
    total = int(counts.sum())
    token_index = np.repeat(np.arange(states.shape[0]), counts)
    # Position of each arc within its own group, via a segmented iota.
    segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.repeat(starts, counts) + (
        np.arange(total, dtype=np.int64) - segment_starts
    )
    return token_index, flat


@dataclass(frozen=True)
class EmittingArcs:
    """CSR view of one graph's emitting arcs."""

    offsets: np.ndarray  # int64, num_states + 1
    ilabel: np.ndarray  # int64, one entry per emitting arc
    weight: np.ndarray  # float64
    nextstate: np.ndarray  # int64
    ordinal: np.ndarray  # int64, arc index within its source state
    #: ``ilabel - 1``: the acoustic-score column each arc consumes.
    score_index: np.ndarray  # int64
    #: True when every emitting arc has an epsilon *output* label, i.e.
    #: emitting expansion never moves the LM side (holds for the HMM
    #: topologies ``repro.am.graph`` builds).  The vectorized composed
    #: key ``nextstate * num_lm + lm`` is only valid under this flag.
    pure_emitting: bool

    @classmethod
    def from_fst(cls, fst) -> "EmittingArcs":
        """Flatten ``fst``'s non-epsilon-input arcs, once."""
        num_states = fst.num_states
        offsets = np.zeros(num_states + 1, dtype=np.int64)
        ilabels: list[int] = []
        weights: list[float] = []
        nextstates: list[int] = []
        ordinals: list[int] = []
        pure = True
        for state in fst.states():
            count = 0
            for ordinal, arc in enumerate(fst.out_arcs(state)):
                if arc.ilabel == EPSILON:
                    continue
                ilabels.append(arc.ilabel)
                weights.append(arc.weight)
                nextstates.append(arc.nextstate)
                ordinals.append(ordinal)
                if arc.olabel != EPSILON:
                    pure = False
                count += 1
            offsets[state + 1] = offsets[state] + count
        ilabel = np.array(ilabels, dtype=np.int64)
        return cls(
            offsets=offsets,
            ilabel=ilabel,
            weight=np.array(weights, dtype=np.float64),
            nextstate=np.array(nextstates, dtype=np.int64),
            ordinal=np.array(ordinals, dtype=np.int64),
            score_index=ilabel - 1,
            pure_emitting=pure,
        )

    @property
    def num_arcs(self) -> int:
        return int(self.ilabel.shape[0])

    def to_arc_lists(self) -> list[list[tuple[int, "Arc"]]]:
        """Per-state ``(ordinal, Arc)`` lists, as the scalar loop walks them.

        The inverse of :meth:`from_fst` for everything the scalar
        emitting expansion reads (ilabel / weight / nextstate / ordinal);
        output labels are not stored in the CSR columns, so the rebuilt
        arcs carry epsilon outputs — exact under ``pure_emitting``, and
        immaterial otherwise because the expansion never reads them.
        Lets a decoder built from prebuilt tables (a shared-memory
        attach) serve the scalar reference path without the graph.
        """
        num_states = self.offsets.shape[0] - 1
        offsets = self.offsets.tolist()
        ilabels = self.ilabel.tolist()
        weights = self.weight.tolist()
        nextstates = self.nextstate.tolist()
        ordinals = self.ordinal.tolist()
        return [
            [
                (ordinals[i], Arc(ilabels[i], EPSILON, weights[i], nextstates[i]))
                for i in range(offsets[s], offsets[s + 1])
            ]
            for s in range(num_states)
        ]

    def counts(self, states: np.ndarray) -> np.ndarray:
        """Emitting out-degree of each state in ``states``."""
        return self.offsets[states + 1] - self.offsets[states]

    def gather(self, states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand a batch of source states into their arc slices.

        Returns ``(token_index, flat)`` where ``flat`` indexes the arc
        columns and ``token_index[i]`` is the position in ``states``
        that arc ``flat[i]`` came from.  Arcs appear grouped by token,
        in ``states`` order — exactly the scalar loop's visit order.
        """
        return _csr_gather(self.offsets, states)


@dataclass(frozen=True)
class EpsilonArcs:
    """CSR view of one graph's epsilon (non-emitting) arcs."""

    offsets: np.ndarray  # int64, num_states + 1
    olabel: np.ndarray  # int64, one entry per epsilon arc
    weight: np.ndarray  # float64
    nextstate: np.ndarray  # int64
    ordinal: np.ndarray  # int64, arc index within its source state
    #: Per-state flag: does the state have epsilon out-arcs at all?
    has_arcs: np.ndarray  # bool, num_states
    #: True when no epsilon arc's destination has epsilon arcs of its
    #: own — the epsilon phase then never grows its worklist, so a
    #: whole frame's phase is a pure function of its seed tokens.
    single_level: bool
    #: True when every epsilon arc weight is >= 0 (together with
    #: non-negative LM costs this keeps the frame's pruning threshold
    #: constant through the phase — the batched engine's other gate).
    nonneg_weights: bool

    @classmethod
    def from_fst(cls, fst) -> "EpsilonArcs":
        """Flatten ``fst``'s epsilon-input arcs, once."""
        num_states = fst.num_states
        offsets = np.zeros(num_states + 1, dtype=np.int64)
        olabels: list[int] = []
        weights: list[float] = []
        nextstates: list[int] = []
        ordinals: list[int] = []
        for state in fst.states():
            count = 0
            for ordinal, arc in enumerate(fst.out_arcs(state)):
                if arc.ilabel != EPSILON:
                    continue
                olabels.append(arc.olabel)
                weights.append(arc.weight)
                nextstates.append(arc.nextstate)
                ordinals.append(ordinal)
                count += 1
            offsets[state + 1] = offsets[state] + count
        weight = np.array(weights, dtype=np.float64)
        nextstate = np.array(nextstates, dtype=np.int64)
        has_arcs = (offsets[1:] - offsets[:-1]) > 0
        single_level = not bool(
            np.any(has_arcs[nextstate]) if nextstate.shape[0] else False
        )
        nonneg = bool(np.all(weight >= 0.0)) if weight.shape[0] else True
        return cls(
            offsets=offsets,
            olabel=np.array(olabels, dtype=np.int64),
            weight=weight,
            nextstate=nextstate,
            ordinal=np.array(ordinals, dtype=np.int64),
            has_arcs=has_arcs,
            single_level=single_level,
            nonneg_weights=nonneg,
        )

    @property
    def num_arcs(self) -> int:
        return int(self.olabel.shape[0])

    def to_arc_lists(self) -> list[list[tuple[int, "Arc"]]]:
        """Per-state ``(ordinal, Arc)`` lists for the scalar epsilon phase.

        Epsilon arcs have epsilon inputs by definition, and the columns
        keep every field the phase reads (olabel / weight / nextstate /
        ordinal), so the reconstruction is exact.
        """
        num_states = self.offsets.shape[0] - 1
        offsets = self.offsets.tolist()
        olabels = self.olabel.tolist()
        weights = self.weight.tolist()
        nextstates = self.nextstate.tolist()
        ordinals = self.ordinal.tolist()
        return [
            [
                (ordinals[i], Arc(EPSILON, olabels[i], weights[i], nextstates[i]))
                for i in range(offsets[s], offsets[s + 1])
            ]
            for s in range(num_states)
        ]

    def gather(self, states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand source states into their epsilon-arc slices (CSR order)."""
        return _csr_gather(self.offsets, states)


@dataclass(frozen=True)
class LmWordArcs:
    """CSR word arcs of an LM graph plus flattened back-off chains.

    Word arcs keep the LM construction invariant — ilabel-ascending
    within each state, back-off arc excluded — so a word's arc, if
    present, sits at ``searchsorted(ilabel[state slice], word)``.

    The back-off chain of state ``s`` is the state sequence a failed
    lookup visits: ``chain_states[chain_offsets[s]] == s`` followed by
    successive back-off targets down to the unigram state;
    ``chain_weights[j]`` is the back-off penalty paid to *reach* chain
    entry ``j`` from its predecessor (0 at the chain head).
    """

    label_space: int  # one past the largest label (back-off label + 1)
    offsets: np.ndarray  # int64, num_states + 1
    ilabel: np.ndarray  # int64, one entry per word arc
    weight: np.ndarray  # float64
    nextstate: np.ndarray  # int64
    backoff_next: np.ndarray  # int64 per state, -1 when absent
    backoff_weight: np.ndarray  # float64 per state, 0 when absent
    chain_offsets: np.ndarray  # int64, num_states + 1
    chain_states: np.ndarray  # int64, flattened chains
    chain_weights: np.ndarray  # float64, per-hop penalties
    max_chain: int  # longest chain length (states, >= 1)
    #: True when every resolvable total — accumulated back-off
    #: penalties plus the terminal arc weight — is >= 0.  Individual
    #: back-off penalties may be negative (ARPA models routinely have
    #: back-off weights above 1); what decoders need for a constant
    #: in-frame pruning threshold is the sign of the *totals*.
    nonneg_weights: bool

    @classmethod
    def from_graph(cls, graph) -> "LmWordArcs":
        """Flatten an :class:`~repro.lm.graph.LmGraph`, once."""
        fst = graph.fst
        num_states = fst.num_states
        offsets = np.zeros(num_states + 1, dtype=np.int64)
        ilabels: list[int] = []
        weights: list[float] = []
        nextstates: list[int] = []
        backoff_next = np.full(num_states, -1, dtype=np.int64)
        backoff_weight = np.zeros(num_states, dtype=np.float64)
        for state in fst.states():
            arcs = fst.out_arcs(state)
            backoff = graph.backoff_arc(state)
            if backoff is not None:
                backoff_next[state] = backoff.nextstate
                backoff_weight[state] = backoff.weight
                arcs = arcs[:-1]
            for arc in arcs:
                ilabels.append(arc.ilabel)
                weights.append(arc.weight)
                nextstates.append(arc.nextstate)
            offsets[state + 1] = offsets[state] + len(arcs)
        chain_offsets = np.zeros(num_states + 1, dtype=np.int64)
        chain_states: list[int] = []
        chain_hop_weights: list[float] = []
        max_chain = 1
        for state in range(num_states):
            current = state
            penalty = 0.0
            length = 0
            while True:
                chain_states.append(current)
                chain_hop_weights.append(penalty)
                length += 1
                if length > num_states:
                    raise ValueError("back-off arcs form a cycle")
                nxt = int(backoff_next[current])
                if nxt < 0:
                    break
                penalty = float(backoff_weight[current])
                current = nxt
            chain_offsets[state + 1] = chain_offsets[state] + length
            max_chain = max(max_chain, length)
        weight = np.array(weights, dtype=np.float64)
        ilabel = np.array(ilabels, dtype=np.int64)
        chain_states_arr = np.array(chain_states, dtype=np.int64)
        chain_weights_arr = np.array(chain_hop_weights, dtype=np.float64)
        nonneg = bool(np.all(weight >= 0.0)) if weight.shape[0] else True
        nonneg = nonneg and bool(np.all(backoff_weight >= 0.0))
        if not nonneg:
            # Per-arc signs are too strict: check the resolvable totals.
            nonneg = _all_resolves_nonneg(
                offsets,
                ilabel,
                weight,
                chain_offsets,
                chain_states_arr,
                chain_weights_arr,
                int(graph.backoff_label) + 1,
            )
        return cls(
            label_space=int(graph.backoff_label) + 1,
            offsets=offsets,
            ilabel=ilabel,
            weight=weight,
            nextstate=np.array(nextstates, dtype=np.int64),
            backoff_next=backoff_next,
            backoff_weight=backoff_weight,
            chain_offsets=chain_offsets,
            chain_states=chain_states_arr,
            chain_weights=chain_weights_arr,
            max_chain=max_chain,
            nonneg_weights=nonneg,
        )

    def arc_count(self, state: int) -> int:
        """Word arcs (back-off excluded) out of ``state``."""
        return int(self.offsets[state + 1] - self.offsets[state])

    def to_arc_lists(
        self,
    ) -> tuple[list[list["Arc"]], list["Arc | None"]]:
        """Rebuild the scalar per-state views ``LmLookup`` walks.

        Returns ``(word_arcs, backoff)`` exactly as the lookup's eager
        constructor builds them from the graph: word arcs are acceptor
        arcs (``repro.lm.graph`` emits ``ilabel == olabel``) and the
        back-off arc carries the back-off label on input, epsilon on
        output.  The reconstruction is field-for-field identical, which
        is what lets a lookup over prebuilt (shared-memory) columns
        serve the scalar resolve path without ever touching a graph.
        """
        num_states = self.offsets.shape[0] - 1
        backoff_label = self.label_space - 1
        offsets = self.offsets.tolist()
        ilabels = self.ilabel.tolist()
        weights = self.weight.tolist()
        nextstates = self.nextstate.tolist()
        backoff_next = self.backoff_next.tolist()
        backoff_weight = self.backoff_weight.tolist()
        word_arcs = [
            [
                Arc(ilabels[i], ilabels[i], weights[i], nextstates[i])
                for i in range(offsets[s], offsets[s + 1])
            ]
            for s in range(num_states)
        ]
        backoff: list[Arc | None] = [
            Arc(backoff_label, EPSILON, backoff_weight[s], backoff_next[s])
            if backoff_next[s] >= 0
            else None
            for s in range(num_states)
        ]
        return word_arcs, backoff


def _all_resolves_nonneg(
    offsets: np.ndarray,
    ilabel: np.ndarray,
    weight: np.ndarray,
    chain_offsets: np.ndarray,
    chain_states: np.ndarray,
    chain_weights: np.ndarray,
    label_space: int,
) -> bool:
    """Whether every resolvable (state, word) total weight is >= 0.

    A word resolved from ``state`` pays the accumulated back-off
    penalties down to the first chain entry carrying the word, plus
    that arc's weight — a -log probability, so non-negative in any
    properly normalized model even when an individual back-off penalty
    is negative.  Earlier chain entries shadow deeper ones; the
    shadowed sweep runs only for states whose cheap unshadowed bound
    dips below zero.
    """
    num_states = offsets.shape[0] - 1
    min_arc = np.full(num_states, np.inf)
    if weight.shape[0]:
        state_of = np.repeat(np.arange(num_states), np.diff(offsets))
        np.minimum.at(min_arc, state_of, weight)
    seen = np.zeros(label_space, dtype=np.int64)
    for state in range(num_states):
        lo = int(chain_offsets[state])
        hi = int(chain_offsets[state + 1])
        entries = chain_states[lo:hi]
        cum = np.cumsum(chain_weights[lo:hi])
        if float(np.min(cum + min_arc[entries])) >= 0.0:
            continue  # unshadowed lower bound already clears zero
        marker = state + 1
        for depth, target in enumerate(entries.tolist()):
            a = int(offsets[target])
            b = int(offsets[target + 1])
            labels = ilabel[a:b]
            fresh = seen[labels] != marker
            if fresh.any():
                if cum[depth] + float(np.min(weight[a:b][fresh])) < 0.0:
                    return False
                seen[labels[fresh]] = marker
    return True


@dataclass(frozen=True)
class RecombinationPlan:
    """Outcome of replaying sequential Viterbi insertion over a batch."""

    #: Candidate index (into the batch, arrival order) that each
    #: destination key keeps, listed in first-arrival order of the keys
    #: — i.e. the scalar table's dict insertion order.
    winners: np.ndarray
    #: The distinct destination keys, ascending — a binary-searchable
    #: index over the winner table.
    sorted_keys: np.ndarray
    #: ``slots[i]``: position of ``sorted_keys[i]``'s winner in the
    #: (first-arrival-ordered) ``winners`` array.
    slots: np.ndarray
    inserts: int
    improvements: int
    recombinations: int
    #: Candidate index of every insert-or-improve event, in the sorted
    #: key order the replay walked.  The lockstep batch decoder uses it
    #: to split the aggregate counters back out per utterance (events
    #: of a fused segment are exactly the events its solo decode sees).
    improved_sources: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


def stable_cost_order(costs: np.ndarray) -> np.ndarray:
    """``np.argsort(costs, kind="stable")``, cheaper.

    Stable float sorts cost several times an introsort per element;
    two introsorts — one for exact tie-sharing integer ranks, one over
    ``rank * 2**b + arrival`` (arrival index in the low bits) —
    reproduce the stable permutation bit-for-bit: the ranks compare
    exactly like the floats do, and arrival order breaks ties.
    """
    total = int(costs.shape[0])
    if total < 2:
        return np.zeros(total, dtype=np.int64)
    cost_order = np.argsort(costs)
    sorted_costs = costs[cost_order]
    distinct = np.empty(total, dtype=np.int64)
    distinct[0] = 0
    np.not_equal(sorted_costs[1:], sorted_costs[:-1], out=distinct[1:])
    ranks = np.empty(total, dtype=np.int64)
    ranks[cost_order] = np.cumsum(distinct)
    bits = int(total - 1).bit_length()
    encoded = (ranks << np.int64(bits)) + np.arange(total, dtype=np.int64)
    return np.argsort(encoded)


def plan_recombination(
    keys: np.ndarray, costs: np.ndarray, encoded_order: bool = False
) -> RecombinationPlan:
    """Replay ``TokenTable.insert`` over a whole candidate batch.

    ``keys``/``costs`` are the batch in arrival order.  Sequential
    semantics being replicated: the first candidate for a key inserts;
    a later candidate *strictly* cheaper than the key's running best
    improves (taking over the key's lattice node); anything else
    recombines.  The key's final owner is therefore the *first*
    candidate to reach the key's minimum cost.

    Strategy: stable-sort by key so each key's candidates stay in
    arrival order, convert costs to exact integer ranks (ties share a
    rank), then shift each key's ranks into its own disjoint band so a
    single global running minimum acts as a per-key running minimum.
    Strict drops of that running minimum are exactly the sequential
    insert/improve events.

    ``encoded_order`` replaces the stable key sort with an introsort
    over ``key * 2**b + arrival`` (arrival index packed into the low
    bits) — the identical permutation, roughly 3x cheaper on the fused
    lockstep batches whose key sort dominates.  Opt-in so the solo
    decoder's measured profile is untouched; falls back to the stable
    sort when the packed value would overflow ``int64``.
    """
    total = int(keys.shape[0])
    if total == 0:
        raise ValueError("empty candidate batch")
    order = None
    if encoded_order and total > 1:
        bits = int(total - 1).bit_length()
        max_key = int(keys.max())
        if max_key < (1 << (62 - bits)):
            encoded = (keys << np.int64(bits)) + np.arange(
                total, dtype=np.int64
            )
            order = np.argsort(encoded)
    if order is None:
        order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.empty(total, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    group_index = np.cumsum(new_group) - 1
    num_groups = int(group_index[-1]) + 1
    # Exact tie-aware integer ranks of the float costs (ties share a
    # rank, so ranks compare exactly like the floats do).
    cost_order = np.argsort(costs)
    sorted_costs = costs[cost_order]
    distinct = np.empty(total, dtype=np.int64)
    distinct[0] = 0
    np.not_equal(sorted_costs[1:], sorted_costs[:-1], out=distinct[1:])
    ranks = np.empty(total, dtype=np.int64)
    ranks[cost_order] = np.cumsum(distinct)
    banded = ranks[order] - group_index * np.int64(total + 1)
    running = np.minimum.accumulate(banded)
    improved = np.empty(total, dtype=bool)
    improved[0] = True
    np.less(running[1:], running[:-1], out=improved[1:])
    improved_total = int(np.count_nonzero(improved))
    # Winner of each group: its last strict improvement.  Improvement
    # positions are ascending with non-decreasing group index, so the
    # last position before each group boundary is the group's winner.
    improved_pos = np.flatnonzero(improved)
    improved_group = group_index[improved_pos]
    last_of_group = np.empty(improved_pos.shape[0], dtype=bool)
    last_of_group[-1] = True
    np.not_equal(improved_group[1:], improved_group[:-1], out=last_of_group[:-1])
    winners = order[improved_pos[last_of_group]]
    # Reorder groups into first-arrival order to match dict insertion.
    first_pos = np.flatnonzero(new_group)
    first_arrival = order[first_pos]
    # One candidate per group, so the values are distinct and sort
    # stability is irrelevant; introsort when the caller opted in.
    perm = np.argsort(
        first_arrival, kind=None if encoded_order else "stable"
    )
    winners = winners[perm]
    slots = np.empty(num_groups, dtype=np.int64)
    slots[perm] = np.arange(num_groups, dtype=np.int64)
    return RecombinationPlan(
        winners=winners,
        sorted_keys=sorted_keys[first_pos],
        slots=slots,
        inserts=num_groups,
        improvements=improved_total - num_groups,
        recombinations=total - improved_total,
        improved_sources=order[improved_pos],
    )
