"""Beam pruning.

Standard Viterbi beam search pruning: a hypothesis survives if its cost
is within ``beam`` of the best hypothesis in the same frame.  An
optional ``max_active`` cap (histogram pruning) bounds the number of
tokens expanded per frame regardless of the beam, which bounds the
accelerator's worst-case frame latency.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.core.tokens import Token, TokenTable


@dataclass(frozen=True)
class BeamConfig:
    """Pruning parameters.

    Attributes:
        beam: Cost margin over the frame-best hypothesis.
        max_active: Hard cap on tokens expanded per frame (0 = no cap).
    """

    beam: float = 12.0
    max_active: int = 0

    def __post_init__(self) -> None:
        if self.beam <= 0:
            raise ValueError("beam must be positive")
        if self.max_active < 0:
            raise ValueError("max_active must be >= 0")


def prune(table: TokenTable, config: BeamConfig) -> tuple[list[Token], int]:
    """Select the tokens to expand this frame.

    Returns:
        (survivors, pruned_count).
    """
    total = len(table)
    if total == 0:
        return [], 0
    threshold = table.best_cost + config.beam
    survivors = table.survivors(threshold)
    if config.max_active and len(survivors) > config.max_active:
        survivors = heapq.nsmallest(
            config.max_active, survivors, key=lambda t: t.cost
        )
    return survivors, total - len(survivors)


def frame_threshold(table: TokenTable, config: BeamConfig) -> float:
    """The pruning threshold the current frame operates under."""
    if len(table) == 0:
        return math.inf
    return table.best_cost + config.beam
