"""Lockstep cross-utterance batched Viterbi decoding.

One utterance at a time, the vectorized decoder already spends its
frames in a handful of numpy calls — but each call runs over only that
utterance's active tokens, so B concurrent utterances (a batch decode,
or B serve sessions) pay B small-array dispatch overheads per frame.
This module advances B utterances *in lockstep*: per frame, the
segments' active-token SoA columns are concatenated with a segment-id
column and the emitting expansion, Viterbi recombination and the
epsilon/back-off phase run as single fused numpy calls over the
concatenation — the software analogue of Braun et al.'s GPU batched
decoder (arXiv:1910.10032) and of the multi-channel sharing UNFOLD's
on-the-fly design enables (Section 3: small per-channel state instead
of a giant composed WFST per stream).

Exactness is non-negotiable: a fused step must be bit-identical, per
segment, to the frame body of
:meth:`~repro.core.decoder.OnTheFlyDecoder.decode`.  The construction
that makes this work:

* Fused recombination keys are ``seg * K + am * num_lm + lm`` with
  ``K = num_am * num_lm``, so segments occupy disjoint key bands and a
  single :func:`~repro.core.arcs.plan_recombination` call replays every
  segment's sequential insert order at once.  Candidates are laid out
  segment-major in solo arrival order, so the plan's first-arrival
  winner order, sorted keys and slots all split back into per-segment
  slices (the per-segment views are handed straight to ``bulk_fill``).
* Beam thresholds are per-segment (each table's own ``best_cost``);
  the fused prune masks against ``thr[seg_ids]``.
* LM resolution stays per-segment: each segment owns a *forked*
  :class:`~repro.core.composition.LmLookup` (fresh OLT + expansion
  cache over the shared graph arrays), so its cache evolution — and
  therefore every lookup counter — matches a solo cold decode exactly.
* Ragged lengths retire finished segments mid-batch: a retired
  segment simply stops appearing in the fused arrays.
"""

from __future__ import annotations

import numpy as np

from repro.core.arcs import plan_recombination, stable_cost_order
from repro.core.decoder import DecodeResult, DecoderStats, OnTheFlyDecoder
from repro.core.lattice import WordLattice
from repro.core.tokens import SoaTokenTable
from repro.wfst.fst import EPSILON

__all__ = [
    "BatchDecoder",
    "BatchSegment",
    "lockstep_supported",
    "step_segments",
]


class BatchSegment:
    """One utterance's (or session's) live state inside a lockstep batch.

    The fused kernel reads and writes exactly these fields; anything
    holding them — the offline :class:`BatchDecoder`, the streaming
    multi-session API — can be stepped.
    """

    __slots__ = (
        "table",
        "lattice",
        "stats",
        "lookup",
        "frame",
        "scores",
        "num_frames",
        "index",
    )

    def __init__(
        self,
        table: SoaTokenTable,
        lookup,
        lattice: WordLattice | None = None,
        stats: DecoderStats | None = None,
        frame: int = 0,
        scores: np.ndarray | None = None,
        index: int = 0,
    ) -> None:
        self.table = table
        self.lattice = lattice if lattice is not None else WordLattice()
        self.stats = stats if stats is not None else DecoderStats()
        self.lookup = lookup
        #: Index of the next frame this segment consumes (the lattice
        #: frame stamp of its epsilon-phase word arrivals).
        self.frame = frame
        self.scores = scores
        self.num_frames = scores.shape[0] if scores is not None else 0
        self.index = index

    @property
    def done(self) -> bool:
        return self.frame >= self.num_frames


def lockstep_supported(decoder: OnTheFlyDecoder) -> bool:
    """Whether the fused kernel preserves ``decoder``'s solo semantics.

    The same gates the solo decode uses to pick its fast paths: the
    vectorized emitting expansion (no trace sink, pure-emitting AM) and
    the batched epsilon phase (single-level epsilon graph, non-negative
    weights).  Anything else falls back to sequential decoding.
    """
    return (
        decoder.config.vectorized
        and not decoder._tracing
        and decoder._arcs.pure_emitting
        and decoder._epsilon_batchable()
    )


def _step_single(
    decoder: OnTheFlyDecoder, seg: BatchSegment, row: np.ndarray
) -> None:
    """The solo frame body, against one segment's state.

    Ragged batches end in a tail where only the longest utterance is
    still live; fusion machinery (concatenation, segment ids, slice
    splitting) would only add copies there, so a single live segment
    steps through the decoder's own frame body — bit-identity is by
    construction.
    """
    beam_config = decoder.config.beam_config()
    stats = seg.stats
    next_table, num_survivors, frame_expansions, pruned = (
        decoder._expand_frame_vectorized(
            seg.table, row, beam_config, encoded_order=True
        )
    )
    stats.beam_pruned += pruned
    stats.am_state_fetches += num_survivors
    stats.am_arc_fetches += frame_expansions
    stats.expansions += frame_expansions
    expansions_before = stats.expansions
    probes_before = seg.lookup.stats.arc_probes
    writes_before = stats.token_writes
    decoder._epsilon_phase_batched(
        next_table,
        seg.frame,
        seg.lattice,
        stats,
        beam_config,
        lookup=seg.lookup,
    )
    stats.frame_work.append(
        (
            num_survivors,
            frame_expansions + (stats.expansions - expansions_before),
            seg.lookup.stats.arc_probes - probes_before,
            stats.token_writes - writes_before,
        )
    )
    stats.tokens_created += next_table.inserts
    stats.tokens_recombined += next_table.recombinations
    stats.active_history.append(len(next_table))
    seg.table = next_table
    seg.frame += 1


def step_segments(
    decoder: OnTheFlyDecoder,
    segments: list[BatchSegment],
    rows: list[np.ndarray] | np.ndarray,
) -> None:
    """Advance every segment one frame through one fused kernel call.

    ``rows[i]`` is segment ``i``'s acoustic score row for its current
    frame (float64, at least ``num_senones`` wide); a ready-stacked 2-D
    array is used as-is.  Each segment's
    table, lattice, stats and lookup evolve bit-identically to the solo
    decode's frame body; ``seg.table`` is replaced by the next frontier
    and ``seg.frame`` advances.

    Requires :func:`lockstep_supported` on ``decoder``; callers gate.
    """
    n = len(segments)
    if n == 0:
        return
    if n == 1:
        _step_single(decoder, segments[0], rows[0])
        return
    config = decoder.config
    beam_config = config.beam_config()
    beam = beam_config.beam
    max_active = beam_config.max_active
    num_lm = decoder._num_lm
    num_am = decoder.am.fst.num_states
    seg_span = np.int64(num_am) * np.int64(num_lm)
    num_senones = decoder.am.num_senones
    arcs = decoder._arcs
    scale = config.acoustic_scale

    # -- fused frontier (segment-major, solo order within segments) ---
    cols = [seg.table.columns() for seg in segments]
    counts = np.array([c[0].shape[0] for c in cols], dtype=np.int64)
    am_f = np.concatenate([c[0] for c in cols])
    lm_f = np.concatenate([c[1] for c in cols])
    cost_f = np.concatenate([c[2] for c in cols])
    node_f = np.concatenate([c[3] for c in cols])
    seg_ids = np.repeat(np.arange(n, dtype=np.int64), counts)

    # -- fused beam prune (per-segment thresholds) ---------------------
    thr = np.array([seg.table.best_cost for seg in segments]) + beam
    keep = np.flatnonzero(cost_f <= thr[seg_ids])
    kept_counts = np.bincount(seg_ids[keep], minlength=n)
    pruned_counts = counts - kept_counts
    if max_active and bool(np.any(kept_counts > max_active)):
        # Capped segments keep their max_active best in stable cost
        # order — exactly the solo truncation (survivor order matters:
        # it is the candidate arrival order recombination replays).
        col_off = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        bounds = np.searchsorted(keep, col_off)
        parts = []
        for i in range(n):
            part = keep[bounds[i] : bounds[i + 1]]
            if part.shape[0] > max_active:
                part = part[stable_cost_order(cost_f[part])[:max_active]]
                pruned_counts[i] = counts[i] - max_active
                kept_counts[i] = max_active
            parts.append(part)
        keep = np.concatenate(parts)

    # -- fused emitting expansion --------------------------------------
    token_index, flat = arcs.gather(am_f[keep])
    num_cand = int(flat.shape[0])
    plan = None
    if num_cand:
        cand_src = keep[token_index]
        seg_cand = seg_ids[cand_src]
        cand_counts = np.bincount(seg_cand, minlength=n)
        if isinstance(rows, np.ndarray) and rows.ndim == 2:
            rows2d = rows[:, :num_senones]
        else:
            rows2d = np.stack([r[:num_senones] for r in rows])
        cand_cost = (
            cost_f[cand_src]
            + arcs.weight[flat]
            - scale * rows2d[seg_cand, arcs.score_index[flat]]
        )
        cand_next = arcs.nextstate[flat]
        cand_lm = lm_f[cand_src]
        keys = (
            seg_cand * seg_span
            + cand_next * np.int64(num_lm)
            + cand_lm
        )
        plan = plan_recombination(keys, cand_cost, encoded_order=True)
        winners = plan.winners
        win_next = cand_next[winners]
        win_lm = cand_lm[winners]
        win_cost = cand_cost[winners]
        win_node = node_f[cand_src[winners]]
        # Winners/sorted keys/slots are segment-major (disjoint key
        # bands + segment-major arrival order), so each segment's share
        # is a slice.
        win_off = np.searchsorted(seg_cand[winners], np.arange(n + 1))
        key_off = np.searchsorted(
            plan.sorted_keys, np.arange(n + 1) * seg_span
        )
        imp_counts = np.bincount(
            seg_cand[plan.improved_sources], minlength=n
        )

    next_tables: list[SoaTokenTable] = []
    for i in range(n):
        table = SoaTokenTable(num_lm)
        if plan is not None:
            wa, wb = int(win_off[i]), int(win_off[i + 1])
            if wb > wa:
                ka, kb = int(key_off[i]), int(key_off[i + 1])
                table.bulk_fill(
                    win_next[wa:wb],
                    win_lm[wa:wb],
                    win_cost[wa:wb],
                    win_node[wa:wb],
                    plan.sorted_keys[ka:kb] - np.int64(i) * seg_span,
                    plan.slots[ka:kb] - wa,
                    int(imp_counts[i]) - (wb - wa),
                    int(cand_counts[i]) - int(imp_counts[i]),
                )
        next_tables.append(table)

    # -- per-segment bookkeeping, exactly the solo frame body's --------
    eps_marks = []
    for i, seg in enumerate(segments):
        stats = seg.stats
        stats.beam_pruned += int(pruned_counts[i])
        stats.am_state_fetches += int(kept_counts[i])
        fe = int(cand_counts[i]) if num_cand else 0
        stats.am_arc_fetches += fe
        stats.expansions += fe
        eps_marks.append(
            (
                stats.expansions,
                seg.lookup.stats.arc_probes,
                stats.token_writes,
                fe,
            )
        )

    _epsilon_fused(decoder, segments, next_tables)

    for i, seg in enumerate(segments):
        stats = seg.stats
        exp_before, probes_before, writes_before, fe = eps_marks[i]
        stats.frame_work.append(
            (
                int(kept_counts[i]),
                fe + (stats.expansions - exp_before),
                seg.lookup.stats.arc_probes - probes_before,
                stats.token_writes - writes_before,
            )
        )
        table = next_tables[i]
        stats.tokens_created += table.inserts
        stats.tokens_recombined += table.recombinations
        stats.active_history.append(len(table))
        seg.table = table
        seg.frame += 1


def _epsilon_fused(
    decoder: OnTheFlyDecoder,
    segments: list[BatchSegment],
    tables: list[SoaTokenTable],
) -> None:
    """The batched epsilon phase, fused across segments.

    The numpy work — seed selection, threshold prune, CSR gather, cost
    arithmetic, slot hints — runs once over the concatenation; the LM
    resolution and the commit loop run per segment, against the
    segment's own lookup, lattice and frame index (resolution *must*
    stay per-segment: each fork's OLT/expansion-cache evolution is what
    makes its counters match a solo decode).  Word items reach
    ``resolve_batch`` in the same order and count as the solo phase's
    call, so the replay-vs-vectorized path choice and every counter
    land identically.
    """
    n = len(segments)
    eps = decoder._eps_arcs
    flags = decoder._epsilon_flags
    num_lm = decoder._num_lm
    beam = decoder.config.beam
    preemptive = decoder.config.preemptive_pruning

    cols = [t.columns() for t in tables]
    counts = np.array([c[0].shape[0] for c in cols], dtype=np.int64)
    am_f = np.concatenate([c[0] for c in cols])
    if am_f.shape[0] == 0:
        return
    lm_f = np.concatenate([c[1] for c in cols])
    cost_f = np.concatenate([c[2] for c in cols])
    node_f = np.concatenate([c[3] for c in cols])
    seg_ids = np.repeat(np.arange(n, dtype=np.int64), counts)

    # Seeds pop off the end of the solo worklist: reverse table order,
    # *within* each segment.
    pos = np.flatnonzero(flags[am_f])
    if pos.shape[0] == 0:
        return
    seg_pos = seg_ids[pos]
    seed_counts = np.bincount(seg_pos, minlength=n)
    offs = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(seed_counts)]
    )
    ar = np.arange(pos.shape[0], dtype=np.int64)
    seed_pos = pos[offs[seg_pos] + offs[seg_pos + 1] - 1 - ar]

    thr = np.array([t.best_cost for t in tables]) + beam
    seg_seed = seg_ids[seed_pos]
    keepm = cost_f[seed_pos] <= thr[seg_seed]
    keep_pos = seed_pos[keepm]
    seg_keep = seg_seed[keepm]
    kept = np.bincount(seg_keep, minlength=n)
    for i, seg in enumerate(segments):
        seg.stats.beam_pruned += int(seed_counts[i] - kept[i])
    if keep_pos.shape[0] == 0:
        return

    token_index, flat = eps.gather(am_f[keep_pos])
    seg_pair = seg_keep[token_index]
    pair_counts = np.bincount(seg_pair, minlength=n)
    for i, seg in enumerate(segments):
        seg.stats.am_arc_fetches += int(pair_counts[i])
        seg.stats.expansions += int(pair_counts[i])
    num_pairs = int(flat.shape[0])
    if num_pairs == 0:
        return

    olabels = eps.olabel[flat]
    pair_pos = keep_pos[token_index]
    base_cost = cost_f[pair_pos] + eps.weight[flat]
    pair_lm = lm_f[pair_pos]
    dest_am = eps.nextstate[flat]
    pair_node = node_f[pair_pos]

    is_word = olabels != EPSILON
    final_cost = base_cost.copy()
    final_lm = pair_lm.copy()
    committed = np.ones(num_pairs, dtype=bool)
    p_off = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(pair_counts)]
    )
    for i, seg in enumerate(segments):
        a, b = int(p_off[i]), int(p_off[i + 1])
        if a == b:
            continue
        w_loc = np.flatnonzero(is_word[a:b])
        if w_loc.shape[0] == 0:
            continue
        g = a + w_loc
        result = seg.lookup.resolve_batch(
            pair_lm[g],
            olabels[g],
            base_cost[g],
            threshold=float(thr[i]),
            preemptive=preemptive,
        )
        seg.stats.preemptive_pruned += int(np.count_nonzero(result.pruned))
        final_cost[g] += result.weight
        final_lm[g] = result.next_state
        committed[g] = ~result.pruned

    keys = dest_am * np.int64(num_lm) + final_lm
    fc = final_cost.tolist()
    fl = final_lm.tolist()
    da = dest_am.tolist()
    pn = pair_node.tolist()
    ol = olabels.tolist()
    iw = is_word.tolist()
    cm = committed.tolist()
    for i, seg in enumerate(segments):
        a, b = int(p_off[i]), int(p_off[i + 1])
        if a == b:
            continue
        table = tables[i]
        hints = table.base_slot_hints(keys[a:b]).tolist()
        add = seg.lattice.add
        insert = table.insert_hinted
        frame = seg.frame
        words_done = 0
        for j in range(a, b):
            if not cm[j]:
                continue
            cost = fc[j]
            if iw[j]:
                node = add(ol[j], frame, cost, pn[j])
                words_done += 1
                insert(da[j], fl[j], cost, node, hints[j - a])
            else:
                insert(da[j], fl[j], cost, pn[j], hints[j - a])
        seg.stats.token_writes += words_done
        seg.stats.words_emitted += words_done


class BatchDecoder:
    """Decode batches of utterances in lockstep through fused kernels.

    Wraps an :class:`~repro.core.decoder.OnTheFlyDecoder`; utterances
    are processed in waves of ``batch_size``, each wave advancing one
    frame per :func:`step_segments` call.  Every segment decodes
    against a fork of the decoder's lookup (cold OLT + expansion
    cache), so results, stats, lattices and lookup counters are
    bit-identical to decoding each utterance alone after
    ``lookup.reset_transient_state()`` — the same determinism contract
    as the process pool's.

    When the decoder can't take the fused path (trace sink attached,
    scalar config, multi-level epsilon graph) ``decode`` transparently
    falls back to exactly that sequential reference.
    """

    def __init__(
        self, decoder: OnTheFlyDecoder, batch_size: int = 8
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.decoder = decoder
        self.batch_size = batch_size
        #: Fused kernel invocations across all decodes (the bench's
        #: kernel-calls metric; a solo decode costs one per frame).
        self.kernel_calls = 0

    @property
    def lockstep_supported(self) -> bool:
        return lockstep_supported(self.decoder)

    def decode(self, score_matrices: list[np.ndarray]) -> list[DecodeResult]:
        """Decode a batch; results are in input order."""
        decoder = self.decoder
        num_senones = decoder.am.num_senones
        matrices = []
        for scores in score_matrices:
            if scores.ndim != 2 or scores.shape[1] < num_senones:
                raise ValueError(
                    f"score matrix shape {scores.shape} incompatible "
                    f"with {num_senones} senones"
                )
            matrices.append(np.ascontiguousarray(scores, dtype=np.float64))
        if not self.lockstep_supported:
            out = []
            for scores in matrices:
                decoder.lookup.reset_transient_state()
                out.append(decoder.decode(scores))
            return out
        results: list[DecodeResult | None] = [None] * len(matrices)
        label = f"batch[{self.batch_size}]"
        for start in range(0, len(matrices), self.batch_size):
            chunk = matrices[start : start + self.batch_size]
            wave = [
                self._new_segment(scores, start + j)
                for j, scores in enumerate(chunk)
            ]
            # One padded (B, T, senones) tensor per wave: each step's
            # stacked score rows become a single fancy-index gather.
            t_max = max(s.shape[0] for s in chunk)
            pad = np.zeros((len(chunk), max(t_max, 1), num_senones))
            for j, scores in enumerate(chunk):
                pad[j, : scores.shape[0]] = scores[:, :num_senones]
            while True:
                active = [seg for seg in wave if not seg.done]
                if not active:
                    break
                # Active segments advance together, so they share a
                # frame index; retired ones just drop out of the gather.
                frame = active[0].frame
                idx = np.array(
                    [seg.index - start for seg in active], dtype=np.int64
                )
                step_segments(decoder, active, pad[idx, frame])
                self.kernel_calls += 1
            for seg in wave:
                results[seg.index] = self._finish(seg, label)
        return results

    def _new_segment(self, scores: np.ndarray, index: int) -> BatchSegment:
        decoder = self.decoder
        table = SoaTokenTable(decoder._num_lm)
        table.insert(decoder.am.loop_state, decoder.lm.fst.start, 0.0, -1)
        return BatchSegment(
            table=table,
            lookup=decoder.lookup.fork(),
            scores=scores,
            index=index,
        )

    def _finish(self, seg: BatchSegment, label: str) -> DecodeResult:
        stats = seg.stats
        stats.frames = seg.num_frames
        # The fork started from zero, so its running totals *are* this
        # utterance's delta — what decode() reports per utterance.
        stats.lookup = self.decoder._snapshot_lookup(seg.lookup)
        result = self.decoder._finalize(seg.table, seg.lattice, stats)
        result.strategy = label
        return result
