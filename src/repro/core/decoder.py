"""The on-the-fly composition Viterbi decoder (the paper's core).

Frame-synchronous beam search over the pair graph (AM state, LM state)
— Figure 3c.  The AM drives the search: emitting arcs consume acoustic
scores; when a cross-word transition is reached, the LM lookup engine
(``repro.core.composition``) locates the matching LM arc, walking
back-off arcs as needed, and the hypothesis is rescored.  The
fully-composed WFST is never materialized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.am.graph import AmGraph
from repro.core.arcs import (
    EmittingArcs,
    EpsilonArcs,
    LmWordArcs,
    plan_recombination,
    stable_cost_order,
)
from repro.core.beam import BeamConfig, prune
from repro.core.composition import LmLookup, LookupStats, LookupStrategy
from repro.core.lattice import COMPACT_RECORD_BYTES, RAW_RECORD_BYTES, WordLattice
from repro.core.tokens import SoaTokenTable, TokenTable
from repro.core.trace import GraphSide, NullSink, TraceSink
from repro.lm.graph import LmGraph
from repro.wfst.fst import EPSILON


@dataclass(frozen=True)
class DecoderConfig:
    """Search parameters shared by the on-the-fly and baseline decoders."""

    beam: float = 12.0
    max_active: int = 0
    acoustic_scale: float = 1.0
    lookup_strategy: LookupStrategy = LookupStrategy.OFFSET_TABLE
    offset_table_entries: int = 32 * 1024
    preemptive_pruning: bool = True
    #: Word-lattice record format: compact (Price [22], UNFOLD's choice)
    #: or the raw 16-byte records of the MICRO-49 baseline.
    compact_lattice: bool = True
    #: Bulk-numpy emitting expansion.  Ignored (scalar path forced)
    #: whenever a real TraceSink is attached: cycle-level simulation
    #: needs exact per-event ordering.  Both paths produce identical
    #: results and DecoderStats.
    vectorized: bool = True
    #: LM expansion cache capacity, in LM states (the software analogue
    #: of the paper's LM arc cache).  Only the batched epsilon engine
    #: consults it; rows are graph-derived, so capacity can never
    #: change results — only how much search work is re-spent.
    expansion_cache_states: int = 1024
    #: Record a per-phase wall-clock breakdown of each decode on the
    #: decoder's ``last_phase_seconds`` (perf harness support).
    profile: bool = False

    def beam_config(self) -> BeamConfig:
        return BeamConfig(beam=self.beam, max_active=self.max_active)


@dataclass
class DecoderStats:
    """Aggregate activity of one decode (feeds the accelerator model)."""

    frames: int = 0
    tokens_created: int = 0
    tokens_recombined: int = 0
    beam_pruned: int = 0
    preemptive_pruned: int = 0
    expansions: int = 0
    words_emitted: int = 0
    am_state_fetches: int = 0
    am_arc_fetches: int = 0
    token_writes: int = 0
    active_history: list[int] = field(default_factory=list)
    #: Per-frame (survivors, expansions, lm_probes, token_writes) — the
    #: work vectors the throughput pipeline model consumes.
    frame_work: list[tuple[int, int, int, int]] = field(default_factory=list)
    lookup: LookupStats = field(default_factory=LookupStats)

    @property
    def avg_active_tokens(self) -> float:
        if not self.active_history:
            return 0.0
        return sum(self.active_history) / len(self.active_history)

    @property
    def total_hypotheses(self) -> int:
        """Hypotheses considered: expansions plus preemptively pruned ones."""
        return self.expansions + self.preemptive_pruned


@dataclass
class DecodeResult:
    """Output of one utterance decode."""

    word_ids: list[int]
    words: list[str]
    cost: float
    stats: DecoderStats
    lattice: WordLattice
    #: Final hypotheses as (total cost, lattice node), best first.
    finals: list[tuple[float, int]] = field(default_factory=list)
    #: How this result was produced: ``"serial"``, ``"pool[N]"``, or
    #: ``"batch[B]"``.  Informational only — every strategy yields
    #: bit-identical results; benches and the 1-CPU fallback report it.
    strategy: str = "serial"

    @property
    def success(self) -> bool:
        return math.isfinite(self.cost)

    def nbest(self, n: int) -> list[tuple[float, list[int]]]:
        """Up to ``n`` distinct word sequences, best first.

        Viterbi recombination keeps one token per (AM, LM) state pair,
        so alternatives are the surviving word-boundary hypotheses —
        the same n-best a lattice consumer would extract.
        """
        out: list[tuple[float, list[int]]] = []
        seen: set[tuple[int, ...]] = set()
        for cost, node in self.finals:
            words = self.lattice.backtrace(node) if node >= 0 else []
            key = tuple(words)
            if key in seen:
                continue
            seen.add(key)
            out.append((cost, words))
            if len(out) >= n:
                break
        return out


@dataclass(frozen=True)
class DecoderTables:
    """Every graph-derived array a decoder needs, prebuilt.

    The numeric heart of a recognizer: the AM's emitting and epsilon
    CSR columns, the LM's word-arc columns with flattened back-off
    chains, and the per-LM-state final weights.  A decoder constructed
    with ``tables=`` never walks the graphs — which is what lets
    :mod:`repro.shm` hand N worker processes zero-copy read-only views
    of one shared segment instead of N private copies.
    """

    emitting: EmittingArcs
    epsilon: EpsilonArcs
    lm_word_arcs: LmWordArcs
    #: float64 per LM state, ``inf`` when non-final.
    lm_final_weights: np.ndarray

    @classmethod
    def from_graphs(cls, am: AmGraph, lm: LmGraph) -> "DecoderTables":
        return cls(
            emitting=EmittingArcs.from_fst(am.fst),
            epsilon=EpsilonArcs.from_fst(am.fst),
            lm_word_arcs=LmWordArcs.from_graph(lm),
            lm_final_weights=np.array(
                [lm.fst.final_weight(s) for s in lm.fst.states()],
                dtype=np.float64,
            ),
        )


class OnTheFlyDecoder:
    """UNFOLD's decoding algorithm, functionally modelled.

    The decoder is reusable across utterances; the Offset Lookup Table
    persists between utterances (as the hardware table would), while
    token tables and lattices are per-utterance.
    """

    def __init__(
        self,
        am: AmGraph,
        lm: LmGraph,
        config: DecoderConfig | None = None,
        sink: TraceSink | None = None,
        tables: DecoderTables | None = None,
    ) -> None:
        self.am = am
        self.lm = lm
        self.config = config or DecoderConfig()
        self.sink = sink or NullSink()
        # Purely functional runs skip per-event sink calls in the hot loop.
        self._tracing = not isinstance(self.sink, NullSink)
        self.tables = tables
        self.lookup = LmLookup(
            lm,
            strategy=self.config.lookup_strategy,
            offset_table_entries=self.config.offset_table_entries,
            sink=self.sink,
            expansion_cache_states=self.config.expansion_cache_states,
            word_arcs=tables.lm_word_arcs if tables is not None else None,
        )
        if tables is None:
            # Dense per-state arc views for the scalar hot loop, plus
            # CSR columns for the vectorized emitting expansion and the
            # batched epsilon phase.
            fst = am.fst
            self._scalar_emitting = [
                [
                    (i, a)
                    for i, a in enumerate(fst.out_arcs(s))
                    if a.ilabel != EPSILON
                ]
                for s in fst.states()
            ]
            self._scalar_epsilon = [
                [
                    (i, a)
                    for i, a in enumerate(fst.out_arcs(s))
                    if a.ilabel == EPSILON
                ]
                for s in fst.states()
            ]
            self._arcs = EmittingArcs.from_fst(fst)
            self._eps_arcs = EpsilonArcs.from_fst(fst)
            self._lm_final_w = np.array(
                [lm.fst.final_weight(s) for s in lm.fst.states()],
                dtype=np.float64,
            )
        else:
            # Prebuilt (typically shared-memory) columns: the scalar
            # per-state views rebuild lazily from them — only the
            # scalar/traced paths want them, and the vectorized serving
            # stack never does, keeping per-process private state small.
            self._scalar_emitting = None
            self._scalar_epsilon = None
            self._arcs = tables.emitting
            self._eps_arcs = tables.epsilon
            self._lm_final_w = tables.lm_final_weights
        self._batched_epsilon_ok: bool | None = None  # resolved lazily
        self._num_lm = lm.fst.num_states
        self._epsilon_flags = self._eps_arcs.has_arcs
        #: Wall-clock phase breakdown of the last decode (when
        #: ``config.profile``): expand (prune + emitting), epsilon,
        #: other (bookkeeping + finalize), total — in seconds.
        self.last_phase_seconds: dict[str, float] | None = None

    @property
    def _emitting(self) -> list:
        lists = self._scalar_emitting
        if lists is None:
            lists = self._arcs.to_arc_lists()
            self._scalar_emitting = lists
        return lists

    @property
    def _epsilon(self) -> list:
        lists = self._scalar_epsilon
        if lists is None:
            lists = self._eps_arcs.to_arc_lists()
            self._scalar_epsilon = lists
        return lists

    def decode(self, scores: np.ndarray) -> DecodeResult:
        """Decode one utterance from its acoustic score matrix."""
        if scores.ndim != 2 or scores.shape[1] < self.am.num_senones:
            raise ValueError(
                f"score matrix shape {scores.shape} incompatible with "
                f"{self.am.num_senones} senones"
            )
        config = self.config
        beam_config = config.beam_config()
        stats = DecoderStats()
        start_lookup = self._snapshot_lookup()
        lattice = WordLattice()
        sink = self.sink

        num_frames = scores.shape[0]
        tracing = self._tracing
        # Both paths see bit-identical float64 score values (the scalar
        # path consumed widened Python floats already).
        scores = np.ascontiguousarray(scores, dtype=np.float64)
        vectorized = (
            config.vectorized and not tracing and self._arcs.pure_emitting
        )
        batched_epsilon = vectorized and self._epsilon_batchable()
        profile = config.profile
        expand_seconds = epsilon_seconds = 0.0
        started = perf_counter() if profile else 0.0

        current: TokenTable | SoaTokenTable = (
            SoaTokenTable(self._num_lm) if vectorized else TokenTable()
        )
        current.insert(self.am.loop_state, self.lm.fst.start, 0.0, -1)
        # Plain-list scores: per-element numpy indexing dominates the
        # scalar hot loop otherwise.  Converted once for all frames.
        rows = None if vectorized else scores.tolist()

        for frame in range(num_frames):
            mark = perf_counter() if profile else 0.0
            if vectorized:
                next_table, num_survivors, frame_expansions, pruned = (
                    self._expand_frame_vectorized(
                        current, scores[frame], beam_config
                    )
                )
            else:
                survivors, pruned = prune(current, beam_config)
                num_survivors = len(survivors)
                next_table = TokenTable()
                frame_expansions = self._expand_emitting_scalar(
                    survivors, rows[frame], next_table
                )
            if profile:
                expand_seconds += perf_counter() - mark
            stats.beam_pruned += pruned
            stats.am_state_fetches += num_survivors
            stats.am_arc_fetches += frame_expansions
            stats.expansions += frame_expansions
            expansions_before = stats.expansions
            probes_before = self.lookup.stats.arc_probes
            writes_before = stats.token_writes
            mark = perf_counter() if profile else 0.0
            if batched_epsilon:
                self._epsilon_phase_batched(
                    next_table, frame, lattice, stats, beam_config
                )
            else:
                self._epsilon_phase(
                    next_table, frame, lattice, stats, beam_config
                )
            if profile:
                epsilon_seconds += perf_counter() - mark
            stats.frame_work.append(
                (
                    num_survivors,
                    frame_expansions + (stats.expansions - expansions_before),
                    self.lookup.stats.arc_probes - probes_before,
                    stats.token_writes - writes_before,
                )
            )
            stats.tokens_created += next_table.inserts
            stats.tokens_recombined += next_table.recombinations
            stats.active_history.append(len(next_table))
            if tracing:
                sink.on_frame_end(frame, len(next_table))
            current = next_table
        stats.frames = num_frames
        stats.lookup = self._lookup_delta(start_lookup)
        result = self._finalize(current, lattice, stats)
        if profile:
            total = perf_counter() - started
            self.last_phase_seconds = {
                "expand": expand_seconds,
                "epsilon": epsilon_seconds,
                "other": total - expand_seconds - epsilon_seconds,
                "total": total,
            }
        return result

    def _expand_emitting_scalar(
        self,
        survivors: list,
        frame_scores: list[float],
        next_table: TokenTable,
    ) -> int:
        """One frame's emitting expansion, token by token.

        The reference path: always used when a TraceSink is attached
        (exact per-event ordering), and shared with the streaming
        session, which expands frames incrementally.
        """
        sink = self.sink
        tracing = self._tracing
        emitting = self._emitting
        scale = self.config.acoustic_scale
        insert = next_table.insert
        frame_expansions = 0
        for token in survivors:
            am_state = token.am_state
            lm_state = token.lm_state
            token_cost = token.cost
            lattice_node = token.lattice_node
            if tracing:
                sink.on_state_fetch(GraphSide.AM, am_state)
                sink.on_token_hash_access(am_state, lm_state)
            arcs = emitting[am_state]
            frame_expansions += len(arcs)
            for ordinal, arc in arcs:
                if tracing:
                    sink.on_arc_fetch(GraphSide.AM, am_state, ordinal)
                cost = (
                    token_cost
                    + arc.weight
                    - scale * frame_scores[arc.ilabel - 1]
                )
                insert(arc.nextstate, lm_state, cost, lattice_node)
        return frame_expansions

    def _expand_frame_vectorized(
        self,
        table: SoaTokenTable,
        score_row: np.ndarray,
        beam_config: BeamConfig,
        encoded_order: bool = False,
    ) -> tuple[SoaTokenTable, int, int, int]:
        """Prune + emitting expansion for one frame, in bulk numpy.

        Replicates the scalar path exactly: same survivor set in the
        same order (``heapq.nsmallest`` is stable, so a stable cost
        argsort reproduces it), candidate costs computed with the same
        operation order on the same float64 values, and sequential
        recombination outcomes replayed by :func:`plan_recombination`.

        ``encoded_order`` swaps the two stable sorts for their
        bit-identical encoded-introsort equivalents (the lockstep batch
        path opts in; the solo profile stays untouched).

        Returns (next_table, num_survivors, frame_expansions, pruned).
        """
        am_col, lm_col, cost_col, node_col = table.columns()
        total = am_col.shape[0]
        next_table = SoaTokenTable(self._num_lm)
        if total == 0:
            return next_table, 0, 0, 0
        threshold = table.best_cost + beam_config.beam
        keep = np.flatnonzero(cost_col <= threshold)
        pruned = total - keep.shape[0]
        max_active = beam_config.max_active
        if max_active and keep.shape[0] > max_active:
            kept_costs = cost_col[keep]
            order = (
                stable_cost_order(kept_costs)
                if encoded_order
                else np.argsort(kept_costs, kind="stable")
            )
            keep = keep[order[:max_active]]
            pruned = total - max_active
        num_survivors = int(keep.shape[0])
        arcs = self._arcs
        token_index, flat = arcs.gather(am_col[keep])
        frame_expansions = int(flat.shape[0])
        if frame_expansions == 0:
            return next_table, num_survivors, 0, pruned
        survivor_cost = cost_col[keep]
        survivor_lm = lm_col[keep]
        candidate_cost = (
            survivor_cost[token_index]
            + arcs.weight[flat]
            - self.config.acoustic_scale * score_row[arcs.score_index[flat]]
        )
        candidate_next = arcs.nextstate[flat]
        candidate_lm = survivor_lm[token_index]
        keys = candidate_next * np.int64(self._num_lm) + candidate_lm
        plan = plan_recombination(keys, candidate_cost, encoded_order)
        winners = plan.winners
        next_table.bulk_fill(
            candidate_next[winners],
            candidate_lm[winners],
            candidate_cost[winners],
            node_col[keep][token_index[winners]],
            plan.sorted_keys,
            plan.slots,
            plan.improvements,
            plan.recombinations,
        )
        return next_table, num_survivors, frame_expansions, pruned

    def _epsilon_batchable(self) -> bool:
        """Whether the batched epsilon phase preserves scalar semantics.

        Three conditions, checked once per decoder: the epsilon graph
        must be single-level (the phase's worklist never grows, so the
        whole phase is a function of its seeds), and both the epsilon
        arc weights and the LM's costs must be non-negative (no
        within-phase insert can beat ``best_cost``, so the frame's
        pruning threshold — which the scalar loop re-reads per token —
        is constant).  Anything else falls back to the scalar loop.
        """
        ok = self._batched_epsilon_ok
        if ok is None:
            ok = (
                self._eps_arcs.single_level
                and self._eps_arcs.nonneg_weights
                and self.lookup.batch_supported
            )
            self._batched_epsilon_ok = ok
        return ok

    def _epsilon_phase_batched(
        self,
        table: SoaTokenTable,
        frame: int,
        lattice: WordLattice,
        stats: DecoderStats,
        beam_config: BeamConfig,
        lookup: LmLookup | None = None,
    ) -> None:
        """One frame's epsilon phase as batched composition.

        Replays the scalar loop exactly under the :meth:`_epsilon_batchable`
        gates: seeds are processed in the worklist's pop order (reverse
        table order), LM transitions resolve through
        :meth:`LmLookup.resolve_batch` (bit-identical weights and
        lookup counters, including the OLT's evolution), and the
        surviving arrivals are committed to the lattice and token
        table in the same interleaved order the scalar loop used.
        """
        if lookup is None:
            lookup = self.lookup
        am_col, lm_col, cost_col, node_col = table.columns()
        # The worklist pops seeds off the end: reverse table order.
        seed_pos = np.flatnonzero(self._epsilon_flags[am_col])[::-1]
        num_seeds = seed_pos.shape[0]
        if num_seeds == 0:
            return
        threshold = table.best_cost + beam_config.beam
        seed_cost = cost_col[seed_pos]
        keep_pos = seed_pos[seed_cost <= threshold]
        num_keep = keep_pos.shape[0]
        stats.beam_pruned += int(num_seeds - num_keep)
        if num_keep == 0:
            return
        eps = self._eps_arcs
        token_index, flat = eps.gather(am_col[keep_pos])
        num_pairs = int(flat.shape[0])
        stats.am_arc_fetches += num_pairs
        stats.expansions += num_pairs
        if num_pairs == 0:
            return
        olabels = eps.olabel[flat]
        pair_pos = keep_pos[token_index]
        base_cost = cost_col[pair_pos] + eps.weight[flat]
        pair_lm = lm_col[pair_pos]
        dest_am = eps.nextstate[flat]

        is_word = olabels != EPSILON
        word_idx = np.flatnonzero(is_word)
        num_words = int(word_idx.shape[0])
        committed = None
        if num_words == num_pairs:
            # Common AM shape: every epsilon arc is a cross-word arc.
            result = lookup.resolve_batch(
                pair_lm,
                olabels,
                base_cost,
                threshold=threshold,
                preemptive=self.config.preemptive_pruning,
            )
            final_cost = base_cost + result.weight
            final_lm = result.next_state
            pruned = result.pruned
            num_pruned = int(np.count_nonzero(pruned))
            stats.preemptive_pruned += num_pruned
            if num_pruned:
                committed = np.logical_not(pruned).tolist()
        elif num_words:
            result = lookup.resolve_batch(
                pair_lm[word_idx],
                olabels[word_idx],
                base_cost[word_idx],
                threshold=threshold,
                preemptive=self.config.preemptive_pruning,
            )
            stats.preemptive_pruned += int(np.count_nonzero(result.pruned))
            final_cost = base_cost.copy()
            final_cost[word_idx] += result.weight
            final_lm = pair_lm.copy()
            final_lm[word_idx] = result.next_state
            committed_arr = np.ones(num_pairs, dtype=bool)
            committed_arr[word_idx] = ~result.pruned
            committed = committed_arr.tolist()
        else:
            final_cost = base_cost
            final_lm = pair_lm

        keys = dest_am * np.int64(self._num_lm) + final_lm
        hints = table.base_slot_hints(keys).tolist()
        pair_word = is_word.tolist()
        pair_am = dest_am.tolist()
        pair_lm_l = final_lm.tolist()
        pair_cost = final_cost.tolist()
        pair_node = node_col[pair_pos].tolist()
        pair_olabel = olabels.tolist()
        add = lattice.add
        insert = table.insert_hinted
        words_done = 0
        # Single-level gate: no arrival re-enters the worklist, so the
        # scalar loop's remaining work is exactly this commit sequence.
        for i in range(num_pairs):
            if committed is not None and not committed[i]:
                continue
            cost = pair_cost[i]
            if pair_word[i]:
                node = add(pair_olabel[i], frame, cost, pair_node[i])
                words_done += 1
                insert(pair_am[i], pair_lm_l[i], cost, node, hints[i])
            else:
                insert(pair_am[i], pair_lm_l[i], cost, pair_node[i], hints[i])
        stats.token_writes += words_done
        stats.words_emitted += words_done

    def _epsilon_phase(
        self,
        table: TokenTable,
        frame: int,
        lattice: WordLattice,
        stats: DecoderStats,
        beam_config: BeamConfig,
        lookup: LmLookup | None = None,
    ) -> None:
        """Propagate tokens across non-emitting arcs within the frame.

        Cross-word arcs trigger the on-the-fly LM transition; this is
        where the composition actually happens.
        """
        if lookup is None:
            lookup = self.lookup
        config = self.config
        sink = self.sink
        tracing = self._tracing
        is_soa = isinstance(table, SoaTokenTable)
        if is_soa:
            worklist = table.epsilon_seeds(self._epsilon_flags)
        else:
            worklist = [t for t in list(table) if self._epsilon[t.am_state]]
        while worklist:
            token = worklist.pop()
            if not is_soa:
                # Improvements mutate the live token in place, so this
                # is a no-op identity check kept on the reference path.
                live = table.tokens.get((token.am_state, token.lm_state))
                if live is not token:  # superseded by a better token
                    continue
            threshold = table.best_cost + beam_config.beam
            if token.cost > threshold:
                stats.beam_pruned += 1
                continue
            for ordinal, arc in self._epsilon[token.am_state]:
                if tracing:
                    sink.on_arc_fetch(GraphSide.AM, token.am_state, ordinal)
                stats.am_arc_fetches += 1
                stats.expansions += 1
                base_cost = token.cost + arc.weight
                if arc.olabel == EPSILON:
                    # Silence (or other non-word) epsilon arc.
                    inserted = table.insert(
                        arc.nextstate, token.lm_state, base_cost, token.lattice_node
                    )
                    dest_eps = self._epsilon[arc.nextstate]
                    if inserted and dest_eps:
                        worklist.append(table.tokens[(arc.nextstate, token.lm_state)])
                    continue
                # Cross-word transition: transition in the LM too.
                result = lookup.resolve(
                    token.lm_state,
                    arc.olabel,
                    entry_cost=base_cost,
                    threshold=threshold,
                    preemptive=config.preemptive_pruning,
                )
                if result.pruned:
                    stats.preemptive_pruned += 1
                    continue
                cost = base_cost + result.weight
                node = lattice.add(arc.olabel, frame, cost, token.lattice_node)
                if tracing:
                    sink.on_token_write(
                        COMPACT_RECORD_BYTES
                        if config.compact_lattice
                        else RAW_RECORD_BYTES
                    )
                stats.token_writes += 1
                stats.words_emitted += 1
                inserted = table.insert(arc.nextstate, result.next_state, cost, node)
                if inserted and self._epsilon[arc.nextstate]:
                    worklist.append(table.tokens[(arc.nextstate, result.next_state)])

    def _finalize(
        self, table: TokenTable, lattice: WordLattice, stats: DecoderStats
    ) -> DecodeResult:
        finals: list[tuple[float, int]] = []
        if isinstance(table, SoaTokenTable):
            # Same totals as the scalar loop, without materializing the
            # final frontier token by token.
            am_col, lm_col, cost_col, node_col = table.columns()
            at_loop = np.flatnonzero(am_col == self.am.loop_state)
            totals = cost_col[at_loop] + self._lm_final_w[lm_col[at_loop]]
            finite = np.isfinite(totals)
            finals = list(
                zip(
                    totals[finite].tolist(),
                    node_col[at_loop][finite].tolist(),
                )
            )
        else:
            for token in table:
                if token.am_state != self.am.loop_state:
                    continue  # mid-word hypotheses cannot end the utterance
                final = self.lm.fst.final_weight(token.lm_state)
                total = token.cost + final
                if math.isfinite(total):
                    finals.append((total, token.lattice_node))
        finals.sort()
        if finals:
            best_cost, best_node = finals[0]
            word_ids = lattice.backtrace(best_node) if best_node >= 0 else []
        else:
            best_cost, word_ids = math.inf, []
        words = [self.lm.words.symbol_of(w) for w in word_ids]
        return DecodeResult(
            word_ids=word_ids,
            words=words,
            cost=best_cost,
            stats=stats,
            lattice=lattice,
            finals=finals,
        )

    def _snapshot_lookup(self, lookup: LmLookup | None = None) -> LookupStats:
        s = (lookup or self.lookup).stats
        return LookupStats(
            lookups=s.lookups,
            arc_probes=s.arc_probes,
            olt_hits=s.olt_hits,
            olt_misses=s.olt_misses,
            backoff_arcs_taken=s.backoff_arcs_taken,
            preemptive_prunes=s.preemptive_prunes,
            expansion_hits=s.expansion_hits,
            expansion_misses=s.expansion_misses,
            expansion_evictions=s.expansion_evictions,
        )

    def _lookup_delta(
        self, before: LookupStats, lookup: LmLookup | None = None
    ) -> LookupStats:
        s = (lookup or self.lookup).stats
        return LookupStats(
            lookups=s.lookups - before.lookups,
            arc_probes=s.arc_probes - before.arc_probes,
            olt_hits=s.olt_hits - before.olt_hits,
            olt_misses=s.olt_misses - before.olt_misses,
            backoff_arcs_taken=s.backoff_arcs_taken - before.backoff_arcs_taken,
            preemptive_prunes=s.preemptive_prunes - before.preemptive_prunes,
            expansion_hits=s.expansion_hits - before.expansion_hits,
            expansion_misses=s.expansion_misses - before.expansion_misses,
            expansion_evictions=s.expansion_evictions - before.expansion_evictions,
        )
