"""Tokens and per-frame token tables.

A *token* is one search hypothesis: a pair of states — one in the AM
graph, one in the LM graph (Figure 3c's ``(am, lm)`` nodes) — plus the
accumulated path cost and a back-pointer into the word lattice.

The decoder keeps two token tables, one for the frame being consumed
and one being filled for the next frame, mirroring the accelerator's
two hash tables (Figure 4).  Recombination is Viterbi: inserting a
token that collides with a better one is a no-op.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class Token:
    """One active hypothesis."""

    am_state: int
    lm_state: int
    cost: float
    lattice_node: int = -1

    @property
    def key(self) -> tuple[int, int]:
        return (self.am_state, self.lm_state)


@dataclass
class TokenTable:
    """Best-cost token per (am_state, lm_state) pair.

    Tracks the running best cost so beam thresholds are available
    without a separate pass.
    """

    tokens: dict[tuple[int, int], Token] = field(default_factory=dict)
    best_cost: float = math.inf
    inserts: int = 0
    improvements: int = 0
    recombinations: int = 0

    def insert(
        self, am_state: int, lm_state: int, cost: float, lattice_node: int
    ) -> bool:
        """Insert or Viterbi-recombine; returns True if the token survives."""
        key = (am_state, lm_state)
        existing = self.tokens.get(key)
        if existing is None:
            self.tokens[key] = Token(am_state, lm_state, cost, lattice_node)
            self.inserts += 1
        elif cost < existing.cost:
            existing.cost = cost
            existing.lattice_node = lattice_node
            self.improvements += 1
        else:
            self.recombinations += 1
            return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self):
        return iter(self.tokens.values())

    def clear(self) -> None:
        self.tokens.clear()
        self.best_cost = math.inf
        self.inserts = 0
        self.improvements = 0
        self.recombinations = 0

    def survivors(self, threshold: float) -> list[Token]:
        """Tokens whose cost beats ``threshold`` (beam pruning)."""
        return [t for t in self.tokens.values() if t.cost <= threshold]


_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=np.float64)


class _LazyTokenMap:
    """Dict-of-Token facade over a :class:`SoaTokenTable`.

    Exposes the subset of the ``TokenTable.tokens`` mapping interface
    the epsilon phase uses, creating :class:`Token` objects only for
    the keys actually touched (identity-stable per key).
    """

    __slots__ = ("_table",)

    def __init__(self, table: "SoaTokenTable") -> None:
        self._table = table

    def get(self, key: tuple[int, int], default=None):
        table = self._table
        packed = key[0] * table.num_lm + key[1]
        slot = table.find_slot(packed)
        if slot is None:
            return default
        return table.materialize(packed, slot)

    def __getitem__(self, key: tuple[int, int]) -> Token:
        table = self._table
        packed = key[0] * table.num_lm + key[1]
        slot = table.find_slot(packed)
        if slot is None:
            raise KeyError(key)
        return table.materialize(packed, slot)

    def __len__(self) -> int:
        return len(self._table)

    def values(self):
        table = self._table
        num_lm = table.num_lm
        base_am = table._base_am
        for slot, (am, lm) in enumerate(
            zip(base_am.tolist(), table._base_lm.tolist())
        ):
            yield table.materialize(am * num_lm + lm, slot)
        base_size = base_am.shape[0]
        for index, am in enumerate(table._extra_am):
            yield table.materialize(
                am * num_lm + table._extra_lm[index], base_size + index
            )


class SoaTokenTable:
    """Token table storing the frontier as structure-of-arrays columns.

    The vectorized decoder fills a frame's table in one shot
    (:meth:`bulk_fill`) from the emitting expansion's winner arrays;
    the epsilon phase then mutates it through the same
    ``insert``/``tokens`` interface as :class:`TokenTable`, with
    identical semantics and counters.  Token objects are materialized
    lazily — most frontier entries are only ever read back as arrays by
    the next frame's expansion, and building thousands of objects per
    frame would cost more than the bulk math saves.

    Keys are packed as ``am_state * num_lm + lm_state``.
    """

    def __init__(self, num_lm: int) -> None:
        self.num_lm = num_lm
        self.best_cost = math.inf
        self.inserts = 0
        self.improvements = 0
        self.recombinations = 0
        # Winners of the bulk emitting expansion, as numpy columns...
        self._base_am = _EMPTY_INT
        self._base_lm = _EMPTY_INT
        self._base_cost = _EMPTY_FLOAT
        self._base_node = _EMPTY_INT
        # ...plus scalar arrivals from the epsilon phase.
        self._extra_am: list[int] = []
        self._extra_lm: list[int] = []
        self._extra_cost: list[float] = []
        self._extra_node: list[int] = []
        # Key -> slot: bulk winners are found by binary search over
        # their sorted keys (building a per-frame dict costs more than
        # the handful of epsilon-phase lookups it would serve); epsilon
        # arrivals land in a small dict.
        self._sorted_keys = _EMPTY_INT
        self._slot_for_sorted = _EMPTY_INT
        self._extra_slot: dict[int, int] = {}
        self._materialized: dict[int, Token] = {}
        self.tokens = _LazyTokenMap(self)

    def bulk_fill(
        self,
        am_states: np.ndarray,
        lm_states: np.ndarray,
        costs: np.ndarray,
        nodes: np.ndarray,
        sorted_keys: np.ndarray,
        slots: np.ndarray,
        improvements: int,
        recombinations: int,
    ) -> None:
        """Install the winners of a vectorized emitting expansion.

        Must be called on an empty table.  Winners arrive in
        first-arrival order of their packed keys, so iteration matches
        the sequential decoder's dict insertion order exactly;
        ``sorted_keys``/``slots`` index them for point lookups.
        """
        self._base_am = am_states
        self._base_lm = lm_states
        self._base_cost = costs
        self._base_node = nodes
        self._sorted_keys = sorted_keys
        self._slot_for_sorted = slots
        self.inserts = am_states.shape[0]
        self.improvements = improvements
        self.recombinations = recombinations
        if am_states.shape[0]:
            self.best_cost = float(costs.min())

    def find_slot(self, key: int) -> int | None:
        """Slot of a packed key, or None when absent."""
        sorted_keys = self._sorted_keys
        size = sorted_keys.shape[0]
        if size:
            pos = int(np.searchsorted(sorted_keys, key))
            if pos < size and sorted_keys[pos] == key:
                return int(self._slot_for_sorted[pos])
        return self._extra_slot.get(key)

    def insert(
        self, am_state: int, lm_state: int, cost: float, lattice_node: int
    ) -> bool:
        """Same contract as :meth:`TokenTable.insert`."""
        key = am_state * self.num_lm + lm_state
        slot = self.find_slot(key)
        if slot is None:
            self._extra_slot[key] = self._base_am.shape[0] + len(
                self._extra_am
            )
            self._extra_am.append(am_state)
            self._extra_lm.append(lm_state)
            self._extra_cost.append(cost)
            self._extra_node.append(lattice_node)
            self.inserts += 1
        else:
            base_size = self._base_am.shape[0]
            if slot < base_size:
                current = self._base_cost[slot]
            else:
                current = self._extra_cost[slot - base_size]
            if cost < current:
                if slot < base_size:
                    self._base_cost[slot] = cost
                    self._base_node[slot] = lattice_node
                else:
                    self._extra_cost[slot - base_size] = cost
                    self._extra_node[slot - base_size] = lattice_node
                token = self._materialized.get(key)
                if token is not None:
                    token.cost = cost
                    token.lattice_node = lattice_node
                self.improvements += 1
            else:
                self.recombinations += 1
                return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True

    def materialize(self, key: int, slot: int) -> Token:
        """The (identity-stable) Token object for an occupied slot."""
        token = self._materialized.get(key)
        if token is None:
            base_size = self._base_am.shape[0]
            if slot < base_size:
                token = Token(
                    int(self._base_am[slot]),
                    int(self._base_lm[slot]),
                    float(self._base_cost[slot]),
                    int(self._base_node[slot]),
                )
            else:
                index = slot - base_size
                token = Token(
                    self._extra_am[index],
                    self._extra_lm[index],
                    self._extra_cost[index],
                    self._extra_node[index],
                )
            self._materialized[key] = token
        return token

    def epsilon_seeds(self, has_epsilon: np.ndarray) -> list[Token]:
        """Tokens whose AM state has epsilon out-arcs, in table order.

        ``has_epsilon`` is a per-AM-state boolean array.  Matches the
        scalar path's ``[t for t in table if epsilon[t.am_state]]``
        without materializing the whole frontier.
        """
        num_lm = self.num_lm
        seeds = []
        base_am = self._base_am
        materialized = self._materialized
        if base_am.shape[0]:
            picked = np.flatnonzero(has_epsilon[base_am])
            if picked.shape[0]:
                for am, lm, cost, node in zip(
                    base_am[picked].tolist(),
                    self._base_lm[picked].tolist(),
                    self._base_cost[picked].tolist(),
                    self._base_node[picked].tolist(),
                ):
                    key = am * num_lm + lm
                    token = materialized.get(key)
                    if token is None:
                        token = Token(am, lm, cost, node)
                        materialized[key] = token
                    seeds.append(token)
        base_size = base_am.shape[0]
        for index, am_state in enumerate(self._extra_am):
            if has_epsilon[am_state]:
                key = am_state * num_lm + self._extra_lm[index]
                seeds.append(self.materialize(key, base_size + index))
        return seeds

    def epsilon_seed_columns(
        self, has_epsilon: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Seed tokens as (am, lm, cost, node) arrays, in table order.

        The array analogue of :meth:`epsilon_seeds` for the batched
        epsilon phase: no Token objects are materialized, and the
        returned columns are snapshots (the batched phase only runs
        when seed costs provably cannot change mid-phase).
        """
        am_col, lm_col, cost_col, node_col = self.columns()
        if not am_col.shape[0]:
            return am_col, lm_col, cost_col, node_col
        picked = np.flatnonzero(has_epsilon[am_col])
        return (
            am_col[picked],
            lm_col[picked],
            cost_col[picked],
            node_col[picked],
        )

    def base_slot_hints(self, keys: np.ndarray) -> np.ndarray:
        """Bulk-winner slot of each packed key, -1 where absent.

        One vectorized binary search replacing a per-insert
        ``searchsorted``; valid as long as no ``bulk_fill`` intervenes
        (the sorted base index is static after it).
        """
        out = np.full(keys.shape[0], -1, dtype=np.int64)
        sorted_keys = self._sorted_keys
        size = sorted_keys.shape[0]
        if size:
            pos = np.minimum(np.searchsorted(sorted_keys, keys), size - 1)
            match = sorted_keys[pos] == keys
            out[match] = self._slot_for_sorted[pos[match]]
        return out

    def insert_hinted(
        self,
        am_state: int,
        lm_state: int,
        cost: float,
        lattice_node: int,
        base_slot: int,
    ) -> bool:
        """:meth:`insert` with the base-index search precomputed.

        ``base_slot`` is the key's entry from :meth:`base_slot_hints`
        (-1 when the key is not among the bulk winners); epsilon-phase
        arrivals are still looked up in the side dict.
        """
        key = am_state * self.num_lm + lm_state
        slot = base_slot if base_slot >= 0 else self._extra_slot.get(key)
        if slot is None:
            self._extra_slot[key] = self._base_am.shape[0] + len(
                self._extra_am
            )
            self._extra_am.append(am_state)
            self._extra_lm.append(lm_state)
            self._extra_cost.append(cost)
            self._extra_node.append(lattice_node)
            self.inserts += 1
        else:
            base_size = self._base_am.shape[0]
            if slot < base_size:
                current = self._base_cost[slot]
            else:
                current = self._extra_cost[slot - base_size]
            if cost < current:
                if slot < base_size:
                    self._base_cost[slot] = cost
                    self._base_node[slot] = lattice_node
                else:
                    self._extra_cost[slot - base_size] = cost
                    self._extra_node[slot - base_size] = lattice_node
                token = self._materialized.get(key)
                if token is not None:
                    token.cost = cost
                    token.lattice_node = lattice_node
                self.improvements += 1
            else:
                self.recombinations += 1
                return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True

    def columns(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The frontier as (am, lm, cost, lattice_node) arrays."""
        if not self._extra_am:
            return self._base_am, self._base_lm, self._base_cost, self._base_node
        return (
            np.concatenate(
                [self._base_am, np.array(self._extra_am, dtype=np.int64)]
            ),
            np.concatenate(
                [self._base_lm, np.array(self._extra_lm, dtype=np.int64)]
            ),
            np.concatenate(
                [self._base_cost, np.array(self._extra_cost, dtype=np.float64)]
            ),
            np.concatenate(
                [self._base_node, np.array(self._extra_node, dtype=np.int64)]
            ),
        )

    def __len__(self) -> int:
        return self._base_am.shape[0] + len(self._extra_am)

    def __iter__(self):
        return self.tokens.values()

    def clear(self) -> None:
        self.best_cost = math.inf
        self.inserts = 0
        self.improvements = 0
        self.recombinations = 0
        self._base_am = _EMPTY_INT
        self._base_lm = _EMPTY_INT
        self._base_cost = _EMPTY_FLOAT
        self._base_node = _EMPTY_INT
        self._extra_am = []
        self._extra_lm = []
        self._extra_cost = []
        self._extra_node = []
        self._sorted_keys = _EMPTY_INT
        self._slot_for_sorted = _EMPTY_INT
        self._extra_slot = {}
        self._materialized = {}
