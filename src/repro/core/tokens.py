"""Tokens and per-frame token tables.

A *token* is one search hypothesis: a pair of states — one in the AM
graph, one in the LM graph (Figure 3c's ``(am, lm)`` nodes) — plus the
accumulated path cost and a back-pointer into the word lattice.

The decoder keeps two token tables, one for the frame being consumed
and one being filled for the next frame, mirroring the accelerator's
two hash tables (Figure 4).  Recombination is Viterbi: inserting a
token that collides with a better one is a no-op.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(slots=True)
class Token:
    """One active hypothesis."""

    am_state: int
    lm_state: int
    cost: float
    lattice_node: int = -1

    @property
    def key(self) -> tuple[int, int]:
        return (self.am_state, self.lm_state)


@dataclass
class TokenTable:
    """Best-cost token per (am_state, lm_state) pair.

    Tracks the running best cost so beam thresholds are available
    without a separate pass.
    """

    tokens: dict[tuple[int, int], Token] = field(default_factory=dict)
    best_cost: float = math.inf
    inserts: int = 0
    improvements: int = 0
    recombinations: int = 0

    def insert(
        self, am_state: int, lm_state: int, cost: float, lattice_node: int
    ) -> bool:
        """Insert or Viterbi-recombine; returns True if the token survives."""
        key = (am_state, lm_state)
        existing = self.tokens.get(key)
        if existing is None:
            self.tokens[key] = Token(am_state, lm_state, cost, lattice_node)
            self.inserts += 1
        elif cost < existing.cost:
            existing.cost = cost
            existing.lattice_node = lattice_node
            self.improvements += 1
        else:
            self.recombinations += 1
            return False
        if cost < self.best_cost:
            self.best_cost = cost
        return True

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self):
        return iter(self.tokens.values())

    def clear(self) -> None:
        self.tokens.clear()
        self.best_cost = math.inf
        self.inserts = 0
        self.improvements = 0
        self.recombinations = 0

    def survivors(self, threshold: float) -> list[Token]:
        """Tokens whose cost beats ``threshold`` (beam pruning)."""
        return [t for t in self.tokens.values() if t.cost <= threshold]
