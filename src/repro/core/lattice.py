"""Word lattice.

Every cross-word transition appends a lattice node recording which word
ended, at which frame, with what accumulated cost, chained through
back-pointers.  Backtracing from the best final token yields the
recognized word sequence; the full node set is the word lattice the
Token Issuer writes to main memory.

Two record layouts are sized, matching the paper's Token Cache traffic
discussion: the *raw* layout of the MICRO-49 baseline and the *compact*
layout of Price [22] adopted by UNFOLD (Section 3.1), which the paper
credits with extra memory-traffic savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bytes per lattice record in the baseline (Reza et al. [34]) layout:
#: frame, word id, back-pointer, cost at 32 bits each.
RAW_RECORD_BYTES = 16

#: Bytes per record in the compact layout of Price [22]: 18-bit word id,
#: 20-bit back-pointer delta, 16-bit frame delta, 10-bit quantized cost
#: = 64 bits packed.
COMPACT_RECORD_BYTES = 8


@dataclass(slots=True)
class LatticeNode:
    """One word-end event on some hypothesis path."""

    word: int  # word id (output label)
    frame: int
    cost: float  # accumulated path cost at emission time
    backpointer: int  # previous node id, -1 for path start


@dataclass
class WordLattice:
    """Append-only lattice with back-pointer chains."""

    nodes: list[LatticeNode] = field(default_factory=list)

    def add(self, word: int, frame: int, cost: float, backpointer: int) -> int:
        """Append a node, returning its id (used as the new back-pointer)."""
        if backpointer >= len(self.nodes):
            raise ValueError(f"dangling backpointer {backpointer}")
        self.nodes.append(LatticeNode(word, frame, cost, backpointer))
        return len(self.nodes) - 1

    def backtrace(self, node_id: int) -> list[int]:
        """Word ids from path start to ``node_id`` inclusive."""
        words: list[int] = []
        while node_id >= 0:
            node = self.nodes[node_id]
            words.append(node.word)
            node_id = node.backpointer
        words.reverse()
        return words

    def __len__(self) -> int:
        return len(self.nodes)

    def size_bytes(self, compact: bool = True) -> int:
        """Lattice footprint under the chosen record layout."""
        record = COMPACT_RECORD_BYTES if compact else RAW_RECORD_BYTES
        return len(self.nodes) * record

    def depth(self, node_id: int) -> int:
        """Number of words on the path ending at ``node_id``."""
        count = 0
        while node_id >= 0:
            count += 1
            node_id = self.nodes[node_id].backpointer
        return count
