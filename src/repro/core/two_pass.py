"""Two-pass on-the-fly decoding (the alternative the paper rejects).

Section 6 contrasts two software strategies for on-the-fly composition:

* **one-pass** (UNFOLD's choice, :mod:`repro.core.decoder`): LM
  transitions are applied during the search;
* **two-pass** (Ljolje et al. [17]): a first Viterbi pass searches the
  AM alone — rescoring hypotheses only with cheap unigram scores — and
  emits a word lattice; a second pass rescores complete lattice paths
  with the full LM.

The paper argues the two-pass scheme "typically leads to larger
latencies that are harmful for real-time ASR decoders" because no
second-pass work can start until the first pass finishes an utterance.
This module implements the two-pass scheme so that claim is measurable
(see ``benchmarks/bench_ablation_two_pass.py``): accuracy approaches
the one-pass result as the lattice widens, while per-utterance latency
gains a serial rescoring stage.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.am.graph import AmGraph
from repro.core.beam import BeamConfig
from repro.core.decoder import DecodeResult, DecoderConfig, DecoderStats
from repro.core.lattice import WordLattice
from repro.lm.corpus import SENTENCE_END, SENTENCE_START
from repro.lm.graph import LmGraph
from repro.lm.ngram import BackoffNGramModel
from repro.wfst.fst import EPSILON


@dataclass
class TwoPassStats:
    """Activity of both passes."""

    first_pass: DecoderStats = field(default_factory=DecoderStats)
    lattice_paths_rescored: int = 0
    lattice_nodes: int = 0


@dataclass(slots=True)
class _Token:
    am_state: int
    cost: float
    lattice_node: int


class TwoPassDecoder:
    """AM-only first pass + full-LM lattice rescoring second pass."""

    def __init__(
        self,
        am: AmGraph,
        lm: LmGraph,
        ngram: BackoffNGramModel,
        config: DecoderConfig | None = None,
        lattice_width: int = 8,
        max_paths: int = 512,
    ) -> None:
        self.am = am
        self.lm = lm
        self.ngram = ngram
        self.config = config or DecoderConfig()
        #: Alternatives kept per (frame, word-end) during pass one.
        self.lattice_width = lattice_width
        #: Complete paths extracted from the lattice for rescoring.
        self.max_paths = max_paths
        fst = am.fst
        self._emitting = [
            [a for a in fst.out_arcs(s) if a.ilabel != EPSILON]
            for s in fst.states()
        ]
        self._epsilon = [
            [a for a in fst.out_arcs(s) if a.ilabel == EPSILON]
            for s in fst.states()
        ]
        # Cheap unigram rescoring during pass one keeps hypotheses
        # comparable without any LM state tracking.
        self._unigram_cost = {
            lm.word_id(w): -ngram.log_prob(w)
            for w in ngram.vocabulary
        }

    # -- pass one: AM-only search, lattice out ------------------------------

    def first_pass(
        self, scores: np.ndarray
    ) -> tuple[WordLattice, list[tuple[float, int]], TwoPassStats]:
        config = self.config
        beam = BeamConfig(beam=config.beam, max_active=config.max_active)
        stats = TwoPassStats()
        lattice = WordLattice()
        tokens: dict[int, _Token] = {
            self.am.loop_state: _Token(self.am.loop_state, 0.0, -1)
        }
        num_frames = scores.shape[0]
        for frame in range(num_frames):
            best = min(t.cost for t in tokens.values())
            threshold = best + beam.beam
            survivors = [t for t in tokens.values() if t.cost <= threshold]
            stats.first_pass.beam_pruned += len(tokens) - len(survivors)
            if beam.max_active and len(survivors) > beam.max_active:
                survivors = heapq.nsmallest(
                    beam.max_active, survivors, key=lambda t: t.cost
                )
            frame_scores = scores[frame]
            next_tokens: dict[int, _Token] = {}
            for token in survivors:
                stats.first_pass.am_state_fetches += 1
                for arc in self._emitting[token.am_state]:
                    stats.first_pass.expansions += 1
                    cost = (
                        token.cost
                        + arc.weight
                        - self.config.acoustic_scale * frame_scores[arc.ilabel - 1]
                    )
                    existing = next_tokens.get(arc.nextstate)
                    if existing is None or cost < existing.cost:
                        next_tokens[arc.nextstate] = _Token(
                            arc.nextstate, cost, token.lattice_node
                        )
            # Epsilon phase: cross-word arcs emit lattice nodes with the
            # unigram proxy weight.
            for token in list(next_tokens.values()):
                for arc in self._epsilon[token.am_state]:
                    stats.first_pass.expansions += 1
                    cost = token.cost + arc.weight
                    node = token.lattice_node
                    if arc.olabel != EPSILON:
                        cost += self._unigram_cost[arc.olabel]
                        node = lattice.add(arc.olabel, frame, cost, token.lattice_node)
                        stats.first_pass.words_emitted += 1
                    existing = next_tokens.get(arc.nextstate)
                    if existing is None or cost < existing.cost:
                        next_tokens[arc.nextstate] = _Token(arc.nextstate, cost, node)
            stats.first_pass.tokens_created += len(next_tokens)
            tokens = next_tokens or tokens
        stats.first_pass.frames = num_frames
        stats.lattice_nodes = len(lattice)

        finals = [
            (t.cost, t.lattice_node)
            for t in tokens.values()
            if t.am_state == self.am.loop_state
        ]
        finals.sort()
        return lattice, finals[: self.max_paths], stats

    # -- pass two: full-LM rescoring of lattice paths ------------------------

    def rescore(
        self, lattice: WordLattice, finals: list[tuple[float, int]], stats: TwoPassStats
    ) -> tuple[list[int], float]:
        """Exact n-gram rescoring of complete first-pass paths.

        The unigram proxy applied in pass one is removed and replaced by
        the true back-off LM score of the full word sequence.
        """
        best_words: list[int] = []
        best_cost = math.inf
        max_history = self.ngram.order - 1
        for acoustic_cost, node in finals:
            words = lattice.backtrace(node) if node >= 0 else []
            stats.lattice_paths_rescored += 1
            proxy = sum(self._unigram_cost[w] for w in words)
            history = [SENTENCE_START] * max_history
            lm_cost = 0.0
            for word_id in words:
                word = self.lm.words.symbol_of(word_id)
                lm_cost -= self.ngram.log_prob(word, tuple(history))
                history = (history + [word])[-max_history:] if max_history else []
            lm_cost -= self.ngram.log_prob(SENTENCE_END, tuple(history))
            total = acoustic_cost - proxy + lm_cost
            if total < best_cost:
                best_cost = total
                best_words = words
        return best_words, best_cost

    def decode(self, scores: np.ndarray) -> DecodeResult:
        if scores.ndim != 2 or scores.shape[1] < self.am.num_senones:
            raise ValueError(
                f"score matrix shape {scores.shape} incompatible with "
                f"{self.am.num_senones} senones"
            )
        lattice, finals, stats = self.first_pass(scores)
        words, cost = self.rescore(lattice, finals, stats)
        result_stats = stats.first_pass
        return DecodeResult(
            word_ids=words,
            words=[self.lm.words.symbol_of(w) for w in words],
            cost=cost,
            stats=result_stats,
            lattice=lattice,
        )
