"""The paper's core: on-the-fly WFST composition decoding."""

from repro.core.arcs import (
    EmittingArcs,
    EpsilonArcs,
    LmWordArcs,
    RecombinationPlan,
    plan_recombination,
)
from repro.core.batch import (
    BatchDecoder,
    BatchSegment,
    lockstep_supported,
    step_segments,
)
from repro.core.beam import BeamConfig, frame_threshold, prune
from repro.core.composition import (
    BatchResolveResult,
    ExpansionRow,
    LmExpansionCache,
    LmLookup,
    LookupStats,
    LookupStrategy,
    OffsetLookupTable,
    ResolveResult,
)
from repro.core.decoder import (
    DecodeResult,
    DecoderConfig,
    DecoderStats,
    OnTheFlyDecoder,
)
from repro.core.lattice import (
    COMPACT_RECORD_BYTES,
    RAW_RECORD_BYTES,
    LatticeNode,
    WordLattice,
)
from repro.core.offline_decoder import FullyComposedDecoder
from repro.core.tokens import SoaTokenTable, Token, TokenTable
from repro.core.trace import GraphSide, NullSink, TraceSink
from repro.core.two_pass import TwoPassDecoder, TwoPassStats
from repro.core.virtual import ComposedArc, VirtualComposedGraph

__all__ = [
    "EmittingArcs",
    "EpsilonArcs",
    "LmWordArcs",
    "RecombinationPlan",
    "plan_recombination",
    "Token",
    "TokenTable",
    "SoaTokenTable",
    "WordLattice",
    "LatticeNode",
    "COMPACT_RECORD_BYTES",
    "RAW_RECORD_BYTES",
    "BeamConfig",
    "prune",
    "frame_threshold",
    "LookupStrategy",
    "LookupStats",
    "LmLookup",
    "LmExpansionCache",
    "ExpansionRow",
    "OffsetLookupTable",
    "ResolveResult",
    "BatchResolveResult",
    "DecoderConfig",
    "DecoderStats",
    "DecodeResult",
    "OnTheFlyDecoder",
    "BatchDecoder",
    "BatchSegment",
    "lockstep_supported",
    "step_segments",
    "FullyComposedDecoder",
    "TwoPassDecoder",
    "TwoPassStats",
    "VirtualComposedGraph",
    "ComposedArc",
    "GraphSide",
    "TraceSink",
    "NullSink",
]
