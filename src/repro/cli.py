"""Command-line interface.

Subcommands::

    python -m repro sizes   [task ...]   # Figure 8 storage table
    python -m repro decode  [task]       # decode a sample batch, show WER
    python -m repro experiment <id>      # regenerate one table/figure
    python -m repro report  [output]     # regenerate EXPERIMENTS.md
    python -m repro perf                 # decode throughput regression report
    python -m repro serve   [task]       # live streaming transcription server
    python -m repro serve-bench          # serving regression report

Task names: tiny, kaldi-voxforge, kaldi-librispeech, kaldi-tedlium,
eesen-tedlium.
"""

from __future__ import annotations

import argparse
import sys

from repro.asr.task import (
    EESEN_TEDLIUM,
    KALDI_LIBRISPEECH,
    KALDI_TEDLIUM,
    KALDI_VOXFORGE,
    TINY,
    TaskConfig,
)

TASKS: dict[str, TaskConfig] = {
    config.name: config
    for config in (TINY, KALDI_VOXFORGE, KALDI_LIBRISPEECH, KALDI_TEDLIUM, EESEN_TEDLIUM)
}


def _task_config(name: str) -> TaskConfig:
    if name not in TASKS:
        raise SystemExit(
            f"unknown task {name!r}; choose from: {', '.join(TASKS)}"
        )
    return TASKS[name]


def cmd_sizes(args: argparse.Namespace) -> int:
    from repro.asr import build_task
    from repro.compress import measure_dataset_sizing

    names = args.tasks or ["kaldi-voxforge"]
    header = (
        f"{'task':20s} {'composed':>10s} {'comp+Price':>11s} "
        f"{'AM+LM':>9s} {'UNFOLD':>9s} {'reduction':>10s}"
    )
    print(header)
    print("-" * len(header))
    for name in names:
        sizing = measure_dataset_sizing(build_task(_task_config(name)))
        mb = 1 / 2**20
        print(
            f"{name:20s} {sizing.composed_bytes * mb:9.2f}M "
            f"{sizing.composed_comp_bytes * mb:10.2f}M "
            f"{sizing.onthefly_bytes * mb:8.2f}M "
            f"{sizing.onthefly_comp_bytes * mb:8.3f}M "
            f"{sizing.unfold_reduction:9.1f}x"
        )
    return 0


def cmd_decode(args: argparse.Namespace) -> int:
    from repro.asr import DecodePool, build_scorer, build_task
    from repro.asr.wer import word_error_rate
    from repro.core import DecoderConfig

    task = build_task(_task_config(args.task))
    scorer = build_scorer(task)
    config = DecoderConfig(beam=args.beam, vectorized=not args.no_vectorized)
    utterances = task.test_set(args.utterances, max_words=8)
    with DecodePool(
        task.am,
        task.lm,
        scorer=scorer,
        config=config,
        parallelism=args.parallelism,
        batch_size=args.batch_size,
        pipeline_chunk_frames=args.pipeline_chunk_frames,
    ) as pool:
        results = pool.decode_utterances(utterances)
    hypotheses = []
    for utterance, result in zip(utterances, results):
        hypotheses.append(result.words)
        marker = "=" if result.words == utterance.words else "!"
        print(f"ref{marker} {' '.join(utterance.words)}")
        print(f"hyp{marker} {' '.join(result.words)}")
    wer = word_error_rate([u.words for u in utterances], hypotheses)
    print(
        f"\nWER: {wer:.1%} over {len(utterances)} utterances "
        f"(strategy: {results[0].strategy if results else '-'})"
    )
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.experiments.perf_decode import write_bench_report

    report = write_bench_report(
        preset=args.preset,
        output=args.output,
        parallelism=args.parallelism,
        batch_size=args.batch_size,
    )
    print(report.render())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.asr import build_scorer, build_task
    from repro.core import DecoderConfig
    from repro.serve import ServeConfig, TranscriptionServer

    task = build_task(_task_config(args.task))
    # Worker and shard processes decode the shared-memory recognizer,
    # so they need the scorer; the in-process engine decodes the
    # graphs directly.
    scorer = (
        build_scorer(task) if args.workers > 1 or args.shards > 1 else None
    )
    config = DecoderConfig(beam=args.beam, vectorized=True)
    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_queued_batches=args.max_queued_batches,
        idle_timeout_seconds=args.idle_timeout,
        workers=args.workers,
        fuse_sessions=not args.no_fuse,
        request_deadline_seconds=args.request_deadline,
        checkpoint_interval_frames=args.checkpoint_interval or None,
    )

    async def _serve() -> None:
        if args.shards > 1:
            from repro.serve import ShardedServer

            sharded = ShardedServer(
                task.am,
                task.lm,
                scorer=scorer,
                decoder_config=config,
                serve_config=serve_config,
                shards=args.shards,
            )
            await sharded.start()
            endpoints = " ".join(
                f"{host}:{port}" for host, port in sharded.endpoints
            )
            print(
                f"serving {task.name} on {args.shards} shards "
                f"({endpoints}) over shared segment "
                f"{sharded.segment_name} "
                f"({sharded.shared_nbytes} bytes; Ctrl-C stops)",
                flush=True,
            )
            try:
                await asyncio.Event().wait()
            finally:
                await sharded.stop()
            return
        server = TranscriptionServer(
            task.am,
            task.lm,
            decoder_config=config,
            serve_config=serve_config,
            scorer=scorer,
        )
        await server.start()
        print(
            f"serving {task.name} on {server.config.host}:{server.port} "
            f"(workers={args.workers}, max_sessions={args.max_sessions}; "
            f"Ctrl-C drains and stops)",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop(drain=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("drained and stopped")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.experiments.serve_bench import write_bench_report

    report = write_bench_report(
        preset=args.preset,
        output=args.output,
        concurrency=args.concurrency,
        batch_frames=args.batch_frames,
        transport=args.transport,
        workers=args.workers,
        seed=args.seed,
        fusion_concurrency=args.fusion_concurrency,
        abort_fraction=args.abort_fraction,
        shards=args.shards,
        pipeline_concurrency=args.pipeline_concurrency,
        payload=args.payload,
        encoding=args.encoding,
    )
    print(report.render())
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.registry import run_experiment

    result = run_experiment(args.id)
    print(result.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import main as report_main

    return report_main([args.output])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UNFOLD reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sizes = sub.add_parser("sizes", help="Figure 8 storage configurations")
    p_sizes.add_argument("tasks", nargs="*", help="task names")
    p_sizes.set_defaults(func=cmd_sizes)

    p_decode = sub.add_parser("decode", help="decode a sample batch")
    p_decode.add_argument("task", nargs="?", default="tiny")
    p_decode.add_argument("--utterances", type=int, default=5)
    p_decode.add_argument("--beam", type=float, default=14.0)
    p_decode.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker processes for utterance-parallel decoding",
    )
    p_decode.add_argument(
        "--no-vectorized",
        action="store_true",
        help="force the scalar reference hot loop",
    )
    p_decode.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="decode utterances in lockstep batches of this width "
        "(in-process; bit-identical to per-utterance decoding)",
    )
    p_decode.add_argument(
        "--pipeline-chunk-frames",
        type=int,
        default=None,
        help="score asynchronously ahead of the search in chunks of "
        "this many frames (bit-identical; overlaps AM and Viterbi)",
    )
    p_decode.set_defaults(func=cmd_decode)

    p_perf = sub.add_parser(
        "perf", help="decode throughput regression report (BENCH_decode.json)"
    )
    p_perf.add_argument(
        "--preset", choices=("small", "medium"), default="small"
    )
    p_perf.add_argument("--output", default="BENCH_decode.json")
    p_perf.add_argument("--parallelism", type=int, default=2)
    p_perf.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="lockstep batch width for the batched-decode comparison",
    )
    p_perf.set_defaults(func=cmd_perf)

    p_serve = sub.add_parser(
        "serve", help="live streaming transcription server (NDJSON TCP)"
    )
    p_serve.add_argument("task", nargs="?", default="tiny")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    p_serve.add_argument("--beam", type=float, default=14.0)
    p_serve.add_argument("--max-sessions", type=int, default=8)
    p_serve.add_argument("--max-queued-batches", type=int, default=4)
    p_serve.add_argument("--idle-timeout", type=float, default=30.0)
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="decode worker processes (1 = in-process engine)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard processes sharing one in-memory recognizer segment "
        "(>1 starts a ShardedServer; clients route by session key)",
    )
    p_serve.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable lockstep session fusion on the in-process engine",
    )
    p_serve.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        help="wall-clock bound in seconds per engine call "
        "(default: no deadline)",
    )
    p_serve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=16,
        help="worker engine only: frames decoded between rolling "
        "session checkpoints (0 disables checkpoints)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_serve_bench = sub.add_parser(
        "serve-bench",
        help="serving throughput/latency report (BENCH_serve.json)",
    )
    p_serve_bench.add_argument(
        "--preset", choices=("small", "medium"), default="small"
    )
    p_serve_bench.add_argument("--output", default="BENCH_serve.json")
    p_serve_bench.add_argument("--concurrency", type=int, default=4)
    p_serve_bench.add_argument("--batch-frames", type=int, default=8)
    p_serve_bench.add_argument(
        "--transport",
        choices=("local", "tcp"),
        default="local",
        help="in-process client or real TCP sockets",
    )
    p_serve_bench.add_argument("--workers", type=int, default=1)
    p_serve_bench.add_argument(
        "--seed",
        type=int,
        default=1234,
        help="load-generator submission-order seed",
    )
    p_serve_bench.add_argument(
        "--fusion-concurrency",
        type=int,
        default=8,
        help="sessions in the fused-vs-unfused comparison",
    )
    p_serve_bench.add_argument(
        "--abort-fraction",
        type=float,
        default=0.0,
        help="seeded fraction of load-generator sessions that abandon "
        "their stream mid-utterance (cancel-under-load coverage)",
    )
    p_serve_bench.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the 1-vs-N sharded-serving comparison "
        "(0 skips the sharding section)",
    )
    p_serve_bench.add_argument(
        "--payload",
        choices=("scores", "features"),
        default="scores",
        help="what the load generator streams: pre-scored matrices "
        "(exact) or raw features for server-side pipelined scoring "
        "(parity-asserted against the score-payload reference)",
    )
    p_serve_bench.add_argument(
        "--encoding",
        choices=("list", "b64f32"),
        default="list",
        help="wire form for frame matrices: exact float64 lists or "
        "the compact base64 float32 block (~7x smaller, quantizing)",
    )
    p_serve_bench.add_argument(
        "--pipeline-concurrency",
        type=int,
        default=8,
        help="feature-streaming sessions in the pipelined-vs-sync "
        "scoring comparison (0 skips the pipeline section)",
    )
    p_serve_bench.set_defaults(func=cmd_serve_bench)

    p_exp = sub.add_parser("experiment", help="regenerate one table/figure")
    p_exp.add_argument("id", help="e.g. fig08, table1, ablation-lookup")
    p_exp.set_defaults(func=cmd_experiment)

    p_report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (runs every experiment)"
    )
    p_report.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    p_report.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
