"""Acoustic scorer interface.

A scorer turns a feature matrix (frames x dim) into a log-likelihood
matrix (frames x senones) — the contents of the accelerator's Acoustic
Likelihood Buffer.  Three families are provided, mirroring the decoders
the paper evaluates: GMM (Kaldi-Tedlium/Voxforge), DNN
(Kaldi-Librispeech) and RNN (EESEN-Tedlium).

Each scorer also reports its parameter footprint (Figure 2's dataset
sizing) and per-frame arithmetic cost (the GPU timing model's input for
Figures 1, 12 and 13).
"""

from __future__ import annotations

import enum
from typing import Protocol, runtime_checkable

import numpy as np


class ScorerKind(enum.Enum):
    GMM = "gmm"
    DNN = "dnn"
    RNN = "rnn"


@runtime_checkable
class AcousticScorer(Protocol):
    """What the decoding pipeline requires from an acoustic front-end."""

    kind: ScorerKind

    @property
    def num_senones(self) -> int: ...

    @property
    def size_bytes(self) -> int: ...

    @property
    def flops_per_frame(self) -> float: ...

    def score(self, features: np.ndarray) -> np.ndarray:
        """Log-likelihoods, shape (frames, senones)."""
        ...


class ScaledScorer:
    """A scorer with a multiplicative acoustic-scale calibration.

    Hybrid front-ends (posterior/prior scoring) produce log-likelihoods
    whose *dynamic range* differs from generative likelihoods; decoders
    tune an acoustic scale so acoustic evidence and LM/transition costs
    are commensurate (Kaldi's ``--acoustic-scale``).  This wrapper bakes
    the tuned scale into the scorer.
    """

    def __init__(self, base: AcousticScorer, scale: float) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.base = base
        self.scale = scale
        self.kind = base.kind

    @property
    def num_senones(self) -> int:
        return self.base.num_senones

    @property
    def size_bytes(self) -> int:
        return self.base.size_bytes

    @property
    def flops_per_frame(self) -> float:
        return self.base.flops_per_frame

    @property
    def chunk_exact(self) -> bool:
        """Scaling is elementwise, so chunk-exactness is the base's."""
        return bool(getattr(self.base, "chunk_exact", False))

    def score(self, features: np.ndarray) -> np.ndarray:
        return self.scale * self.base.score(features)


def score_spread(scores: np.ndarray) -> float:
    """Mean per-frame spread between the best and the median senone.

    The quantity the acoustic-scale calibration equalizes: how strongly
    a frame's evidence separates its best senone from the field.
    """
    if scores.ndim != 2 or scores.shape[0] == 0:
        raise ValueError("need a non-empty (frames, senones) matrix")
    return float(np.mean(scores.max(axis=1) - np.median(scores, axis=1)))


def frame_accuracy(scores: np.ndarray, alignment: list[int]) -> float:
    """Fraction of frames whose argmax senone matches the reference.

    A quick scorer-quality diagnostic used by tests: a working scorer is
    far above chance even with noisy features.
    """
    if scores.shape[0] != len(alignment):
        raise ValueError("scores and alignment disagree on frame count")
    predictions = scores.argmax(axis=1)
    return float(np.mean(predictions == np.asarray(alignment)))


def check_score_matrix(scores: np.ndarray, num_senones: int) -> None:
    """Validate a scorer output before it reaches the decoder."""
    if scores.ndim != 2:
        raise ValueError(f"score matrix must be 2-D, got shape {scores.shape}")
    if scores.shape[1] != num_senones:
        raise ValueError(
            f"score matrix has {scores.shape[1]} senones, expected {num_senones}"
        )
    if not np.all(np.isfinite(scores)):
        raise ValueError("score matrix contains non-finite values")
