"""RNN acoustic model (EESEN-style front-end).

An echo-state recurrent network: a fixed random recurrent reservoir
(spectral radius < 1 for stability) whose state summarizes acoustic
context, with a ridge-regression read-out to senone posteriors.  This
gives the decoder a genuinely *sequence-aware* scorer — frames are
scored in temporal context, like the LSTM in EESEN — while remaining
trainable in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.am.scorer import ScorerKind

_POSTERIOR_FLOOR = 1e-10


@dataclass
class RnnAcousticModel:
    """Echo-state RNN senone classifier."""

    w_in: np.ndarray  # (dim, hidden)
    w_rec: np.ndarray  # (hidden, hidden)
    w_out: np.ndarray  # (hidden, senones)
    log_priors: np.ndarray  # (senones,)
    seen_mask: np.ndarray | None = None  # (senones,) bool
    #: Exponent on the prior in the hybrid scaling (Kaldi's
    #: standard recipe divides by the full prior).  Empirically the
    #: best decoding configuration here too.
    prior_scale: float = 1.0
    kind: ScorerKind = ScorerKind.RNN

    #: The reservoir carries hidden state across frames: a chunk's
    #: scores depend on every frame before it, so the scoring pipeline
    #: must hand the model whole utterances, never chunks.
    chunk_exact = False

    @classmethod
    def fit(
        cls,
        utterance_features: list[np.ndarray],
        utterance_alignments: list[np.ndarray],
        num_senones: int,
        hidden: int = 256,
        ridge: float = 1.0,
        spectral_radius: float = 0.9,
        rng: np.random.Generator | None = None,
    ) -> "RnnAcousticModel":
        """Closed-form training over whole utterances (state is sequential)."""
        rng = rng or np.random.default_rng(0)
        if not utterance_features:
            raise ValueError("need at least one training utterance")
        dim = utterance_features[0].shape[1]
        w_in = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(dim, hidden))
        w_rec = rng.normal(0.0, 1.0, size=(hidden, hidden))
        eigs = np.abs(np.linalg.eigvals(w_rec))
        w_rec *= spectral_radius / eigs.max()

        model = cls(
            w_in=w_in,
            w_rec=w_rec,
            w_out=np.zeros((hidden, num_senones)),
            log_priors=np.zeros(num_senones),
        )
        states = [model._run_reservoir(f) for f in utterance_features]
        h = np.concatenate(states, axis=0)
        alignment = np.concatenate(
            [np.asarray(a) for a in utterance_alignments]
        )
        targets = np.zeros((len(h), num_senones))
        targets[np.arange(len(h)), alignment] = 1.0
        gram = h.T @ h + ridge * np.eye(hidden)
        model.w_out = np.linalg.solve(gram, h.T @ targets)

        from repro.am.dnn import _smoothed_priors

        model.log_priors = np.log(_smoothed_priors(alignment, num_senones))
        model.seen_mask = np.bincount(alignment, minlength=num_senones) > 0
        return model

    def _run_reservoir(self, features: np.ndarray) -> np.ndarray:
        hidden = self.w_in.shape[1]
        states = np.zeros((len(features), hidden))
        h = np.zeros(hidden)
        for t, x in enumerate(features):
            h = np.tanh(x @ self.w_in + h @ self.w_rec)
            states[t] = h
        return states

    @property
    def num_senones(self) -> int:
        return self.w_out.shape[1]

    @property
    def hidden(self) -> int:
        return self.w_in.shape[1]

    @property
    def dim(self) -> int:
        return self.w_in.shape[0]

    @property
    def size_bytes(self) -> int:
        params = (
            self.w_in.size + self.w_rec.size + self.w_out.size + self.log_priors.size
        )
        return params * 4

    @property
    def flops_per_frame(self) -> float:
        return float(
            2
            * (
                self.dim * self.hidden
                + self.hidden * self.hidden
                + self.hidden * self.num_senones
            )
        )

    def posteriors(self, features: np.ndarray) -> np.ndarray:
        """Senone posteriors (least-squares estimates, clip-normalized)."""
        states = self._run_reservoir(features)
        raw = np.maximum(states @ self.w_out, 0.0)
        norm = raw.sum(axis=1, keepdims=True)
        flat = norm[:, 0] <= 0
        if np.any(flat):
            raw[flat] = 1.0
            norm = raw.sum(axis=1, keepdims=True)
        return raw / norm

    def score(self, features: np.ndarray) -> np.ndarray:
        """Scaled log-likelihoods over the whole utterance."""
        posteriors = np.maximum(self.posteriors(features), _POSTERIOR_FLOOR)
        scores = np.log(posteriors) - self.prior_scale * self.log_priors[None, :]
        if self.seen_mask is not None:
            from repro.am.dnn import UNSEEN_SENONE_SCORE

            scores[:, ~self.seen_mask] = UNSEEN_SENONE_SCORE
        return scores
