"""Acoustic-model WFST construction (Figure 3a structure).

The AM transducer maps senone observation sequences to word sequences.
It is a loop: a shared *loop state* fans out into one left-to-right HMM
chain per pronunciation, and every chain returns to the loop state
through a *cross-word transition* — an arc whose output label is the
word id (the arcs that trigger LM transitions during on-the-fly
composition).  Chains share nothing, as in the paper's example.

Arc inventory per pronunciation of length K senones:

* one *enter* arc (loop state -> first chain state) consuming the first
  senone frame, weighted with the HMM forward cost plus the
  pronunciation prior;
* a *self-loop* on every chain state consuming one more frame of that
  state's senone;
* an *advance* arc between consecutive chain states consuming the first
  frame of the next senone;
* one non-emitting *cross-word* arc (epsilon input, word output) back to
  the loop state — the analogue of Figure 3a's word-final arcs.

An optional silence chain (epsilon output) hangs off the loop state so
decoders can absorb inter-word pauses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.am.hmm import HmmTopology
from repro.am.lexicon import Lexicon
from repro.wfst.fst import EPSILON, SymbolTable, Wfst


@dataclass
class AmGraph:
    """The AM WFST plus decoding metadata.

    Attributes:
        fst: The transducer (input: senone labels, output: word ids).
        words: Word symbol table, shared with the LM graph.
        topology: HMM shape used to build the graph.
        loop_state: The shared word-boundary state (always 0).
        num_senones: Size of the acoustic score vector per frame.
    """

    fst: Wfst
    words: SymbolTable
    topology: HmmTopology
    loop_state: int
    num_senones: int
    chain_state_senone: dict[int, int] = field(default_factory=dict)

    def senone_of_state(self, state: int) -> int | None:
        """Senone a chain state emits via its self-loop (None for loop state)."""
        return self.chain_state_senone.get(state)

    def emitting_arcs(self, state: int):
        return [a for a in self.fst.out_arcs(state) if a.ilabel != EPSILON]

    def epsilon_arcs(self, state: int):
        return [a for a in self.fst.out_arcs(state) if a.ilabel == EPSILON]


def build_am_graph(
    lexicon: Lexicon,
    topology: HmmTopology,
    words: SymbolTable | None = None,
    silence_cost: float = 1.0,
    use_silence: bool = True,
) -> AmGraph:
    """Build the AM WFST from a lexicon and an HMM topology.

    Args:
        lexicon: Pronunciations; every word becomes a chain.
        topology: Shared HMM shape (senone ids derive from it).
        words: Word symbol table; pass the LM's table so word ids agree
            between the two graphs (required for composition).
        silence_cost: -log prior of entering the silence chain.
        use_silence: Include the optional silence loop.
    """
    if words is None:
        words = SymbolTable("words")
    phones = lexicon.phones
    fst = Wfst(output_symbols=words)
    loop_state = fst.add_state()
    fst.set_start(loop_state)
    fst.set_final(loop_state)

    chain_state_senone: dict[int, int] = {}

    def add_chain(
        senones: list[int], word_label: int, enter_cost: float
    ) -> None:
        """One HMM chain from the loop state back to the loop state."""
        prev = loop_state
        for position, senone in enumerate(senones):
            state = fst.add_state()
            chain_state_senone[state] = senone
            label = topology.senone_label(senone)
            cost = topology.forward_cost + (enter_cost if position == 0 else 0.0)
            fst.add_arc(prev, label, EPSILON, cost, state)  # enter / advance
            fst.add_arc(state, label, EPSILON, topology.self_loop_cost, state)
            prev = state
        # Cross-word transition: non-emitting, carries the word id.
        fst.add_arc(prev, EPSILON, word_label, topology.forward_cost, loop_state)

    for word in lexicon.words:
        word_id = words.add(word)
        variants = lexicon.pronunciations(word)
        pron_cost = math.log(len(variants))  # -log(1/k)
        for pron in variants:
            phone_ids = [phones.id_of(p) for p in pron]
            add_chain(topology.senone_sequence(phone_ids), word_id, pron_cost)

    if use_silence:
        sil_senones = topology.senone_sequence([phones.silence_id])
        add_chain(sil_senones, EPSILON, silence_cost)

    return AmGraph(
        fst=fst,
        words=words,
        topology=topology,
        loop_state=loop_state,
        num_senones=topology.num_senones(phones),
        chain_state_senone=chain_state_senone,
    )
