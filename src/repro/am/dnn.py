"""DNN (MLP) acoustic model.

A hybrid DNN-HMM front-end: the network produces senone posteriors,
which are converted to scaled likelihoods by dividing out the senone
prior (the standard hybrid recipe).  Training uses the extreme-learning
-machine construction — a fixed random hidden expansion followed by a
ridge-regression read-out fitted to one-hot senone targets — which is a
genuine closed-form training procedure that needs no autodiff stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.am.scorer import ScorerKind

_POSTERIOR_FLOOR = 1e-10
#: Scaled-likelihood assigned to senones never seen in training (e.g.
#: phones no vocabulary word uses): effectively impossible, but finite.
UNSEEN_SENONE_SCORE = -1e4


def _smoothed_priors(alignment: np.ndarray, num_senones: int) -> np.ndarray:
    """Senone priors floored at half the rarest *seen* senone's prior.

    An absolute floor would hand unseen senones enormous likelihood
    boosts under the hybrid ``posterior / prior`` scaling; tying the
    floor to the rarest observed class keeps the scaling sane.
    """
    counts = np.bincount(alignment, minlength=num_senones).astype(float)
    priors = counts / counts.sum()
    seen = priors[priors > 0]
    floor = 0.5 * seen.min() if len(seen) else 1.0 / num_senones
    priors = np.maximum(priors, floor)
    return priors / priors.sum()


@dataclass
class MlpAcousticModel:
    """One-hidden-layer MLP senone classifier."""

    w_in: np.ndarray  # (dim, hidden)
    b_in: np.ndarray  # (hidden,)
    w_out: np.ndarray  # (hidden, senones)
    log_priors: np.ndarray  # (senones,)
    seen_mask: np.ndarray | None = None  # (senones,) bool
    #: Exponent on the prior in the hybrid scaling (Kaldi's
    #: standard recipe divides by the full prior).  Empirically the
    #: best decoding configuration here too.
    prior_scale: float = 1.0
    kind: ScorerKind = ScorerKind.DNN

    #: BLAS matmul results differ in the last bits with the batch shape,
    #: so chunked scoring is *not* bitwise-identical to one-shot scoring;
    #: the scoring pipeline must score each submission whole.
    chunk_exact = False

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        alignment: np.ndarray,
        num_senones: int,
        hidden: int = 256,
        ridge: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> "MlpAcousticModel":
        """Closed-form training on aligned frames."""
        rng = rng or np.random.default_rng(0)
        alignment = np.asarray(alignment)
        dim = features.shape[1]
        w_in = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(dim, hidden))
        b_in = rng.normal(0.0, 0.1, size=hidden)
        hidden_acts = np.tanh(features @ w_in + b_in)
        targets = np.zeros((len(features), num_senones))
        targets[np.arange(len(features)), alignment] = 1.0
        gram = hidden_acts.T @ hidden_acts + ridge * np.eye(hidden)
        w_out = np.linalg.solve(gram, hidden_acts.T @ targets)

        priors = _smoothed_priors(alignment, num_senones)
        seen = np.bincount(alignment, minlength=num_senones) > 0
        return cls(
            w_in=w_in,
            b_in=b_in,
            w_out=w_out,
            log_priors=np.log(priors),
            seen_mask=seen,
        )

    @property
    def num_senones(self) -> int:
        return self.w_out.shape[1]

    @property
    def hidden(self) -> int:
        return self.w_in.shape[1]

    @property
    def dim(self) -> int:
        return self.w_in.shape[0]

    @property
    def size_bytes(self) -> int:
        params = (
            self.w_in.size + self.b_in.size + self.w_out.size + self.log_priors.size
        )
        return params * 4

    @property
    def flops_per_frame(self) -> float:
        return float(2 * (self.dim * self.hidden + self.hidden * self.num_senones))

    def posteriors(self, features: np.ndarray) -> np.ndarray:
        """Senone posteriors per frame.

        The ridge read-out was fitted to one-hot targets, so its raw
        outputs are least-squares estimates of ``P(senone | frame)``
        already; clip-and-normalize preserves their sharpness (a softmax
        over [0, 1] outputs would flatten them to near-uniform).
        """
        hidden_acts = np.tanh(features @ self.w_in + self.b_in)
        raw = np.maximum(hidden_acts @ self.w_out, 0.0)
        norm = raw.sum(axis=1, keepdims=True)
        flat = norm[:, 0] <= 0
        if np.any(flat):
            raw[flat] = 1.0
            norm = raw.sum(axis=1, keepdims=True)
        return raw / norm

    def score(self, features: np.ndarray) -> np.ndarray:
        """Scaled log-likelihoods: log posterior - log prior.

        Senones with no training observations (a hybrid system has no
        output unit for them) are pinned to an impossible score rather
        than receiving a spurious rare-prior boost.
        """
        posteriors = np.maximum(self.posteriors(features), _POSTERIOR_FLOOR)
        scores = np.log(posteriors) - self.prior_scale * self.log_priors[None, :]
        if self.seen_mask is not None:
            scores[:, ~self.seen_mask] = UNSEEN_SENONE_SCORE
        return scores
