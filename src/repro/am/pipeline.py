"""Asynchronous producer/consumer acoustic scoring pipeline.

Decoding used to be frame-synchronous at every layer: score a whole
utterance, then search it, then move to the next — the acoustic model
and the Viterbi engine taking strict turns on the same thread.  This
module splits them into a pipeline: a :class:`ScoringPipeline` owns a
worker thread that turns feature matrices into score matrices *ahead*
of the search, so the consumer decodes chunk/utterance ``k`` while the
producer scores ``k+1``.  The numpy kernels inside every scorer release
the GIL for the bulk of their work, so producer and consumer genuinely
overlap on multi-core hosts (Lv et al., arXiv:2103.09063, make the same
split for their asynchronous WFST decoder).

Bit-parity is the contract everything in this repo leans on, and it
shapes the design: scoring in chunks is only bitwise-identical to
scoring the whole matrix for *per-frame* acoustic models.  The GMM
scorer is pure per-frame broadcasting, so any chunking reproduces the
one-shot matrix exactly; the MLP's BLAS matmuls are shape-dependent in
the last bits, and the RNN carries recurrent state across frames, so
neither may be chunk-scored.  Scorers advertise this with a
``chunk_exact`` attribute (conservative default: ``False``), and the
pipeline only splits submissions into ``chunk_frames`` pieces when the
scorer declares exactness — otherwise each submission is scored whole,
and the overlap comes from scoring submission ``k+1`` while the
consumer searches submission ``k``.  Either way the score values the
consumer sees are bitwise-identical to the synchronous path.

Flow control: each submission's completed chunks land in a bounded
queue (``depth``), so a slow consumer exerts backpressure on the
scoring thread instead of letting scored-but-unsearched frames pile up
without bound.  A scorer exception is caught on the worker, wrapped in
the typed :class:`ScoringError`, and delivered to that submission's
consumer at the point it would have read the poisoned chunk — the
worker moves on to the next submission, so one bad utterance never
wedges the pipeline.
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from repro.am.scorer import AcousticScorer

#: Completed chunks a submission may hold scored-but-unconsumed before
#: the worker blocks (per-stream backpressure bound).
DEFAULT_DEPTH = 2

_STOP = object()

#: Non-data wake-up token the worker drops into a stream's queue after
#: setting its done event, so a consumer blocked in ``get`` wakes
#: immediately instead of sleeping out its poll timeout.
_NUDGE = object()


class ScoringError(RuntimeError):
    """A scorer raised inside the pipeline worker.

    Carries the original exception as ``__cause__``; consumers see this
    typed error when they read the stream, not a hung queue.
    """


class PipelineClosed(ScoringError):
    """The pipeline was closed while this submission was still queued."""


def is_chunk_exact(scorer: AcousticScorer) -> bool:
    """Whether chunked scoring is bitwise-identical to one-shot scoring.

    Per-frame models (GMM) declare ``chunk_exact = True``; anything
    whose arithmetic depends on the batch shape (BLAS matmuls in the
    MLP) or on cross-frame state (the RNN reservoir) must not, and the
    default for a scorer that says nothing is the safe ``False``.
    """
    return bool(getattr(scorer, "chunk_exact", False))


def iter_feature_chunks(features: np.ndarray, chunk_frames: int):
    """Row-wise views of ``features`` in ``chunk_frames`` pieces.

    The last chunk is ragged when the frame count is not a multiple.
    """
    if chunk_frames <= 0:
        raise ValueError("chunk_frames must be positive")
    for start in range(0, features.shape[0], chunk_frames):
        yield features[start : start + chunk_frames]


class ScoreStream:
    """Handle for one submitted feature matrix.

    Iterate :meth:`chunks` to consume score chunks as the worker
    finishes them (the streaming consumers), or call :meth:`result`
    for the concatenated ``(frames, senones)`` matrix (the batch
    consumers).  Both raise :class:`ScoringError` if the scorer failed
    on this submission.
    """

    def __init__(self, frames: int, num_senones: int, depth: int) -> None:
        self.frames = frames
        self.num_senones = num_senones
        self._queue: queue.Queue = queue.Queue(maxsize=max(depth, 1))
        self._cancelled = threading.Event()
        #: Set by the worker once nothing more will ever be queued for
        #: this stream — an event, not a queue sentinel, so completion
        #: is always deliverable even to a full queue.
        self._done = threading.Event()
        self._consumed = False
        self._result: np.ndarray | None = None
        self._error: ScoringError | None = None

    def cancel(self) -> None:
        """Drop this submission: unscored chunks are skipped and a
        blocked producer is released."""
        self._cancelled.set()
        # Drain anything already queued so a blocked put wakes up.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def done(self) -> bool:
        """Whether the worker has finished (or failed) this submission
        and every data chunk has been consumed."""
        if not self._done.is_set():
            return False
        with self._queue.mutex:
            return all(item is _NUDGE for item in self._queue.queue)

    def chunks(self):
        """Yield score chunks in submission order; raises on failure."""
        if self._error is not None:
            raise self._error
        if self._consumed:
            raise RuntimeError("score stream already consumed")
        self._consumed = True
        while True:
            if self._done.is_set():
                # Nothing more will ever be queued: drain without
                # blocking and finish the moment the queue runs dry.
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    return
            else:
                # The timeout is a safety net only; completion arrives
                # as the worker's nudge token (or a data chunk), so the
                # consumer never sleeps out the poll period in practice.
                try:
                    item = self._queue.get(timeout=0.05)
                except queue.Empty:
                    continue
            if item is _NUDGE:
                continue
            if isinstance(item, ScoringError):
                self._error = item
                raise item
            yield item

    def result(self) -> np.ndarray:
        """The full score matrix, blocking until scoring completes."""
        if self._result is None:
            parts = list(self.chunks())
            if parts:
                self._result = np.concatenate(parts, axis=0)
            else:
                self._result = np.zeros((0, self.num_senones))
        return self._result

    # Worker-side helpers -------------------------------------------------

    def _finish(self) -> None:
        """Mark the stream complete and wake a blocked consumer.

        The done event is the authoritative signal (always deliverable,
        even to a full queue); the nudge token is a best-effort wake-up
        so a consumer mid-``get`` returns now instead of after its poll
        timeout.  A full queue skips the nudge — the consumer is about
        to wake on real data anyway and re-checks the event first.
        """
        self._done.set()
        try:
            self._queue.put_nowait(_NUDGE)
        except queue.Full:
            pass

    def _put(self, item, closing: threading.Event) -> bool:
        """Blocking put that gives up on cancel/close; True if delivered."""
        while not self._cancelled.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                if closing.is_set():
                    return False
        return False


class ScoringPipeline:
    """Scores feature submissions on a worker thread, ahead of search.

    ``chunk_frames`` bounds the scoring granularity for chunk-exact
    scorers (``None`` or a non-chunk-exact scorer scores each
    submission whole); ``depth`` bounds the completed chunks a
    submission may buffer before the producer blocks (backpressure).

    Usable as a context manager; :meth:`close` is idempotent, joins the
    worker, and fails any still-queued submissions with
    :class:`PipelineClosed` rather than leaving their consumers hung.
    """

    def __init__(
        self,
        scorer: AcousticScorer,
        chunk_frames: int | None = None,
        depth: int = DEFAULT_DEPTH,
    ) -> None:
        if chunk_frames is not None and chunk_frames <= 0:
            raise ValueError("chunk_frames must be positive")
        self.scorer = scorer
        self.chunk_frames = chunk_frames if is_chunk_exact(scorer) else None
        self.depth = depth
        self._inbox: queue.Queue = queue.Queue()
        self._closing = threading.Event()
        self._abort = threading.Event()
        self._worker: threading.Thread | None = None
        self._lock = threading.Lock()
        #: Submissions accepted / chunks scored, for introspection.
        self.submitted = 0
        self.chunks_scored = 0

    # Lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ScoringPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_worker(self) -> None:
        with self._lock:
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._run, name="scoring-pipeline", daemon=True
                )
                self._worker.start()

    def close(self, cancel: bool = False) -> None:
        """Stop the worker.  ``cancel=True`` also abandons the chunk
        loop of the submission currently being produced."""
        if cancel:
            self._abort.set()
        self._closing.set()
        self._inbox.put(_STOP)
        with self._lock:
            worker, self._worker = self._worker, None
        if worker is not None:
            worker.join()
        # Fail anything still queued so no consumer blocks forever.
        while True:
            try:
                item = self._inbox.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            stream, _ = item
            stream._error = PipelineClosed("scoring pipeline closed")
            stream._finish()

    # Producer API --------------------------------------------------------

    def submit(self, features: np.ndarray) -> ScoreStream:
        """Queue one feature matrix for asynchronous scoring."""
        if self._closing.is_set():
            raise PipelineClosed("scoring pipeline closed")
        features = np.asarray(features)
        if features.ndim != 2:
            raise ValueError(
                f"feature matrix must be 2-D, got shape {features.shape}"
            )
        stream = ScoreStream(
            frames=features.shape[0],
            num_senones=self.scorer.num_senones,
            depth=self.depth,
        )
        self.submitted += 1
        self._inbox.put((stream, features))
        self._ensure_worker()
        return stream

    def score_all(self, matrices) -> list[np.ndarray]:
        """Pipeline a whole batch and block for every result (testing
        convenience; real consumers interleave search between reads)."""
        streams = [self.submit(m) for m in matrices]
        return [s.result() for s in streams]

    # Worker --------------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._inbox.get()
            if item is _STOP:
                return
            stream, features = item
            if stream.cancelled:
                stream._finish()
                continue
            try:
                if self.chunk_frames is None:
                    pieces = [features] if features.shape[0] else []
                else:
                    pieces = iter_feature_chunks(features, self.chunk_frames)
                interrupted = False
                for chunk in pieces:
                    if stream.cancelled:
                        break
                    if self._abort.is_set():
                        interrupted = True
                        break
                    scores = self.scorer.score(chunk)
                    self.chunks_scored += 1
                    if not stream._put(scores, self._closing):
                        # Gave up mid-delivery: cancel is the consumer's
                        # own drop, but a close-time stall would leave a
                        # silently truncated stream — fail it instead.
                        interrupted = not stream.cancelled
                        break
                if interrupted:
                    error = PipelineClosed("scoring pipeline closed")
                    stream._error = error
                    try:
                        stream._queue.put_nowait(error)
                    except queue.Full:
                        pass
            except Exception as exc:  # noqa: BLE001 - typed re-raise
                error = ScoringError(
                    f"acoustic scorer {type(self.scorer).__name__} failed: "
                    f"{exc}"
                )
                error.__cause__ = exc
                stream._put(error, self._closing)
            stream._finish()
