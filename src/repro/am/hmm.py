"""HMM topology: phones expand to left-to-right HMM state chains.

Each phone is a Bakis (left-to-right) HMM with ``states_per_phone``
emitting states, each carrying a self-loop.  The emitting states are the
*senones* — the units the acoustic scorer produces likelihoods for, and
the input labels of the AM WFST (offset by one, since WFST label 0 is
epsilon).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.am.phones import PhoneInventory


@dataclass(frozen=True)
class HmmTopology:
    """Shared HMM shape for every phone.

    Attributes:
        states_per_phone: Emitting states per phone (3 in Kaldi models).
        self_loop_prob: Probability of staying in a state per frame; the
            expected state duration is ``1 / (1 - self_loop_prob)``.
    """

    states_per_phone: int = 3
    self_loop_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.states_per_phone < 1:
            raise ValueError("states_per_phone must be >= 1")
        if not 0.0 < self.self_loop_prob < 1.0:
            raise ValueError("self_loop_prob must be in (0, 1)")

    @property
    def self_loop_cost(self) -> float:
        """-log P(stay)."""
        return -math.log(self.self_loop_prob)

    @property
    def forward_cost(self) -> float:
        """-log P(advance)."""
        return -math.log(1.0 - self.self_loop_prob)

    @property
    def expected_frames_per_state(self) -> float:
        return 1.0 / (1.0 - self.self_loop_prob)

    def num_senones(self, phones: PhoneInventory) -> int:
        return phones.num_phones * self.states_per_phone

    def senone_id(self, phone_id: int, state_index: int) -> int:
        """Dense senone id for HMM state ``state_index`` of ``phone_id``."""
        if not 0 <= state_index < self.states_per_phone:
            raise ValueError(f"state_index {state_index} out of range")
        return phone_id * self.states_per_phone + state_index

    def phone_of_senone(self, senone: int) -> int:
        return senone // self.states_per_phone

    def state_of_senone(self, senone: int) -> int:
        return senone % self.states_per_phone

    def senone_sequence(self, phone_ids: list[int]) -> list[int]:
        """Senones visited when each HMM state is held exactly once."""
        out = []
        for phone in phone_ids:
            for j in range(self.states_per_phone):
                out.append(self.senone_id(phone, j))
        return out

    def senone_label(self, senone: int) -> int:
        """WFST input label for a senone (0 is reserved for epsilon)."""
        return senone + 1

    def senone_of_label(self, label: int) -> int:
        if label < 1:
            raise ValueError("label 0 is epsilon, not a senone")
        return label - 1
