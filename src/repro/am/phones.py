"""Phone inventory.

A fixed ARPAbet-style phone set plus a silence phone.  Phone ids are
dense integers; HMM state (senone) ids are derived from them by the
topology (``repro.am.hmm``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: ARPAbet-like inventory (39 phones), the scale Kaldi models use.
STANDARD_PHONES = [
    "aa", "ae", "ah", "ao", "aw", "ay", "b", "ch", "d", "dh",
    "eh", "er", "ey", "f", "g", "hh", "ih", "iy", "jh", "k",
    "l", "m", "n", "ng", "ow", "oy", "p", "r", "s", "sh",
    "t", "th", "uh", "uw", "v", "w", "y", "z", "zh",
]

SILENCE_PHONE = "sil"


@dataclass(frozen=True)
class PhoneInventory:
    """Dense phone-id space: real phones first, silence last."""

    phones: tuple[str, ...] = field(default=tuple(STANDARD_PHONES))

    @classmethod
    def standard(cls) -> "PhoneInventory":
        return cls()

    @classmethod
    def reduced(cls, count: int) -> "PhoneInventory":
        """A smaller inventory for fast tests (first ``count`` phones)."""
        if not 1 <= count <= len(STANDARD_PHONES):
            raise ValueError(f"count must be in [1, {len(STANDARD_PHONES)}]")
        return cls(phones=tuple(STANDARD_PHONES[:count]))

    @property
    def num_phones(self) -> int:
        """Total phones including silence."""
        return len(self.phones) + 1

    @property
    def silence_id(self) -> int:
        return len(self.phones)

    def id_of(self, phone: str) -> int:
        if phone == SILENCE_PHONE:
            return self.silence_id
        return self.phones.index(phone)

    def name_of(self, phone_id: int) -> str:
        if phone_id == self.silence_id:
            return SILENCE_PHONE
        return self.phones[phone_id]

    def real_phones(self) -> tuple[str, ...]:
        """Phones usable in pronunciations (excludes silence)."""
        return self.phones
