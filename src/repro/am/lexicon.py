"""Pronunciation lexicon: word -> phone sequences.

Real lexicons (CMUdict etc.) map spelling to phones with largely
letter-driven regularity.  The generator below mirrors that: each
letter maps deterministically to a phone (with a seeded scramble), so
longer words get longer pronunciations, similar spellings get similar
pronunciations, and occasional pronunciation variants are added — the
properties that shape the AM graph's size and branching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.am.phones import PhoneInventory

Pronunciation = tuple[str, ...]


@dataclass
class Lexicon:
    """Pronunciations for every word in the vocabulary."""

    phones: PhoneInventory
    entries: dict[str, list[Pronunciation]] = field(default_factory=dict)

    def add(self, word: str, pronunciation: Pronunciation) -> None:
        if not pronunciation:
            raise ValueError(f"empty pronunciation for {word!r}")
        for phone in pronunciation:
            if phone not in self.phones.real_phones():
                raise ValueError(f"unknown phone {phone!r} in {word!r}")
        variants = self.entries.setdefault(word, [])
        if pronunciation not in variants:
            variants.append(pronunciation)

    def pronunciations(self, word: str) -> list[Pronunciation]:
        return self.entries[word]

    def primary(self, word: str) -> Pronunciation:
        return self.entries[word][0]

    @property
    def words(self) -> list[str]:
        return list(self.entries)

    @property
    def num_pronunciations(self) -> int:
        return sum(len(v) for v in self.entries.values())

    def avg_pronunciation_len(self) -> float:
        total = sum(len(p) for v in self.entries.values() for p in v)
        count = self.num_pronunciations
        return total / count if count else 0.0

    def __contains__(self, word: str) -> bool:
        return word in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def generate_lexicon(
    vocabulary: list[str],
    phones: PhoneInventory,
    rng: np.random.Generator,
    variant_probability: float = 0.08,
) -> Lexicon:
    """Build a lexicon with letter-driven pronunciations.

    Args:
        vocabulary: Words to cover.
        phones: Phone inventory to draw from.
        rng: Seeded generator; the letter->phone map is drawn from it.
        variant_probability: Chance a word receives a second
            pronunciation (one phone substituted), as real lexicons do.
    """
    real = phones.real_phones()
    letters = "abcdefghijklmnopqrstuvwxyz"
    letter_map = {
        letter: real[int(rng.integers(0, len(real)))] for letter in letters
    }
    lexicon = Lexicon(phones=phones)
    for word in vocabulary:
        pron = tuple(letter_map[ch] for ch in word if ch in letter_map)
        if not pron:
            pron = (real[int(rng.integers(0, len(real)))],)
        lexicon.add(word, pron)
        if rng.random() < variant_probability and len(pron) > 1:
            variant = list(pron)
            pos = int(rng.integers(0, len(variant)))
            variant[pos] = real[int(rng.integers(0, len(real)))]
            lexicon.add(word, tuple(variant))
    return lexicon
