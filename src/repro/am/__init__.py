"""Acoustic-model substrate: phones, lexicon, HMMs, AM WFST, scorers."""

from repro.am.dnn import MlpAcousticModel
from repro.am.features import (
    FeatureSynthesizer,
    SenoneEmissionModel,
    Utterance,
    make_emission_model,
)
from repro.am.gmm import GmmAcousticModel
from repro.am.graph import AmGraph, build_am_graph
from repro.am.hmm import HmmTopology
from repro.am.lexicon import Lexicon, generate_lexicon
from repro.am.phones import SILENCE_PHONE, STANDARD_PHONES, PhoneInventory
from repro.am.pipeline import (
    PipelineClosed,
    ScoreStream,
    ScoringError,
    ScoringPipeline,
    is_chunk_exact,
    iter_feature_chunks,
)
from repro.am.rnn import RnnAcousticModel
from repro.am.scorer import (
    AcousticScorer,
    ScaledScorer,
    ScorerKind,
    check_score_matrix,
    frame_accuracy,
    score_spread,
)

__all__ = [
    "PhoneInventory",
    "STANDARD_PHONES",
    "SILENCE_PHONE",
    "Lexicon",
    "generate_lexicon",
    "HmmTopology",
    "AmGraph",
    "build_am_graph",
    "SenoneEmissionModel",
    "FeatureSynthesizer",
    "Utterance",
    "make_emission_model",
    "GmmAcousticModel",
    "MlpAcousticModel",
    "RnnAcousticModel",
    "AcousticScorer",
    "ScaledScorer",
    "score_spread",
    "ScorerKind",
    "frame_accuracy",
    "check_score_matrix",
    "PipelineClosed",
    "ScoreStream",
    "ScoringError",
    "ScoringPipeline",
    "is_chunk_exact",
    "iter_feature_chunks",
]
