"""Synthetic speech features.

The paper decodes real audio; offline we cannot, so we synthesize the
one artifact the Viterbi search actually consumes upstream of the
acoustic scorer: per-frame feature vectors.  Each senone owns a Gaussian
emission distribution; an utterance is rendered by expanding its word
sequence through the lexicon and HMM topology, sampling a duration per
HMM state, and emitting noisy draws from each senone's Gaussian.

The ``noise_scale`` knob controls how confusable senones are, which is
what drives word error rate in the evaluation (Table 6): low noise means
near-perfect recognition, high noise forces the search to rely on the
language model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.am.hmm import HmmTopology
from repro.am.lexicon import Lexicon
from repro.am.phones import PhoneInventory


@dataclass
class SenoneEmissionModel:
    """Ground-truth Gaussian emission parameters per senone."""

    means: np.ndarray  # (num_senones, dim)
    variances: np.ndarray  # (num_senones, dim)

    @classmethod
    def random(
        cls,
        num_senones: int,
        dim: int,
        rng: np.random.Generator,
        separation: float = 2.0,
    ) -> "SenoneEmissionModel":
        """Senone means drawn apart by ``separation`` on average."""
        means = rng.normal(0.0, separation, size=(num_senones, dim))
        variances = np.full((num_senones, dim), 1.0)
        return cls(means=means, variances=variances)

    @property
    def num_senones(self) -> int:
        return self.means.shape[0]

    @property
    def dim(self) -> int:
        return self.means.shape[1]


@dataclass
class Utterance:
    """One synthetic test utterance."""

    words: list[str]
    features: np.ndarray  # (frames, dim)
    alignment: list[int]  # reference senone per frame

    @property
    def num_frames(self) -> int:
        return self.features.shape[0]

    @property
    def duration_seconds(self) -> float:
        """Wall-clock speech length at the standard 10 ms frame rate."""
        return self.num_frames * 0.01


@dataclass
class FeatureSynthesizer:
    """Renders word sequences into feature matrices."""

    lexicon: Lexicon
    topology: HmmTopology
    emissions: SenoneEmissionModel
    rng: np.random.Generator = field(repr=False, default_factory=np.random.default_rng)
    noise_scale: float = 1.0
    silence_probability: float = 0.3

    def synthesize(self, words: list[str]) -> Utterance:
        """Render ``words`` into features plus a reference alignment."""
        phones = self.lexicon.phones
        senones: list[int] = []
        if self.rng.random() < self.silence_probability:
            senones.extend(self._hold(self.topology.senone_sequence([phones.silence_id])))
        for word in words:
            pron = self._pick_pronunciation(word)
            phone_ids = [phones.id_of(p) for p in pron]
            senones.extend(self._hold(self.topology.senone_sequence(phone_ids)))
            if self.rng.random() < self.silence_probability * 0.5:
                senones.extend(
                    self._hold(self.topology.senone_sequence([phones.silence_id]))
                )
        means = self.emissions.means[senones]
        stds = np.sqrt(self.emissions.variances[senones]) * self.noise_scale
        noise = self.rng.normal(size=means.shape)
        features = means + stds * noise
        return Utterance(words=list(words), features=features, alignment=senones)

    def synthesize_batch(self, sentences: list[list[str]]) -> list[Utterance]:
        return [self.synthesize(words) for words in sentences]

    def _pick_pronunciation(self, word: str):
        variants = self.lexicon.pronunciations(word)
        if len(variants) == 1:
            return variants[0]
        return variants[int(self.rng.integers(0, len(variants)))]

    def _hold(self, senones: list[int]) -> list[int]:
        """Repeat each senone for a geometric duration (HMM self-loops)."""
        held: list[int] = []
        stay = self.topology.self_loop_prob
        for senone in senones:
            duration = 1 + self.rng.geometric(1.0 - stay) - 1
            held.extend([senone] * max(1, int(duration)))
        return held


def make_emission_model(
    phones: PhoneInventory,
    topology: HmmTopology,
    rng: np.random.Generator,
    dim: int = 16,
    separation: float = 2.0,
) -> SenoneEmissionModel:
    return SenoneEmissionModel.random(
        topology.num_senones(phones), dim, rng, separation=separation
    )
