"""GMM acoustic model.

Diagonal-covariance Gaussian mixture per senone, the classical Kaldi
front-end.  The model can be instantiated directly from the ground-truth
emission model (oracle parameters) or fitted by maximum likelihood from
aligned training features, which is how tests confirm the estimator
recovers the generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.am.features import SenoneEmissionModel
from repro.am.scorer import ScorerKind

_LOG_2PI = math.log(2.0 * math.pi)
_VAR_FLOOR = 1e-3


@dataclass
class GmmAcousticModel:
    """Per-senone diagonal GMM.

    Attributes:
        means: (senones, mixtures, dim) component means.
        variances: (senones, mixtures, dim) diagonal covariances.
        log_weights: (senones, mixtures) mixture log-weights.
    """

    means: np.ndarray
    variances: np.ndarray
    log_weights: np.ndarray
    kind: ScorerKind = ScorerKind.GMM

    #: Scoring is pure per-frame broadcasting (no cross-frame state, no
    #: shape-dependent BLAS reductions), so scoring any chunking of the
    #: frames is bitwise-identical to scoring them in one call — the
    #: property the scoring pipeline needs to split utterances.
    chunk_exact = True

    @classmethod
    def from_emissions(
        cls,
        emissions: SenoneEmissionModel,
        num_mixtures: int = 2,
        rng: np.random.Generator | None = None,
        jitter: float = 0.1,
        noise_scale: float = 1.0,
    ) -> "GmmAcousticModel":
        """Oracle model: components jittered around the true means.

        ``noise_scale`` must match the feature synthesizer's: observed
        features have variance ``noise_scale**2 * emission_variance``.
        """
        rng = rng or np.random.default_rng(0)
        s, d = emissions.means.shape
        means = np.repeat(emissions.means[:, None, :], num_mixtures, axis=1)
        means = means + rng.normal(0.0, jitter, size=means.shape)
        variances = np.repeat(
            emissions.variances[:, None, :] * noise_scale**2, num_mixtures, axis=1
        )
        log_weights = np.full((s, num_mixtures), -math.log(num_mixtures))
        return cls(means=means, variances=variances, log_weights=log_weights)

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        alignment: np.ndarray,
        num_senones: int,
        num_mixtures: int = 1,
    ) -> "GmmAcousticModel":
        """Maximum-likelihood fit from aligned frames (single pass).

        Senones with no observations fall back to the global statistics.
        Multi-mixture fitting duplicates the ML Gaussian with small
        offsets (sufficient for the synthetic unimodal emissions).
        """
        alignment = np.asarray(alignment)
        dim = features.shape[1]
        global_mean = features.mean(axis=0)
        global_var = np.maximum(features.var(axis=0), _VAR_FLOOR)
        means = np.tile(global_mean, (num_senones, 1))
        variances = np.tile(global_var, (num_senones, 1))
        for senone in range(num_senones):
            rows = features[alignment == senone]
            if len(rows) >= 2:
                means[senone] = rows.mean(axis=0)
                variances[senone] = np.maximum(rows.var(axis=0), _VAR_FLOOR)
            elif len(rows) == 1:
                means[senone] = rows[0]
        offsets = np.linspace(-0.05, 0.05, num_mixtures)[None, :, None]
        mix_means = means[:, None, :] + offsets
        mix_vars = np.repeat(variances[:, None, :], num_mixtures, axis=1)
        log_weights = np.full((num_senones, num_mixtures), -math.log(num_mixtures))
        return cls(means=mix_means, variances=mix_vars, log_weights=log_weights)

    @property
    def num_senones(self) -> int:
        return self.means.shape[0]

    @property
    def num_mixtures(self) -> int:
        return self.means.shape[1]

    @property
    def dim(self) -> int:
        return self.means.shape[2]

    @property
    def size_bytes(self) -> int:
        """float32 deployment footprint (means + variances + weights)."""
        params = self.means.size + self.variances.size + self.log_weights.size
        return params * 4

    @property
    def flops_per_frame(self) -> float:
        # Per frame: for every senone/mixture/dim, a sub, square, scale, add.
        return float(4 * self.num_senones * self.num_mixtures * self.dim)

    def score(self, features: np.ndarray) -> np.ndarray:
        """Log-likelihood matrix, shape (frames, senones)."""
        t, d = features.shape
        if d != self.dim:
            raise ValueError(f"feature dim {d} != model dim {self.dim}")
        # (t, s, m, d) broadcasting, reduced over d then logsumexp over m.
        diff = features[:, None, None, :] - self.means[None, :, :, :]
        exponent = -0.5 * np.sum(diff * diff / self.variances[None], axis=3)
        log_norm = -0.5 * (
            d * _LOG_2PI + np.sum(np.log(self.variances), axis=2)
        )
        component = exponent + log_norm[None] + self.log_weights[None]
        peak = component.max(axis=2)
        return peak + np.log(
            np.sum(np.exp(component - peak[:, :, None]), axis=2)
        )
