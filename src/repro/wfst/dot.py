"""Graphviz DOT export for WFSTs and word lattices.

Debugging aid matching the paper's Figure 3 diagrams: render the AM
graph, the LM graph with its back-off arcs, or a decoded word lattice
and inspect them with any DOT viewer.
"""

from __future__ import annotations

from repro.core.lattice import WordLattice
from repro.wfst.fst import EPSILON, SymbolTable, Wfst


def fst_to_dot(
    fst: Wfst,
    title: str = "wfst",
    max_states: int = 200,
    highlight_label: int | None = None,
) -> str:
    """Render a WFST as a DOT digraph string.

    Args:
        fst: Machine to render.
        title: Graph name.
        max_states: Safety bound; larger machines raise (render a
            trimmed or composed-down view instead).
        highlight_label: Input label drawn dashed (e.g. the LM's
            back-off label, matching Figure 3b's dashed arcs).
    """
    if fst.num_states > max_states:
        raise ValueError(
            f"{fst.num_states} states exceed max_states={max_states}"
        )

    def sym(label: int, table: SymbolTable | None) -> str:
        if label == EPSILON:
            return "ε"
        if table is not None:
            return table.symbol_of(label)
        return str(label)

    lines = [f'digraph "{title}" {{', "  rankdir = LR;"]
    for state in fst.states():
        shape = "doublecircle" if fst.is_final(state) else "circle"
        label = str(state)
        if fst.is_final(state) and fst.final_weight(state) != 0.0:
            label += f"/{fst.final_weight(state):.2f}"
        lines.append(f'  {state} [shape = {shape}, label = "{label}"];')
    if fst.start >= 0:
        lines.append("  __start [shape = point];")
        lines.append(f"  __start -> {fst.start};")
    for state, arc in fst.all_arcs():
        text = (
            f"{sym(arc.ilabel, fst.input_symbols)}:"
            f"{sym(arc.olabel, fst.output_symbols)}/{arc.weight:.2f}"
        )
        style = (
            ', style = dashed'
            if highlight_label is not None and arc.ilabel == highlight_label
            else ""
        )
        lines.append(
            f'  {state} -> {arc.nextstate} [label = "{text}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def lattice_to_dot(
    lattice: WordLattice,
    words: SymbolTable | None = None,
    title: str = "lattice",
    max_nodes: int = 500,
) -> str:
    """Render a word lattice's back-pointer DAG as DOT."""
    if len(lattice) > max_nodes:
        raise ValueError(f"{len(lattice)} nodes exceed max_nodes={max_nodes}")
    lines = [f'digraph "{title}" {{', "  rankdir = LR;"]
    lines.append('  root [shape = point, label = ""];')
    for node_id, node in enumerate(lattice.nodes):
        word = words.symbol_of(node.word) if words else str(node.word)
        lines.append(
            f'  n{node_id} [shape = box, label = "{word}\\n'
            f't={node.frame} c={node.cost:.1f}"];'
        )
        parent = f"n{node.backpointer}" if node.backpointer >= 0 else "root"
        lines.append(f"  {parent} -> n{node_id};")
    lines.append("}")
    return "\n".join(lines)
