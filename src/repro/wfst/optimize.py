"""Classic WFST optimizations: weight pushing, determinization,
minimization.

These are the operations behind the paper's baseline: Kaldi's HCLG is
*determinized and minimized* after composition, which is why Table 1's
composed graphs are ~10x the separate models rather than the raw
product's thousands-fold blow-up.  Having them here lets the composed
size model be validated against a real det+min pipeline on small tasks.

Scope notes (documented limitations, standard for this family):

* Determinization treats a transducer as an acceptor over
  (input, output) label pairs — sufficient for comparing machines and
  optimizing acceptors; true transducer determinization with delayed
  outputs is not implemented.
* Determinization requires a machine without fully-epsilon arcs (run
  :func:`~repro.wfst.build.remove_epsilon` first) and may not terminate
  on machines that are not determinizable (cycle guard raises).
* Minimization requires a deterministic machine; weights are pushed
  first so weight placement cannot block state merging.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.wfst.fst import EPSILON, Wfst
from repro.wfst.ops import shortest_distance


def push_weights(fst: Wfst) -> Wfst:
    """Push weights toward the start state (tropical potentials).

    Each state's potential is its shortest distance to a final state;
    arcs are reweighted as ``w + V(dst) - V(src)`` and final weights as
    ``fw - V(state)``.  Path weights are preserved exactly; along every
    path the cost is incurred as early as possible, the canonical form
    minimization needs.
    """
    potentials = _distance_to_final(fst)
    out = Wfst(semiring=fst.semiring, input_symbols=fst.input_symbols,
               output_symbols=fst.output_symbols)
    out.add_states(fst.num_states)
    if fst.start >= 0:
        out.set_start(fst.start)
    start_potential = (
        potentials[fst.start] if fst.start >= 0 and math.isfinite(potentials[fst.start])
        else 0.0
    )
    for state in fst.states():
        v_src = potentials[state]
        if not math.isfinite(v_src):
            continue  # dead state: drop its arcs
        for arc in fst.out_arcs(state):
            v_dst = potentials[arc.nextstate]
            if not math.isfinite(v_dst):
                continue
            weight = arc.weight + v_dst - v_src
            out.add_arc(state, arc.ilabel, arc.olabel, weight, arc.nextstate)
    for state, fw in fst.finals.items():
        if math.isfinite(potentials[state]):
            out.set_final(state, fw - potentials[state])
    # Re-inject the start potential so total path weights are unchanged.
    if fst.start >= 0 and start_potential != 0.0:
        _add_to_start(out, start_potential)
    return out


def _add_to_start(fst: Wfst, weight: float) -> None:
    """Uniformly shift every path by ``weight`` at the start state."""
    start = fst.start
    fst.arcs[start] = [
        type(a)(a.ilabel, a.olabel, a.weight + weight, a.nextstate)
        for a in fst.out_arcs(start)
    ]
    if fst.is_final(start):
        fst.set_final(start, fst.final_weight(start) + weight)


def _distance_to_final(fst: Wfst) -> list[float]:
    """Shortest distance from each state to any final state."""
    reverse = Wfst(semiring=fst.semiring)
    reverse.add_states(fst.num_states)
    super_final = reverse.add_state()
    for state, arc in fst.all_arcs():
        reverse.add_arc(arc.nextstate, arc.ilabel, arc.olabel, arc.weight, state)
    for state, fw in fst.finals.items():
        reverse.add_arc(super_final, EPSILON, EPSILON, fw, state)
    reverse.set_start(super_final)
    # Distances from the super-final in the reversed machine equal the
    # forward distances to a final state.
    distances = shortest_distance(reverse)
    return distances[: fst.num_states]


def determinize(fst: Wfst, max_states: int | None = None) -> Wfst:
    """Weighted subset determinization over (ilabel, olabel) pairs.

    The result accepts the same weighted language (over label pairs)
    with at most one arc per label pair per state.  Residual weights are
    carried in the subsets, as in Mohri's construction.
    """
    if fst.start < 0:
        raise ValueError("machine needs a start state")
    limit = max_states if max_states is not None else 4 * fst.num_states + 1024

    out = Wfst(semiring=fst.semiring, input_symbols=fst.input_symbols,
               output_symbols=fst.output_symbols)
    # A subset is a frozenset of (state, residual weight).
    start_subset = frozenset({(fst.start, 0.0)})
    ids: dict[frozenset, int] = {start_subset: out.add_state()}
    out.set_start(0)
    queue = [start_subset]

    while queue:
        subset = queue.pop()
        src = ids[subset]
        # Final weight: best residual + final weight over members.
        best_final = math.inf
        transitions: dict[tuple[int, int], list[tuple[int, float]]] = defaultdict(list)
        for state, residual in subset:
            fw = fst.final_weight(state)
            if residual + fw < best_final:
                best_final = residual + fw
            for arc in fst.out_arcs(state):
                if arc.ilabel == EPSILON and arc.olabel == EPSILON:
                    raise ValueError(
                        "determinize requires epsilon-free machines; "
                        "run remove_epsilon first"
                    )
                transitions[(arc.ilabel, arc.olabel)].append(
                    (arc.nextstate, residual + arc.weight)
                )
        if math.isfinite(best_final):
            out.set_final(src, best_final)
        for (ilabel, olabel), targets in transitions.items():
            common = min(weight for _, weight in targets)
            # Keep the best residual per destination state.
            best: dict[int, float] = {}
            for dest, weight in targets:
                residual = weight - common
                if residual < best.get(dest, math.inf):
                    best[dest] = residual
            next_subset = frozenset(best.items())
            if next_subset not in ids:
                if len(ids) >= limit:
                    raise MemoryError(
                        "determinization exceeded the state limit; the "
                        "machine may not be determinizable"
                    )
                ids[next_subset] = out.add_state()
                queue.append(next_subset)
            out.add_arc(src, ilabel, olabel, common, ids[next_subset])
    return out


def minimize(fst: Wfst) -> Wfst:
    """Minimize a deterministic machine (partition refinement).

    Weights are pushed first so that equivalent states have identical
    outgoing (label, weight, block) signatures.  Raises if the machine
    is non-deterministic over (ilabel, olabel) pairs.
    """
    _check_deterministic(fst)
    pushed = push_weights(fst)

    def final_key(state: int) -> tuple:
        return (pushed.is_final(state), round(pushed.final_weight(state), 9))

    # Initial partition by finality signature.
    blocks: dict[tuple, set[int]] = defaultdict(set)
    for state in pushed.states():
        blocks[final_key(state)].add(state)
    block_of = {}
    for i, members in enumerate(blocks.values()):
        for state in members:
            block_of[state] = i

    changed = True
    while changed:
        changed = False
        signature: dict[int, tuple] = {}
        for state in pushed.states():
            arcs = tuple(
                sorted(
                    (a.ilabel, a.olabel, round(a.weight, 9), block_of[a.nextstate])
                    for a in pushed.out_arcs(state)
                )
            )
            signature[state] = (block_of[state], arcs)
        remap: dict[tuple, int] = {}
        new_block_of = {}
        for state in pushed.states():
            sig = signature[state]
            if sig not in remap:
                remap[sig] = len(remap)
            new_block_of[state] = remap[sig]
        if new_block_of != block_of:
            block_of = new_block_of
            changed = True

    num_blocks = len(set(block_of.values()))
    out = Wfst(semiring=pushed.semiring, input_symbols=pushed.input_symbols,
               output_symbols=pushed.output_symbols)
    out.add_states(num_blocks)
    out.set_start(block_of[pushed.start])
    emitted: set[int] = set()
    for state in pushed.states():
        block = block_of[state]
        if block in emitted:
            continue
        emitted.add(block)
        for arc in pushed.out_arcs(state):
            out.add_arc(block, arc.ilabel, arc.olabel, arc.weight,
                        block_of[arc.nextstate])
        if pushed.is_final(state):
            out.set_final(block, pushed.final_weight(state))
    return out


def _check_deterministic(fst: Wfst) -> None:
    for state in fst.states():
        seen: set[tuple[int, int]] = set()
        for arc in fst.out_arcs(state):
            key = (arc.ilabel, arc.olabel)
            if key in seen:
                raise ValueError(
                    f"state {state} has duplicate label pair {key}; "
                    "determinize first"
                )
            seen.add(key)
