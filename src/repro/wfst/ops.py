"""Graph operations over WFSTs: trimming, shortest paths, enumeration.

These are the utilities the rest of the system leans on: ``connect``
keeps composed graphs small, ``shortest_path`` provides the reference
Viterbi answer that decoder tests compare against, and
``enumerate_paths`` brute-forces small machines for property tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.wfst.fst import EPSILON, Wfst


def reachable_states(fst: Wfst) -> set[int]:
    """States reachable from the start state."""
    if fst.start < 0:
        return set()
    seen = {fst.start}
    stack = [fst.start]
    while stack:
        state = stack.pop()
        for arc in fst.out_arcs(state):
            if arc.nextstate not in seen:
                seen.add(arc.nextstate)
                stack.append(arc.nextstate)
    return seen


def coreachable_states(fst: Wfst) -> set[int]:
    """States from which some final state is reachable."""
    # Build the reverse adjacency once; walk back from finals.
    preds: list[list[int]] = [[] for _ in fst.states()]
    for state, arc in fst.all_arcs():
        preds[arc.nextstate].append(state)
    seen = set(fst.finals)
    stack = list(fst.finals)
    while stack:
        state = stack.pop()
        for pred in preds[state]:
            if pred not in seen:
                seen.add(pred)
                stack.append(pred)
    return seen


def connect(fst: Wfst) -> Wfst:
    """Remove states that are not on any start-to-final path."""
    keep = reachable_states(fst) & coreachable_states(fst)
    out = Wfst(
        semiring=fst.semiring,
        input_symbols=fst.input_symbols,
        output_symbols=fst.output_symbols,
    )
    remap: dict[int, int] = {}
    for state in sorted(keep):
        remap[state] = out.add_state()
    if fst.start in remap:
        out.set_start(remap[fst.start])
    for state in sorted(keep):
        for arc in fst.out_arcs(state):
            if arc.nextstate in remap:
                out.add_arc(
                    remap[state], arc.ilabel, arc.olabel, arc.weight,
                    remap[arc.nextstate],
                )
    for state, weight in fst.finals.items():
        if state in remap:
            out.set_final(remap[state], weight)
    return out


@dataclass
class Path:
    """A start-to-final path through a WFST."""

    ilabels: tuple[int, ...]
    olabels: tuple[int, ...]
    weight: float

    def words(self, fst: Wfst) -> list[str]:
        """Output symbols along the path, epsilon-stripped."""
        table = fst.output_symbols
        labels = [l for l in self.olabels if l != EPSILON]
        if table is None:
            return [str(l) for l in labels]
        return [table.symbol_of(l) for l in labels]


def shortest_distance(fst: Wfst) -> list[float]:
    """Tropical shortest distance from the start to every state.

    Uses Dijkstra; arc weights must be non-negative (true for the
    negative-log-probability weights used throughout this system).
    """
    dist = [math.inf] * fst.num_states
    if fst.start < 0:
        return dist
    dist[fst.start] = 0.0
    heap: list[tuple[float, int]] = [(0.0, fst.start)]
    while heap:
        d, state = heapq.heappop(heap)
        if d > dist[state]:
            continue
        for arc in fst.out_arcs(state):
            if arc.weight < 0:
                raise ValueError("Dijkstra requires non-negative weights")
            nd = d + arc.weight
            if nd < dist[arc.nextstate]:
                dist[arc.nextstate] = nd
                heapq.heappush(heap, (nd, arc.nextstate))
    return dist


def shortest_path(fst: Wfst) -> Path | None:
    """The minimum-cost start-to-final path, or None if none exists."""
    if fst.start < 0:
        return None
    dist = [math.inf] * fst.num_states
    back: list[tuple[int, int] | None] = [None] * fst.num_states  # (prev, arc idx)
    dist[fst.start] = 0.0
    heap: list[tuple[float, int]] = [(0.0, fst.start)]
    while heap:
        d, state = heapq.heappop(heap)
        if d > dist[state]:
            continue
        for i, arc in enumerate(fst.out_arcs(state)):
            nd = d + arc.weight
            if nd < dist[arc.nextstate]:
                dist[arc.nextstate] = nd
                back[arc.nextstate] = (state, i)
                heapq.heappush(heap, (nd, arc.nextstate))

    best_state, best_cost = -1, math.inf
    for state, fw in fst.finals.items():
        total = dist[state] + fw
        if total < best_cost:
            best_state, best_cost = state, total
    if best_state < 0:
        return None

    ilabels: list[int] = []
    olabels: list[int] = []
    state = best_state
    while back[state] is not None:
        prev, arc_idx = back[state]
        arc = fst.out_arcs(prev)[arc_idx]
        ilabels.append(arc.ilabel)
        olabels.append(arc.olabel)
        state = prev
    ilabels.reverse()
    olabels.reverse()
    return Path(tuple(ilabels), tuple(olabels), best_cost)


def enumerate_paths(fst: Wfst, max_length: int = 12, max_paths: int = 100_000) -> list[Path]:
    """Every start-to-final path with at most ``max_length`` arcs.

    Brute-force reference for property tests on small machines.
    """
    paths: list[Path] = []
    if fst.start < 0:
        return paths

    stack: list[tuple[int, tuple[int, ...], tuple[int, ...], float]] = [
        (fst.start, (), (), 0.0)
    ]
    while stack:
        state, ilabs, olabs, weight = stack.pop()
        if fst.is_final(state):
            paths.append(Path(ilabs, olabs, weight + fst.final_weight(state)))
            if len(paths) > max_paths:
                raise MemoryError("path explosion in enumerate_paths")
        if len(ilabs) >= max_length:
            continue
        for arc in fst.out_arcs(state):
            stack.append(
                (
                    arc.nextstate,
                    ilabs + (arc.ilabel,),
                    olabs + (arc.olabel,),
                    weight + arc.weight,
                )
            )
    return paths


@dataclass
class _AccumulatedPaths:
    by_io: dict[tuple[tuple[int, ...], tuple[int, ...]], float] = field(
        default_factory=dict
    )


def best_path_per_io(fst: Wfst, max_length: int = 12) -> dict[tuple, float]:
    """Minimum weight per (epsilon-stripped input, output) sequence pair.

    Equivalence up to this map is the right notion for comparing a
    composed machine against the brute-forced relation of its operands.
    """
    acc = _AccumulatedPaths()
    for path in enumerate_paths(fst, max_length=max_length):
        key = (
            tuple(l for l in path.ilabels if l != EPSILON),
            tuple(l for l in path.olabels if l != EPSILON),
        )
        current = acc.by_io.get(key, math.inf)
        if path.weight < current:
            acc.by_io[key] = path.weight
    return acc.by_io
