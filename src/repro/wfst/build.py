"""Rational operations over WFSTs: union, concatenation, closure,
epsilon removal.

These complete the substrate as a usable FST library.  The recognizer
itself composes and searches, but grammar construction workflows
(command grammars for the voice-assistant example, keyword loops,
test fixtures) are naturally expressed with rational operations.
"""

from __future__ import annotations

import math

from repro.wfst.fst import EPSILON, Wfst


def _copy_into(dest: Wfst, src: Wfst) -> list[int]:
    """Append ``src``'s states/arcs into ``dest``; returns the id map."""
    mapping = [dest.add_state() for _ in src.states()]
    for state in src.states():
        for arc in src.out_arcs(state):
            dest.add_arc(
                mapping[state],
                arc.ilabel,
                arc.olabel,
                arc.weight,
                mapping[arc.nextstate],
            )
    return mapping


def union(a: Wfst, b: Wfst) -> Wfst:
    """Accepts anything either machine accepts."""
    _require_start(a, b)
    out = Wfst(semiring=a.semiring, input_symbols=a.input_symbols,
               output_symbols=a.output_symbols)
    start = out.add_state()
    out.set_start(start)
    for machine in (a, b):
        mapping = _copy_into(out, machine)
        out.add_arc(start, EPSILON, EPSILON, 0.0, mapping[machine.start])
        for state, weight in machine.finals.items():
            out.set_final(mapping[state], _min_final(out, mapping[state], weight))
    return out


def concat(a: Wfst, b: Wfst) -> Wfst:
    """Accepts a path of ``a`` followed by a path of ``b``."""
    _require_start(a, b)
    out = Wfst(semiring=a.semiring, input_symbols=a.input_symbols,
               output_symbols=b.output_symbols)
    map_a = _copy_into(out, a)
    map_b = _copy_into(out, b)
    out.set_start(map_a[a.start])
    for state, weight in a.finals.items():
        out.add_arc(map_a[state], EPSILON, EPSILON, weight, map_b[b.start])
    for state, weight in b.finals.items():
        out.set_final(map_b[state], weight)
    return out


def closure(a: Wfst) -> Wfst:
    """Kleene star: zero or more repetitions of ``a``."""
    _require_start(a)
    out = Wfst(semiring=a.semiring, input_symbols=a.input_symbols,
               output_symbols=a.output_symbols)
    start = out.add_state()
    out.set_start(start)
    out.set_final(start)  # zero repetitions
    mapping = _copy_into(out, a)
    out.add_arc(start, EPSILON, EPSILON, 0.0, mapping[a.start])
    for state, weight in a.finals.items():
        out.set_final(mapping[state], weight)
        out.add_arc(mapping[state], EPSILON, EPSILON, weight, mapping[a.start])
    return out


def remove_epsilon(a: Wfst) -> Wfst:
    """Eliminate eps:eps arcs by closing over their tropical distances.

    Arcs whose input OR output label is non-epsilon are preserved; only
    fully-epsilon transitions are folded into their successors.  The
    result is path-equivalent under the tropical semiring.
    """
    _require_start(a)
    closures = [_epsilon_closure(a, s) for s in a.states()]
    out = Wfst(semiring=a.semiring, input_symbols=a.input_symbols,
               output_symbols=a.output_symbols)
    out.add_states(a.num_states)
    out.set_start(a.start)
    for state in a.states():
        best_final = math.inf
        for reachable, dist in closures[state].items():
            final = a.final_weight(reachable)
            if dist + final < best_final:
                best_final = dist + final
            for arc in a.out_arcs(reachable):
                if arc.ilabel == EPSILON and arc.olabel == EPSILON:
                    continue
                out.add_arc(
                    state, arc.ilabel, arc.olabel, dist + arc.weight, arc.nextstate
                )
        if math.isfinite(best_final):
            out.set_final(state, best_final)
    return out


def _epsilon_closure(a: Wfst, start: int) -> dict[int, float]:
    """Tropical shortest eps:eps distance from ``start`` to each state."""
    import heapq

    dist = {start: 0.0}
    heap = [(0.0, start)]
    while heap:
        d, state = heapq.heappop(heap)
        if d > dist.get(state, math.inf):
            continue
        for arc in a.out_arcs(state):
            if arc.ilabel != EPSILON or arc.olabel != EPSILON:
                continue
            nd = d + arc.weight
            if nd < dist.get(arc.nextstate, math.inf):
                dist[arc.nextstate] = nd
                heapq.heappush(heap, (nd, arc.nextstate))
    return dist


def _min_final(out: Wfst, state: int, weight: float) -> float:
    existing = out.final_weight(state)
    return min(existing, weight) if math.isfinite(existing) else weight


def _require_start(*machines: Wfst) -> None:
    for machine in machines:
        if machine.start < 0:
            raise ValueError("operand needs a start state")
    semirings = {m.semiring.name for m in machines}
    if len(semirings) > 1:
        raise ValueError(f"mixed semirings: {semirings}")
