"""Core WFST data structure.

A :class:`Wfst` is a Mealy machine: states connected by arcs, each arc
carrying an input label, an output label and a weight.  Label ``0`` is
reserved for epsilon (no symbol), following the OpenFst convention.

The structure is mutable during construction and is typically frozen
(arc-sorted, trimmed) before being handed to a decoder.  Symbol tables
map label ids back to strings for debugging and lattice output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.wfst.semiring import TROPICAL, Semiring

EPSILON = 0


@dataclass(frozen=True)
class Arc:
    """A single weighted transition.

    Attributes:
        ilabel: Input label id (phone id in the AM, word id in the LM).
        olabel: Output label id (word id; ``EPSILON`` when no word ends).
        weight: Cost in negative log-probability (tropical weight).
        nextstate: Destination state id.
    """

    ilabel: int
    olabel: int
    weight: float
    nextstate: int


class SymbolTable:
    """Bidirectional mapping between label ids and symbol strings.

    Id ``0`` is always ``<eps>``.
    """

    def __init__(self, name: str = "symbols") -> None:
        self.name = name
        self._id_to_sym: list[str] = ["<eps>"]
        self._sym_to_id: dict[str, int] = {"<eps>": EPSILON}

    def add(self, symbol: str) -> int:
        """Intern ``symbol``, returning its (possibly existing) id."""
        existing = self._sym_to_id.get(symbol)
        if existing is not None:
            return existing
        new_id = len(self._id_to_sym)
        self._id_to_sym.append(symbol)
        self._sym_to_id[symbol] = new_id
        return new_id

    def id_of(self, symbol: str) -> int:
        return self._sym_to_id[symbol]

    def symbol_of(self, label: int) -> str:
        return self._id_to_sym[label]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._sym_to_id

    def __len__(self) -> int:
        return len(self._id_to_sym)

    def __iter__(self) -> Iterator[tuple[int, str]]:
        return iter(enumerate(self._id_to_sym))


@dataclass
class WfstStats:
    """Structural statistics used by the sizing experiments."""

    num_states: int = 0
    num_arcs: int = 0
    num_final: int = 0
    num_epsilon_input: int = 0
    num_epsilon_output: int = 0
    max_out_degree: int = 0

    @property
    def avg_out_degree(self) -> float:
        if self.num_states == 0:
            return 0.0
        return self.num_arcs / self.num_states


@dataclass
class Wfst:
    """A mutable weighted finite-state transducer.

    States are dense integer ids.  ``finals`` maps accepting state ids to
    their final weight.  The input/output symbol tables are optional and
    shared by reference when machines are composed.
    """

    semiring: Semiring = field(default_factory=lambda: TROPICAL)
    start: int = -1
    arcs: list[list[Arc]] = field(default_factory=list)
    finals: dict[int, float] = field(default_factory=dict)
    input_symbols: SymbolTable | None = None
    output_symbols: SymbolTable | None = None

    def add_state(self) -> int:
        self.arcs.append([])
        return len(self.arcs) - 1

    def add_states(self, n: int) -> list[int]:
        return [self.add_state() for _ in range(n)]

    def set_start(self, state: int) -> None:
        self._check_state(state)
        self.start = state

    def set_final(self, state: int, weight: float = 0.0) -> None:
        self._check_state(state)
        self.finals[state] = weight

    def is_final(self, state: int) -> bool:
        return state in self.finals

    def final_weight(self, state: int) -> float:
        return self.finals.get(state, self.semiring.zero)

    def add_arc(
        self,
        state: int,
        ilabel: int,
        olabel: int,
        weight: float,
        nextstate: int,
    ) -> Arc:
        self._check_state(state)
        self._check_state(nextstate)
        arc = Arc(ilabel, olabel, weight, nextstate)
        self.arcs[state].append(arc)
        return arc

    def out_arcs(self, state: int) -> list[Arc]:
        return self.arcs[state]

    @property
    def num_states(self) -> int:
        return len(self.arcs)

    @property
    def num_arcs(self) -> int:
        return sum(len(a) for a in self.arcs)

    def states(self) -> range:
        return range(len(self.arcs))

    def all_arcs(self) -> Iterator[tuple[int, Arc]]:
        """Yield ``(source_state, arc)`` for every arc in the machine."""
        for state, arcs in enumerate(self.arcs):
            for arc in arcs:
                yield state, arc

    def arcsort(self, by: str = "ilabel") -> None:
        """Sort each state's arcs, enabling binary search on that key."""
        if by == "ilabel":
            key = lambda a: (a.ilabel, a.olabel, a.nextstate)
        elif by == "olabel":
            key = lambda a: (a.olabel, a.ilabel, a.nextstate)
        else:
            raise ValueError(f"unknown sort key: {by!r}")
        for arcs in self.arcs:
            arcs.sort(key=key)

    def stats(self) -> WfstStats:
        stats = WfstStats(num_states=self.num_states, num_final=len(self.finals))
        for arcs in self.arcs:
            stats.num_arcs += len(arcs)
            stats.max_out_degree = max(stats.max_out_degree, len(arcs))
            for arc in arcs:
                if arc.ilabel == EPSILON:
                    stats.num_epsilon_input += 1
                if arc.olabel == EPSILON:
                    stats.num_epsilon_output += 1
        return stats

    def copy(self) -> "Wfst":
        out = Wfst(
            semiring=self.semiring,
            start=self.start,
            input_symbols=self.input_symbols,
            output_symbols=self.output_symbols,
        )
        out.arcs = [list(arcs) for arcs in self.arcs]
        out.finals = dict(self.finals)
        return out

    def _check_state(self, state: int) -> None:
        if not 0 <= state < len(self.arcs):
            raise ValueError(f"state {state} out of range (have {len(self.arcs)})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Wfst(states={self.num_states}, arcs={self.num_arcs}, "
            f"start={self.start}, finals={len(self.finals)})"
        )


def linear_chain(
    labels: Iterable[tuple[int, int, float]], semiring: Semiring = TROPICAL
) -> Wfst:
    """Build a single-path WFST from ``(ilabel, olabel, weight)`` triples.

    Convenient for tests: composing a chain with a model restricts the
    model to one input sequence.
    """
    fst = Wfst(semiring=semiring)
    current = fst.add_state()
    fst.set_start(current)
    for ilabel, olabel, weight in labels:
        nxt = fst.add_state()
        fst.add_arc(current, ilabel, olabel, weight, nxt)
        current = nxt
    fst.set_final(current)
    return fst
