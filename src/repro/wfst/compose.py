"""Offline WFST composition.

This is the preprocessing step used by fully-composed decoders (the
paper's baseline, Yazdani et al. [34]): the acoustic-model transducer is
composed with the language-model acceptor offline, producing the single
large search graph whose size Table 1 reports.

Two matching disciplines are provided:

* **Epsilon-filter composition** (the default): the standard construction
  in which output-epsilon arcs of ``a`` and input-epsilon arcs of ``b``
  may be taken independently.  A two-state filter canonicalizes epsilon
  interleavings (all ``a``-side moves before ``b``-side moves) so each
  composite path appears exactly once.

* **Phi (failure) composition**: arcs in ``b`` labelled ``phi_label`` are
  treated as *failure* transitions, taken only when the requested label
  has no direct match at the current state.  This matches the exact
  back-off semantics of an n-gram language model and of the UNFOLD
  on-the-fly decoder, so a machine composed this way is path-equivalent
  to what the on-the-fly decoder explores.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

from repro.wfst.fst import EPSILON, Arc, Wfst

#: Filter state: no b-side epsilon move taken since the last match.
_FILTER_OPEN = 0
#: Filter state: a b-side epsilon move was taken; a-side moves are blocked.
_FILTER_B_ONLY = 1


@dataclass
class ComposeStats:
    """Bookkeeping from a composition run (used by sizing experiments)."""

    states_visited: int = 0
    arcs_created: int = 0
    match_lookups: int = 0
    phi_traversals: int = 0


class _SortedArcIndex:
    """Per-state arc index over ``b`` enabling binary search by ilabel."""

    def __init__(self, fst: Wfst) -> None:
        self._arcs: list[list[Arc]] = []
        self._keys: list[list[int]] = []
        for state in fst.states():
            arcs = sorted(fst.out_arcs(state), key=lambda a: a.ilabel)
            self._arcs.append(arcs)
            self._keys.append([a.ilabel for a in arcs])

    def matches(self, state: int, label: int) -> list[Arc]:
        """All arcs at ``state`` whose input label equals ``label``."""
        keys = self._keys[state]
        arcs = self._arcs[state]
        lo = bisect_left(keys, label)
        out = []
        for i in range(lo, len(keys)):
            if keys[i] != label:
                break
            out.append(arcs[i])
        return out

    def single_match(self, state: int, label: int) -> Arc | None:
        matches = self.matches(state, label)
        return matches[0] if matches else None


def compose(
    a: Wfst,
    b: Wfst,
    phi_label: int | None = None,
    max_states: int | None = None,
) -> Wfst:
    """Compose transducers ``a`` and ``b`` (``a``'s outputs feed ``b``).

    Args:
        a: Left transducer (e.g. the acoustic model, phones -> words).
        b: Right transducer (e.g. the language model, words -> words).
        phi_label: If given, arcs in ``b`` with this input label are
            failure arcs with back-off semantics instead of epsilons.
        max_states: Safety valve; raise if the composition exceeds it.

    Returns:
        The composed transducer, trimmed to accessible states.
    """
    result, _ = compose_with_stats(a, b, phi_label=phi_label, max_states=max_states)
    return result


def compose_with_stats(
    a: Wfst,
    b: Wfst,
    phi_label: int | None = None,
    max_states: int | None = None,
) -> tuple[Wfst, ComposeStats]:
    """Like :func:`compose` but also returns :class:`ComposeStats`."""
    if a.start < 0 or b.start < 0:
        raise ValueError("both operands need a start state")

    stats = ComposeStats()
    index = _SortedArcIndex(b)
    out = Wfst(
        semiring=a.semiring,
        input_symbols=a.input_symbols,
        output_symbols=b.output_symbols,
    )

    state_ids: dict[tuple[int, int, int], int] = {}
    queue: deque[tuple[int, int, int]] = deque()

    def intern(key: tuple[int, int, int]) -> int:
        existing = state_ids.get(key)
        if existing is not None:
            return existing
        new_id = out.add_state()
        if max_states is not None and new_id >= max_states:
            raise MemoryError(
                f"composition exceeded max_states={max_states}; "
                "the offline-composed graph blow-up is the paper's point"
            )
        state_ids[key] = new_id
        queue.append(key)
        return new_id

    start_key = (a.start, b.start, _FILTER_OPEN)
    out.set_start(intern(start_key))

    while queue:
        key = queue.popleft()
        s1, s2, filt = key
        src = state_ids[key]
        stats.states_visited += 1

        if a.is_final(s1) and b.is_final(s2):
            out.set_final(
                src, a.semiring.times(a.final_weight(s1), b.final_weight(s2))
            )

        for arc_a in a.out_arcs(s1):
            if arc_a.olabel == EPSILON:
                # a moves alone; blocked after a b-side epsilon move so the
                # interleaving a*, b* is canonical.
                if filt == _FILTER_OPEN:
                    dst = intern((arc_a.nextstate, s2, _FILTER_OPEN))
                    out.add_arc(src, arc_a.ilabel, EPSILON, arc_a.weight, dst)
                    stats.arcs_created += 1
                continue

            stats.match_lookups += 1
            if phi_label is not None:
                _expand_phi(
                    out, src, arc_a, s2, index, phi_label, intern, stats
                )
            else:
                for arc_b in index.matches(s2, arc_a.olabel):
                    dst = intern((arc_a.nextstate, arc_b.nextstate, _FILTER_OPEN))
                    weight = a.semiring.times(arc_a.weight, arc_b.weight)
                    out.add_arc(src, arc_a.ilabel, arc_b.olabel, weight, dst)
                    stats.arcs_created += 1

        if phi_label is None:
            # b moves alone on its input-epsilon arcs.
            for arc_b in index.matches(s2, EPSILON):
                dst = intern((s1, arc_b.nextstate, _FILTER_B_ONLY))
                out.add_arc(src, EPSILON, arc_b.olabel, arc_b.weight, dst)
                stats.arcs_created += 1

    return out, stats


def _expand_phi(
    out: Wfst,
    src: int,
    arc_a: Arc,
    b_state: int,
    index: _SortedArcIndex,
    phi_label: int,
    intern,
    stats: ComposeStats,
) -> None:
    """Match ``arc_a.olabel`` in ``b`` starting at ``b_state``.

    Follows failure (phi) arcs, accumulating their weights, until a state
    with a direct match is reached — the exact back-off walk the
    on-the-fly decoder performs (Section 3.3 of the paper).
    """
    label = arc_a.olabel
    weight_so_far = 0.0
    state = b_state
    seen: set[int] = set()
    while True:
        direct = index.single_match(state, label)
        if direct is not None:
            dst = intern((arc_a.nextstate, direct.nextstate, _FILTER_OPEN))
            weight = arc_a.weight + weight_so_far + direct.weight
            out.add_arc(src, arc_a.ilabel, label, weight, dst)
            stats.arcs_created += 1
            return
        phi = index.single_match(state, phi_label)
        if phi is None or state in seen:
            return  # no match anywhere along the back-off chain
        seen.add(state)
        weight_so_far += phi.weight
        state = phi.nextstate
        stats.phi_traversals += 1
