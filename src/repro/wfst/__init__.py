"""Weighted finite-state transducer substrate.

Everything the recognizer needs from an FST library: semirings, the
mutable :class:`~repro.wfst.fst.Wfst` container, offline composition
(with both epsilon-filter and failure/phi matching), trimming and
shortest-path utilities, and the binary layout used for size accounting.
"""

from repro.wfst.build import closure, concat, remove_epsilon, union
from repro.wfst.compose import ComposeStats, compose, compose_with_stats
from repro.wfst.fst import EPSILON, Arc, SymbolTable, Wfst, WfstStats, linear_chain
from repro.wfst.io import (
    ARC_RECORD_BYTES,
    STATE_RECORD_BYTES,
    SizeBreakdown,
    deserialize,
    serialize,
    uncompressed_size,
    uncompressed_size_bytes,
)
from repro.wfst.ops import (
    Path,
    best_path_per_io,
    connect,
    coreachable_states,
    enumerate_paths,
    reachable_states,
    shortest_distance,
    shortest_path,
)
from repro.wfst.semiring import LOG, TROPICAL, LogSemiring, Semiring, TropicalSemiring

__all__ = [
    "EPSILON",
    "Arc",
    "SymbolTable",
    "Wfst",
    "WfstStats",
    "linear_chain",
    "compose",
    "union",
    "concat",
    "closure",
    "remove_epsilon",
    "compose_with_stats",
    "ComposeStats",
    "connect",
    "reachable_states",
    "coreachable_states",
    "shortest_distance",
    "shortest_path",
    "enumerate_paths",
    "best_path_per_io",
    "Path",
    "serialize",
    "deserialize",
    "uncompressed_size",
    "uncompressed_size_bytes",
    "SizeBreakdown",
    "ARC_RECORD_BYTES",
    "STATE_RECORD_BYTES",
    "Semiring",
    "TropicalSemiring",
    "LogSemiring",
    "TROPICAL",
    "LOG",
]
