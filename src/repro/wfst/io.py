"""Binary serialization and byte accounting for WFSTs.

The memory layout follows Choi et al. [3], the layout the paper adopts
(Section 3.4): two flat arrays, one for states and one for arcs.  Each
state record holds the offset of its first outgoing arc and its arc
count; each *uncompressed* arc is a 128-bit record of four 32-bit
fields — destination state, input label, output label and IEEE-754
weight — exactly the structure Section 3.4 describes before compression.

``serialize``/``deserialize`` are a real round-trippable binary codec
(used to validate the accounting), and ``uncompressed_size_bytes`` is
the sizing rule used by Table 1 / Figure 2 / Figure 8 experiments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.wfst.fst import Wfst
from repro.wfst.semiring import TROPICAL

_MAGIC = b"UWF1"
_HEADER = struct.Struct("<4siii")  # magic, num_states, num_finals, start
_STATE = struct.Struct("<ii")  # first arc offset, arc count
_ARC = struct.Struct("<iiif")  # nextstate, ilabel, olabel, weight
_FINAL = struct.Struct("<if")  # state, final weight

#: Bytes per record in the uncompressed Choi et al. layout.
ARC_RECORD_BYTES = _ARC.size  # 16 bytes == 128 bits
STATE_RECORD_BYTES = _STATE.size  # 8 bytes


@dataclass(frozen=True)
class SizeBreakdown:
    """Byte accounting for one serialized WFST."""

    state_bytes: int
    arc_bytes: int
    final_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.state_bytes + self.arc_bytes + self.final_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


def uncompressed_size(fst: Wfst) -> SizeBreakdown:
    """Size of ``fst`` in the uncompressed two-array layout."""
    return SizeBreakdown(
        state_bytes=fst.num_states * STATE_RECORD_BYTES,
        arc_bytes=fst.num_arcs * ARC_RECORD_BYTES,
        final_bytes=len(fst.finals) * _FINAL.size,
    )


def uncompressed_size_bytes(fst: Wfst) -> int:
    return uncompressed_size(fst).total_bytes


def serialize(fst: Wfst) -> bytes:
    """Encode ``fst`` into the two-array binary layout."""
    chunks = [_HEADER.pack(_MAGIC, fst.num_states, len(fst.finals), fst.start)]
    offset = 0
    for state in fst.states():
        arcs = fst.out_arcs(state)
        chunks.append(_STATE.pack(offset, len(arcs)))
        offset += len(arcs)
    for _, arc in fst.all_arcs():
        chunks.append(_ARC.pack(arc.nextstate, arc.ilabel, arc.olabel, arc.weight))
    for state, weight in sorted(fst.finals.items()):
        chunks.append(_FINAL.pack(state, weight))
    return b"".join(chunks)


def deserialize(data: bytes) -> Wfst:
    """Decode a WFST previously produced by :func:`serialize`."""
    magic, num_states, num_finals, start = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("not a serialized WFST (bad magic)")
    fst = Wfst(semiring=TROPICAL)
    fst.add_states(num_states)

    pos = _HEADER.size
    counts = []
    for _ in range(num_states):
        _, count = _STATE.unpack_from(data, pos)
        counts.append(count)
        pos += _STATE.size
    for state, count in enumerate(counts):
        for _ in range(count):
            nextstate, ilabel, olabel, weight = _ARC.unpack_from(data, pos)
            fst.add_arc(state, ilabel, olabel, weight, nextstate)
            pos += _ARC.size
    for _ in range(num_finals):
        state, weight = _FINAL.unpack_from(data, pos)
        fst.set_final(state, weight)
        pos += _FINAL.size
    if start >= 0:
        fst.set_start(start)
    return fst
