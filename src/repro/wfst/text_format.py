"""OpenFst-compatible text format.

Interop with the wider WFST ecosystem: ``fstcompile``/``fstprint``
exchange machines as text — one arc per line
(``src dst ilabel olabel [weight]``), final states as
(``state [weight]``) — with separate symbol-table files
(``symbol id`` per line).  Reading and writing this format lets models
built here be inspected with OpenFst tooling and vice versa.
"""

from __future__ import annotations

from typing import Iterable, TextIO

from repro.wfst.fst import SymbolTable, Wfst


def write_fst_text(fst: Wfst, stream: TextIO, symbols: bool = False) -> None:
    """Serialize in OpenFst text format.

    Args:
        fst: Machine to write; its start state is emitted first, as
            OpenFst requires.
        stream: Destination.
        symbols: Write symbol strings instead of label ids (requires
            the machine's symbol tables).
    """
    if fst.start < 0:
        raise ValueError("machine needs a start state")

    def ilabel(label: int) -> str:
        if symbols and fst.input_symbols is not None:
            return fst.input_symbols.symbol_of(label)
        return str(label)

    def olabel(label: int) -> str:
        if symbols and fst.output_symbols is not None:
            return fst.output_symbols.symbol_of(label)
        return str(label)

    order = [fst.start] + [s for s in fst.states() if s != fst.start]
    for state in order:
        for arc in fst.out_arcs(state):
            stream.write(
                f"{state}\t{arc.nextstate}\t{ilabel(arc.ilabel)}\t"
                f"{olabel(arc.olabel)}\t{arc.weight:.6f}\n"
            )
        if fst.is_final(state):
            stream.write(f"{state}\t{fst.final_weight(state):.6f}\n")


def read_fst_text(
    lines: Iterable[str],
    input_symbols: SymbolTable | None = None,
    output_symbols: SymbolTable | None = None,
) -> Wfst:
    """Parse OpenFst text format.

    The first line's source state becomes the start state (OpenFst
    convention).  Labels are parsed as ids unless symbol tables are
    given, in which case they are resolved (and interned if missing).
    """
    fst = Wfst(input_symbols=input_symbols, output_symbols=output_symbols)

    def ensure_state(state: int) -> int:
        while fst.num_states <= state:
            fst.add_state()
        return state

    def parse_label(token: str, table: SymbolTable | None) -> int:
        if table is not None and not token.lstrip("-").isdigit():
            return table.add(token)
        return int(token)

    start_set = False
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) in (1, 2):  # final state line
            state = ensure_state(int(parts[0]))
            weight = float(parts[1]) if len(parts) == 2 else 0.0
            fst.set_final(state, weight)
            if not start_set:
                fst.set_start(state)
                start_set = True
            continue
        if len(parts) not in (4, 5):
            raise ValueError(f"bad FST text line: {raw!r}")
        src = ensure_state(int(parts[0]))
        dst = ensure_state(int(parts[1]))
        ilabel = parse_label(parts[2], input_symbols)
        olabel = parse_label(parts[3], output_symbols)
        weight = float(parts[4]) if len(parts) == 5 else 0.0
        fst.add_arc(src, ilabel, olabel, weight, dst)
        if not start_set:
            fst.set_start(src)
            start_set = True
    return fst


def write_symbol_table(table: SymbolTable, stream: TextIO) -> None:
    """OpenFst symbol-table format: ``symbol<TAB>id`` per line."""
    for label, symbol in table:
        stream.write(f"{symbol}\t{label}\n")


def read_symbol_table(lines: Iterable[str], name: str = "symbols") -> SymbolTable:
    """Parse an OpenFst symbol table; ids must be dense from 0."""
    entries: list[tuple[int, str]] = []
    for raw in lines:
        line = raw.strip()
        # No comment syntax here: "#"-prefixed symbols (#phi, Kaldi's
        # disambiguation #0, #1, ...) are legitimate table entries.
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"bad symbol-table line: {raw!r}")
        entries.append((int(parts[1]), parts[0]))
    entries.sort()
    table = SymbolTable(name)
    for expected, (label, symbol) in enumerate(entries):
        if label != expected:
            raise ValueError(
                f"symbol ids must be dense from 0; missing id {expected}"
            )
        if expected == 0:
            continue  # id 0 is always <eps>, already present
        table.add(symbol)
    return table
