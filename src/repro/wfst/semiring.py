"""Semirings for weighted finite-state transducers.

Speech decoders operate in the *tropical* semiring over negative
log-probabilities: ``plus`` is ``min`` (take the best path) and ``times``
is ``+`` (accumulate costs along a path).  The *log* semiring replaces
``min`` with a log-sum-exp, which sums probabilities over alternative
paths; it is used when computing full posteriors rather than Viterbi
best paths.

Weights are plain Python floats.  ``float('inf')`` is the semiring zero
(an impossible path) and ``0.0`` is the semiring one (a free transition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring over float weights.

    Attributes:
        name: Human-readable identifier (``"tropical"`` or ``"log"``).
        zero: Additive identity; annihilates under ``times``.
        one: Multiplicative identity.
    """

    name: str
    zero: float = math.inf
    one: float = 0.0

    def plus(self, a: float, b: float) -> float:
        raise NotImplementedError

    def times(self, a: float, b: float) -> float:
        """Extend a path: accumulate costs (both semirings use addition)."""
        if a == math.inf or b == math.inf:
            return math.inf
        return a + b

    def better(self, a: float, b: float) -> bool:
        """True if ``a`` is strictly preferable to ``b`` (lower cost)."""
        return a < b

    def approx_equal(self, a: float, b: float, tol: float = 1e-9) -> bool:
        if a == b:
            return True
        if math.isinf(a) or math.isinf(b):
            return False
        return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


class TropicalSemiring(Semiring):
    """min/+ semiring: the Viterbi (best-path) semiring."""

    def __init__(self) -> None:
        super().__init__(name="tropical")

    def plus(self, a: float, b: float) -> float:
        return a if a <= b else b


class LogSemiring(Semiring):
    """-logsumexp/+ semiring: sums probabilities over paths."""

    def __init__(self) -> None:
        super().__init__(name="log")

    def plus(self, a: float, b: float) -> float:
        if a == math.inf:
            return b
        if b == math.inf:
            return a
        # -log(exp(-a) + exp(-b)), computed stably.
        m = min(a, b)
        return m - math.log1p(math.exp(-(abs(a - b))))


TROPICAL = TropicalSemiring()
LOG = LogSemiring()
