"""Bit-granular serialization.

The compressed WFST formats of Section 3.4 pack arcs into 6-, 20-, 27-
and 45-bit records.  These helpers provide an MSB-first bit stream with
exact length accounting so the packers are real codecs (round-tripped in
tests), not just byte counters.
"""

from __future__ import annotations


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._chunks: list[tuple[int, int]] = []  # (value, width)
        self._bits = 0

    def write(self, value: int, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._chunks.append((value, width))
        self._bits += width

    @property
    def bit_length(self) -> int:
        return self._bits

    @property
    def byte_length(self) -> int:
        return (self._bits + 7) // 8

    def getvalue(self) -> bytes:
        accumulator = 0
        for value, width in self._chunks:
            accumulator = (accumulator << width) | value
        padding = (8 - self._bits % 8) % 8
        accumulator <<= padding
        return accumulator.to_bytes((self._bits + padding) // 8 or 1, "big")


class BitReader:
    """Sequential MSB-first reader with random bit seek."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = data
        self._pos = 0
        self.bit_length = bit_length if bit_length is not None else len(data) * 8

    def read(self, width: int) -> int:
        if width <= 0:
            raise ValueError("width must be positive")
        if self._pos + width > self.bit_length:
            raise EOFError(
                f"read of {width} bits at {self._pos} exceeds {self.bit_length}"
            )
        value = 0
        pos = self._pos
        remaining = width
        while remaining:
            byte = self._data[pos // 8]
            offset = pos % 8
            take = min(8 - offset, remaining)
            shifted = (byte >> (8 - offset - take)) & ((1 << take) - 1)
            value = (value << take) | shifted
            pos += take
            remaining -= take
        self._pos = pos
        return value

    def seek(self, bit_position: int) -> None:
        if not 0 <= bit_position <= self.bit_length:
            raise ValueError(f"bad seek target {bit_position}")
        self._pos = bit_position

    @property
    def position(self) -> int:
        return self._pos

    def exhausted(self) -> bool:
        return self._pos >= self.bit_length


def bits_needed(max_value: int) -> int:
    """Minimum width to represent values in [0, max_value]."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return max(1, max_value.bit_length())
