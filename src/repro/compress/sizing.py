"""Dataset sizing: the four configurations of Figure 8 / Tables 1-2.

For one ASR task this computes, in bytes:

* ``Fully-Composed``: the offline-composed WFST, uncompressed;
* ``Fully-Composed+Comp``: the same graph under Price-style compression;
* ``On-the-fly``: the separate AM and LM WFSTs, uncompressed;
* ``On-the-fly+Comp``: the separate models under Section 3.4 packing —
  UNFOLD's configuration.

AM/LM numbers come from real serializers and real bit-packers; the
composed graph from the structural model validated against materialized
composition on small tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.compress.am_pack import pack_am
from repro.compress.composed_model import ComposedSizeModel, build_composed_model
from repro.compress.composed_pack import pack_composed_size
from repro.compress.lm_pack import pack_lm
from repro.compress.state_pack import pack_states
from repro.wfst.io import uncompressed_size_bytes

if TYPE_CHECKING:
    from repro.asr.task import AsrTask


@dataclass(frozen=True)
class DatasetSizing:
    """All four Figure 8 bars for one task, in bytes."""

    task_name: str
    am_bytes: int
    lm_bytes: int
    composed_bytes: int
    composed_comp_bytes: int
    am_comp_bytes: int
    lm_comp_bytes: int

    @property
    def onthefly_bytes(self) -> int:
        """Table 1's AM+LM column: the uncompressed on-the-fly dataset."""
        return self.am_bytes + self.lm_bytes

    @property
    def onthefly_comp_bytes(self) -> int:
        """Table 2's UNFOLD row: compressed AM + LM."""
        return self.am_comp_bytes + self.lm_comp_bytes

    @property
    def unfold_reduction(self) -> float:
        """Figure 8's headline: Fully-Composed over On-the-fly+Comp (31x avg)."""
        return self.composed_bytes / self.onthefly_comp_bytes

    @property
    def compression_vs_price(self) -> float:
        """Table 2's ratio: compressed composed over compressed on-the-fly (8.8x avg)."""
        return self.composed_comp_bytes / self.onthefly_comp_bytes

    @property
    def composition_blowup(self) -> float:
        """Table 1's ratio: composed over AM+LM."""
        return self.composed_bytes / self.onthefly_bytes

    def as_row(self) -> dict[str, float]:
        mb = 1.0 / 2**20
        return {
            "task": self.task_name,
            "fully_composed_mb": self.composed_bytes * mb,
            "fully_composed_comp_mb": self.composed_comp_bytes * mb,
            "onthefly_mb": self.onthefly_bytes * mb,
            "onthefly_comp_mb": self.onthefly_comp_bytes * mb,
        }


@dataclass(frozen=True)
class DecodeStateSizing:
    """Transient per-decoder state UNFOLD adds next to the stored dataset.

    Not part of the on-disk WFSTs, but real memory at decode time: the
    Offset Lookup Table (Section 3.5) and the LM expansion cache (the
    software analogue of the paper's LM arc cache, Section 3.3).  The
    expansion-cache number is the worst-case resident bound — capacity
    times the deepest row — matching ``LmExpansionCache.size_bytes()``
    when full of deepest-chain rows.
    """

    olt_bytes: int
    expansion_cache_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.olt_bytes + self.expansion_cache_bytes


def measure_decode_state(
    lm,
    offset_table_entries: int = 32 * 1024,
    expansion_cache_states: int = 1024,
) -> DecodeStateSizing:
    """Size the decode-time lookup state for one LM graph."""
    from repro.core.composition import expansion_row_bytes_bound

    max_chain = 1
    for state in lm.fst.states():
        length = 1
        current = state
        while True:
            backoff = lm.backoff_arc(current)
            if backoff is None:
                break
            current = backoff.nextstate
            length += 1
            if length > lm.fst.num_states:
                raise ValueError("back-off arcs form a cycle")
        max_chain = max(max_chain, length)
    label_space = int(lm.backoff_label) + 1
    # The cache holds at most one row per LM state, so the residency
    # bound is min(capacity, states) deepest-chain rows.
    resident = min(expansion_cache_states, lm.fst.num_states)
    return DecodeStateSizing(
        # Valid bit + 24-bit tag + 23-bit offset per entry (Section 3.5).
        olt_bytes=offset_table_entries * 6,
        expansion_cache_bytes=resident
        * expansion_row_bytes_bound(label_space, max_chain),
    )


def measure_dataset_sizing(task: "AsrTask") -> DatasetSizing:
    """Compute every Figure 8 configuration for one task."""
    am_bytes = uncompressed_size_bytes(task.am.fst)
    lm_bytes = uncompressed_size_bytes(task.lm.fst)

    packed_am = pack_am(task.am.fst)
    am_states = pack_states(
        [o // 1 for o in packed_am.arc_offsets], packed_am.arc_counts
    )
    am_comp = packed_am.size_bytes + am_states.size_bytes

    packed_lm = pack_lm(task.lm)
    lm_states = pack_states(packed_lm.state_offsets, packed_lm.word_arc_counts)
    lm_comp = packed_lm.size_bytes + lm_states.size_bytes

    composed = build_composed_model(task.am, task.lm)
    composed_comp = pack_composed_size(composed)

    return DatasetSizing(
        task_name=task.name,
        am_bytes=am_bytes,
        lm_bytes=lm_bytes,
        composed_bytes=composed.total_bytes,
        composed_comp_bytes=composed_comp.total_bytes,
        am_comp_bytes=am_comp,
        lm_comp_bytes=lm_comp,
    )


def composed_model_for(task: "AsrTask") -> ComposedSizeModel:
    return build_composed_model(task.am, task.lm)
