"""Dataset sizing: the four configurations of Figure 8 / Tables 1-2.

For one ASR task this computes, in bytes:

* ``Fully-Composed``: the offline-composed WFST, uncompressed;
* ``Fully-Composed+Comp``: the same graph under Price-style compression;
* ``On-the-fly``: the separate AM and LM WFSTs, uncompressed;
* ``On-the-fly+Comp``: the separate models under Section 3.4 packing —
  UNFOLD's configuration.

AM/LM numbers come from real serializers and real bit-packers; the
composed graph from the structural model validated against materialized
composition on small tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.compress.am_pack import pack_am
from repro.compress.composed_model import ComposedSizeModel, build_composed_model
from repro.compress.composed_pack import pack_composed_size
from repro.compress.lm_pack import pack_lm
from repro.compress.state_pack import pack_states
from repro.wfst.io import uncompressed_size_bytes

if TYPE_CHECKING:
    from repro.asr.task import AsrTask


@dataclass(frozen=True)
class DatasetSizing:
    """All four Figure 8 bars for one task, in bytes."""

    task_name: str
    am_bytes: int
    lm_bytes: int
    composed_bytes: int
    composed_comp_bytes: int
    am_comp_bytes: int
    lm_comp_bytes: int

    @property
    def onthefly_bytes(self) -> int:
        """Table 1's AM+LM column: the uncompressed on-the-fly dataset."""
        return self.am_bytes + self.lm_bytes

    @property
    def onthefly_comp_bytes(self) -> int:
        """Table 2's UNFOLD row: compressed AM + LM."""
        return self.am_comp_bytes + self.lm_comp_bytes

    @property
    def unfold_reduction(self) -> float:
        """Figure 8's headline: Fully-Composed over On-the-fly+Comp (31x avg)."""
        return self.composed_bytes / self.onthefly_comp_bytes

    @property
    def compression_vs_price(self) -> float:
        """Table 2's ratio: compressed composed over compressed on-the-fly (8.8x avg)."""
        return self.composed_comp_bytes / self.onthefly_comp_bytes

    @property
    def composition_blowup(self) -> float:
        """Table 1's ratio: composed over AM+LM."""
        return self.composed_bytes / self.onthefly_bytes

    def as_row(self) -> dict[str, float]:
        mb = 1.0 / 2**20
        return {
            "task": self.task_name,
            "fully_composed_mb": self.composed_bytes * mb,
            "fully_composed_comp_mb": self.composed_comp_bytes * mb,
            "onthefly_mb": self.onthefly_bytes * mb,
            "onthefly_comp_mb": self.onthefly_comp_bytes * mb,
        }


def measure_dataset_sizing(task: "AsrTask") -> DatasetSizing:
    """Compute every Figure 8 configuration for one task."""
    am_bytes = uncompressed_size_bytes(task.am.fst)
    lm_bytes = uncompressed_size_bytes(task.lm.fst)

    packed_am = pack_am(task.am.fst)
    am_states = pack_states(
        [o // 1 for o in packed_am.arc_offsets], packed_am.arc_counts
    )
    am_comp = packed_am.size_bytes + am_states.size_bytes

    packed_lm = pack_lm(task.lm)
    lm_states = pack_states(packed_lm.state_offsets, packed_lm.word_arc_counts)
    lm_comp = packed_lm.size_bytes + lm_states.size_bytes

    composed = build_composed_model(task.am, task.lm)
    composed_comp = pack_composed_size(composed)

    return DatasetSizing(
        task_name=task.name,
        am_bytes=am_bytes,
        lm_bytes=lm_bytes,
        composed_bytes=composed.total_bytes,
        composed_comp_bytes=composed_comp.total_bytes,
        am_comp_bytes=am_comp,
        lm_comp_bytes=lm_comp,
    )


def composed_model_for(task: "AsrTask") -> ComposedSizeModel:
    return build_composed_model(task.am, task.lm)
