"""K-means weight quantization (Section 3.4).

Arc weights shrink from 32-bit floats to 6-bit cluster indices (64
clusters).  The accelerator stores the 64 float32 centroids in a 256-
byte on-chip table and dereferences indices in an extra pipeline stage.
The paper reports the resulting WER change is below 0.01%; the decoder
equivalence tests in this repo check the same property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper configuration: 64 clusters -> 6-bit indices.
DEFAULT_CLUSTERS = 64
INDEX_BITS = 6
#: On-chip centroid table: 64 entries x float32 = 256 bytes.
CENTROID_TABLE_BYTES = DEFAULT_CLUSTERS * 4


@dataclass
class WeightQuantizer:
    """Scalar k-means codebook over arc weights."""

    centroids: np.ndarray  # sorted, shape (clusters,)

    @classmethod
    def fit(
        cls,
        weights: np.ndarray,
        clusters: int = DEFAULT_CLUSTERS,
        iterations: int = 25,
        seed: int = 0,
    ) -> "WeightQuantizer":
        """Lloyd's algorithm with quantile initialization.

        Quantile init spreads centroids over the weight distribution's
        mass, which converges in a handful of iterations for the
        1-D case.
        """
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights[np.isfinite(weights)]
        if weights.size == 0:
            raise ValueError("no finite weights to quantize")
        unique = np.unique(weights)
        if len(unique) <= clusters:
            centroids = np.pad(
                unique, (0, clusters - len(unique)), mode="edge"
            )
            return cls(centroids=np.sort(centroids))
        quantiles = np.linspace(0.0, 1.0, clusters)
        centroids = np.quantile(weights, quantiles)
        # Lloyd iterations; de-duplicate collapsed centroids via jitter.
        rng = np.random.default_rng(seed)
        for _ in range(iterations):
            assignment = np.searchsorted(
                (centroids[:-1] + centroids[1:]) / 2.0, weights
            )
            sums = np.bincount(assignment, weights=weights, minlength=clusters)
            counts = np.bincount(assignment, minlength=clusters)
            empty = counts == 0
            counts[empty] = 1
            new_centroids = sums / counts
            new_centroids[empty] = centroids[empty] + rng.normal(
                0, 1e-6, size=empty.sum()
            )
            new_centroids = np.sort(new_centroids)
            if np.allclose(new_centroids, centroids):
                centroids = new_centroids
                break
            centroids = new_centroids
        return cls(centroids=centroids)

    @property
    def num_clusters(self) -> int:
        return len(self.centroids)

    @property
    def index_bits(self) -> int:
        return max(1, (self.num_clusters - 1).bit_length())

    def encode(self, weight: float) -> int:
        """Nearest-centroid index."""
        boundaries = (self.centroids[:-1] + self.centroids[1:]) / 2.0
        return int(np.searchsorted(boundaries, weight))

    def encode_many(self, weights: np.ndarray) -> np.ndarray:
        boundaries = (self.centroids[:-1] + self.centroids[1:]) / 2.0
        return np.searchsorted(boundaries, np.asarray(weights))

    def decode(self, index: int) -> float:
        return float(self.centroids[index])

    def quantize(self, weight: float) -> float:
        """Round-trip a weight through the codebook."""
        return self.decode(self.encode(weight))

    def max_error(self, weights: np.ndarray) -> float:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights[np.isfinite(weights)]
        quantized = self.centroids[self.encode_many(weights)]
        return float(np.max(np.abs(quantized - weights))) if weights.size else 0.0


def fit_wfst_quantizer(fst, clusters: int = DEFAULT_CLUSTERS) -> WeightQuantizer:
    """Fit a codebook over every arc weight plus finite final weights."""
    weights = [arc.weight for _, arc in fst.all_arcs()]
    weights.extend(w for w in fst.finals.values() if np.isfinite(w))
    return WeightQuantizer.fit(np.asarray(weights), clusters=clusters)


def quantize_wfst(fst, quantizer: WeightQuantizer):
    """A copy of ``fst`` with every weight snapped to its centroid."""
    out = fst.copy()
    for state in out.states():
        out.arcs[state] = [
            type(a)(a.ilabel, a.olabel, quantizer.quantize(a.weight), a.nextstate)
            for a in out.arcs[state]
        ]
    out.finals = {
        s: quantizer.quantize(w) if np.isfinite(w) else w
        for s, w in out.finals.items()
    }
    return out
