"""Size and layout model of the offline-composed WFST.

The baseline decoders (Kaldi's HCLG, the MICRO-49 accelerator) search a
*determinized* composition of the lexicon/HMM transducer with the LM:
each LM state grows a prefix-shared tree of the HMM chains of the words
it has explicit arcs for, with back-off epsilon arcs preserved between
LM levels.  That graph — not the naive product of the two machines — is
what Table 1 reports at gigabyte scale, so it is what we size.

The model counts, exactly for our constructed AM/LM pairs:

* ``states``: one backbone state per LM state, plus the per-LM-state
  pronunciation-trie nodes (prefix sharing computed via a global senone
  prefix trie and a stamped union pass);
* ``arcs``: a self-loop and an incoming tree edge per trie node, one
  word-end arc per explicit (LM state, pronunciation) pair, one back-off
  arc per non-initial LM state, and the optional silence chain per
  backbone state;
* short/long arc classes for Price-style compression (short = self-loop
  or depth-first-adjacent tree edge).

It also provides the dense address layout the baseline accelerator
simulator uses: per-LM-state blocks of trie-node state records, so
token addresses exhibit the same kind of spread over the huge dataset
that makes the baseline's caches miss.

Validated in tests against real (materialized) composition on tiny
tasks: the model must land between the trimmed composition's size and
the naive product bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.am.graph import AmGraph
from repro.lm.graph import LmGraph
from repro.wfst.io import ARC_RECORD_BYTES, STATE_RECORD_BYTES


class PronunciationTrie:
    """Global prefix trie over senone sequences of all pronunciations."""

    def __init__(self) -> None:
        self.children: list[dict[int, int]] = [{}]  # node -> senone -> node
        self.parent: list[int] = [-1]
        self.first_child_of_parent: list[bool] = [False]

    def insert(self, senones: list[int]) -> list[int]:
        """Intern a senone sequence; returns the node path (excl. root)."""
        node = 0
        path: list[int] = []
        for senone in senones:
            nxt = self.children[node].get(senone)
            if nxt is None:
                nxt = len(self.children)
                self.first_child_of_parent.append(not self.children[node])
                self.children[node][senone] = nxt
                self.children.append({})
                self.parent.append(node)
            node = nxt
            path.append(node)
        return path

    @property
    def num_nodes(self) -> int:
        """Nodes excluding the root."""
        return len(self.children) - 1


@dataclass
class ComposedSizeModel:
    """Exact structural accounting of the det(L o G)-style graph."""

    states: int
    arcs: int
    short_arcs: int  # self-loops + depth-first-adjacent tree edges
    long_arcs: int
    lm_state_base: list[int] = field(repr=False, default_factory=list)
    lm_state_nodes: list[int] = field(repr=False, default_factory=list)

    @property
    def state_bytes(self) -> int:
        return self.states * STATE_RECORD_BYTES

    @property
    def arc_bytes(self) -> int:
        return self.arcs * ARC_RECORD_BYTES

    @property
    def total_bytes(self) -> int:
        """Uncompressed footprint (the Fully-Composed configuration)."""
        return self.state_bytes + self.arc_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / 2**20


def build_composed_model(am: AmGraph, lm: LmGraph) -> ComposedSizeModel:
    """Count the composed graph's states and arcs without building it."""
    lexicon_paths, trie = _pronunciation_paths(am)
    num_trie_nodes = trie.num_nodes

    sil_senones = am.topology.states_per_phone  # silence chain length
    stamp = [-1] * (num_trie_nodes + 1)

    total_nodes = 0
    total_word_ends = 0
    total_first_child_edges = 0
    lm_state_base: list[int] = []
    lm_state_nodes: list[int] = []

    fst = lm.fst
    for lm_state in fst.states():
        lm_state_base.append(total_nodes)
        nodes_here = 0
        first_child_here = 0
        arcs = fst.out_arcs(lm_state)
        for arc in arcs:
            if arc.ilabel == lm.backoff_label:
                continue
            for path in lexicon_paths.get(arc.ilabel, ()):  # pron variants
                total_word_ends += 1
                for node in path:
                    if stamp[node] != lm_state:
                        stamp[node] = lm_state
                        nodes_here += 1
                        if trie.first_child_of_parent[node]:
                            first_child_here += 1
        lm_state_nodes.append(nodes_here)
        total_nodes += nodes_here
        total_first_child_edges += first_child_here

    num_lm_states = fst.num_states
    backoff_count = sum(
        1 for s in fst.states() if lm.backoff_arc(s) is not None
    )
    # Optional silence chain per backbone state: nodes + entry/exit arcs.
    silence_nodes = sil_senones * num_lm_states
    silence_arcs = (2 * sil_senones + 1) * num_lm_states

    states = num_lm_states + total_nodes + silence_nodes
    self_loops = total_nodes
    tree_edges = total_nodes  # each node has exactly one incoming edge
    arcs = self_loops + tree_edges + total_word_ends + backoff_count + silence_arcs

    short = self_loops + total_first_child_edges + 2 * silence_nodes
    return ComposedSizeModel(
        states=states,
        arcs=arcs,
        short_arcs=short,
        long_arcs=arcs - short,
        lm_state_base=lm_state_base,
        lm_state_nodes=lm_state_nodes,
    )


def _pronunciation_paths(
    am: AmGraph,
) -> tuple[dict[int, list[list[int]]], PronunciationTrie]:
    """Trie node paths per word id, derived from the AM graph chains."""
    trie = PronunciationTrie()
    paths: dict[int, list[list[int]]] = {}
    # Walk each chain from the loop state: enter arc, then advances,
    # collecting self-loop senone labels until the cross-word arc.
    fst = am.fst
    for enter in fst.out_arcs(am.loop_state):
        senones: list[int] = []
        state = enter.nextstate
        word = None
        while True:
            senone = am.senone_of_state(state)
            senones.append(senone)
            advance = None
            for arc in fst.out_arcs(state):
                if arc.nextstate == state:
                    continue  # self-loop
                advance = arc
                break
            assert advance is not None, "chain must return to the loop state"
            if advance.nextstate == am.loop_state:
                word = advance.olabel
                break
            state = advance.nextstate
        path = trie.insert(senones)
        paths.setdefault(word, []).append(path)
    # Silence (word id 0) chains are handled separately by the caller.
    paths.pop(0, None)
    return paths, trie


@dataclass
class ComposedAddressMap:
    """Maps baseline-decoder tokens to addresses in the composed layout.

    State records live in per-LM-state blocks (backbone states first,
    then each block's trie nodes); arc records are contiguous per state.
    The map needs only the AM-state -> trie-node table and the per-block
    bases, so it stays small even when the composed graph would be huge.
    """

    model: ComposedSizeModel
    am_state_node: list[int]  # AM chain state -> global trie node id
    num_lm_states: int

    def state_index(self, am_state: int, lm_state: int) -> int:
        if am_state == 0:  # loop state -> LM backbone state
            return lm_state
        node = self.am_state_node[am_state]
        base = self.num_lm_states + self.model.lm_state_base[lm_state]
        span = max(1, self.model.lm_state_nodes[lm_state])
        return base + (node * 2654435761) % span

    def state_address(self, am_state: int, lm_state: int) -> int:
        return self.state_index(am_state, lm_state) * STATE_RECORD_BYTES

    def arc_address(self, am_state: int, lm_state: int, ordinal: int) -> int:
        base = self.model.state_bytes
        avg_arc_bytes = ARC_RECORD_BYTES
        state_idx = self.state_index(am_state, lm_state)
        # Arc blocks laid out in state order, ~2 arcs per state on average.
        arcs_before = state_idx * max(
            1, self.model.arcs // max(1, self.model.states)
        )
        return base + (arcs_before + ordinal) * avg_arc_bytes


def build_address_map(am: AmGraph, lm: LmGraph) -> ComposedAddressMap:
    model = build_composed_model(am, lm)
    _, trie = _pronunciation_paths(am)
    # Re-walk chains to assign each AM chain state its trie node.
    am_state_node = [0] * am.fst.num_states
    fst = am.fst
    for enter in fst.out_arcs(am.loop_state):
        senones: list[int] = []
        state = enter.nextstate
        while True:
            senones.append(am.senone_of_state(state))
            path = trie.insert(senones)
            am_state_node[state] = path[-1]
            advance = next(
                a for a in fst.out_arcs(state) if a.nextstate != state
            )
            if advance.nextstate == am.loop_state:
                break
            state = advance.nextstate
    return ComposedAddressMap(
        model=model,
        am_state_node=am_state_node,
        num_lm_states=lm.fst.num_states,
    )
