"""State-table compression (the bandwidth-reduction scheme of [34]).

A raw state record is two 32-bit words: first-arc offset and arc count.
The compressed layout groups states and stores one wide base offset per
group plus narrow per-state deltas and counts — the same
base-plus-delta trick the MICRO-49 accelerator uses to cut state-fetch
bandwidth, which the paper notes is "also very effective for reducing
the size of the states' information" (Section 3.4).

Delta and count widths are chosen per table from the actual data, and
recorded in the header; the format is exactly invertible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.bits import BitReader, BitWriter, bits_needed

GROUP_SIZE = 16
BASE_BITS = 40
#: Raw layout for comparison: 32-bit offset + 32-bit count.
RAW_STATE_BITS = 64


@dataclass
class PackedStates:
    """Compressed (offset, count) table."""

    data: bytes
    bit_length: int
    num_states: int
    delta_bits: int
    count_bits: int

    @property
    def size_bytes(self) -> int:
        return (self.bit_length + 7) // 8

    @property
    def raw_bytes(self) -> int:
        return self.num_states * RAW_STATE_BITS // 8

    @property
    def bits_per_state(self) -> float:
        if self.num_states == 0:
            return 0.0
        return self.bit_length / self.num_states

    @property
    def compression_ratio(self) -> float:
        if self.bit_length == 0:
            return 1.0
        return self.raw_bytes * 8 / self.bit_length


def pack_states(offsets: list[int], counts: list[int]) -> PackedStates:
    """Pack parallel offset/count arrays with group base + delta coding."""
    if len(offsets) != len(counts):
        raise ValueError("offsets and counts must be parallel")
    num_states = len(offsets)
    max_delta = 0
    for group_start in range(0, num_states, GROUP_SIZE):
        base = offsets[group_start]
        for i in range(group_start, min(group_start + GROUP_SIZE, num_states)):
            if offsets[i] < base:
                raise ValueError("offsets must be non-decreasing within a group")
            max_delta = max(max_delta, offsets[i] - base)
    delta_bits = bits_needed(max_delta)
    count_bits = bits_needed(max(counts, default=0))

    writer = BitWriter()
    for group_start in range(0, num_states, GROUP_SIZE):
        base = offsets[group_start]
        writer.write(base, BASE_BITS)
        for i in range(group_start, min(group_start + GROUP_SIZE, num_states)):
            writer.write(offsets[i] - base, delta_bits)
            writer.write(counts[i], count_bits)
    return PackedStates(
        data=writer.getvalue(),
        bit_length=writer.bit_length,
        num_states=num_states,
        delta_bits=delta_bits,
        count_bits=count_bits,
    )


def unpack_states(packed: PackedStates) -> tuple[list[int], list[int]]:
    """Recover the exact offset/count arrays."""
    reader = BitReader(packed.data, packed.bit_length)
    offsets: list[int] = []
    counts: list[int] = []
    remaining = packed.num_states
    while remaining > 0:
        base = reader.read(BASE_BITS)
        group = min(GROUP_SIZE, remaining)
        for _ in range(group):
            offsets.append(base + reader.read(packed.delta_bits))
            counts.append(reader.read(packed.count_bits))
        remaining -= group
    return offsets, counts


def packed_state_bits_estimate(num_states: int, delta_bits: int = 20, count_bits: int = 12) -> int:
    """Analytic size for state tables we do not materialize (composed graph)."""
    if num_states == 0:
        return 0
    groups = (num_states + GROUP_SIZE - 1) // GROUP_SIZE
    return groups * BASE_BITS + num_states * (delta_bits + count_bits)
