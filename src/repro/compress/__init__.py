"""WFST compression: quantization, bit-packed formats, sizing models."""

from repro.compress.am_pack import (
    LONG_ARC_BITS as AM_LONG_ARC_BITS,
    SHORT_ARC_BITS as AM_SHORT_ARC_BITS,
    PackedAm,
    pack_am,
    unpack_am,
)
from repro.compress.bits import BitReader, BitWriter, bits_needed
from repro.compress.composed_model import (
    ComposedAddressMap,
    ComposedSizeModel,
    PronunciationTrie,
    build_address_map,
    build_composed_model,
)
from repro.compress.composed_pack import PackedComposedSize, pack_composed_size
from repro.compress.lm_pack import (
    BACKOFF_ARC_BITS,
    REGULAR_ARC_BITS,
    UNIGRAM_ARC_BITS,
    PackedLm,
    pack_lm,
    unpack_lm,
)
from repro.compress.quantize import (
    CENTROID_TABLE_BYTES,
    DEFAULT_CLUSTERS,
    WeightQuantizer,
    fit_wfst_quantizer,
    quantize_wfst,
)
from repro.compress.sizing import (
    DatasetSizing,
    composed_model_for,
    measure_dataset_sizing,
)
from repro.compress.state_pack import (
    PackedStates,
    pack_states,
    packed_state_bits_estimate,
    unpack_states,
)

__all__ = [
    "BitWriter",
    "BitReader",
    "bits_needed",
    "WeightQuantizer",
    "fit_wfst_quantizer",
    "quantize_wfst",
    "DEFAULT_CLUSTERS",
    "CENTROID_TABLE_BYTES",
    "PackedAm",
    "pack_am",
    "unpack_am",
    "AM_SHORT_ARC_BITS",
    "AM_LONG_ARC_BITS",
    "PackedLm",
    "pack_lm",
    "unpack_lm",
    "UNIGRAM_ARC_BITS",
    "BACKOFF_ARC_BITS",
    "REGULAR_ARC_BITS",
    "PackedStates",
    "pack_states",
    "unpack_states",
    "packed_state_bits_estimate",
    "ComposedSizeModel",
    "ComposedAddressMap",
    "PronunciationTrie",
    "build_composed_model",
    "build_address_map",
    "PackedComposedSize",
    "pack_composed_size",
    "DatasetSizing",
    "measure_dataset_sizing",
    "composed_model_for",
]
