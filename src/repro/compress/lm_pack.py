"""LM WFST compression (Section 3.4).

Three arc classes, as in the paper:

* **Unigram arcs** (outgoing arcs of state 0): one per vocabulary word,
  in word-id order, so the word id is implicit in the position and the
  destination is implicit in the word id — each arc stores only its
  6-bit quantized weight.  The paper's models have a bigram state for
  every word; in a pruned LM some words have none, in which case the
  destination is state 0 itself.  A per-word bitmap (1 bit/word) makes
  the inference exact; states are renumbered so that the bigram state of
  the k-th flagged word is state ``1 + k``.
* **Back-off arcs** (last arc of every non-initial state): 27 bits —
  6-bit weight + 21-bit destination.
* **All other arcs**: 45 bits — 18-bit word id + 6-bit weight + 21-bit
  destination.

Fixed record sizes per class preserve the random access the binary
search needs: the i-th word arc of a state sits at ``base + 45*i``.
``unpack_lm`` reconstructs the full graph (quantized, renumbered),
proving the format is lossless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compress.bits import BitReader, BitWriter
from repro.compress.quantize import (
    CENTROID_TABLE_BYTES,
    WeightQuantizer,
    fit_wfst_quantizer,
)
from repro.lm.graph import LmGraph
from repro.wfst.fst import EPSILON, Wfst

WEIGHT_BITS = 6
WORD_BITS = 18
DEST_BITS = 21

UNIGRAM_ARC_BITS = WEIGHT_BITS  # 6
BACKOFF_ARC_BITS = WEIGHT_BITS + DEST_BITS  # 27
REGULAR_ARC_BITS = WORD_BITS + WEIGHT_BITS + DEST_BITS  # 45


@dataclass
class PackedLm:
    """Bit-packed LM plus decode metadata."""

    data: bytes
    bit_length: int
    quantizer: WeightQuantizer
    num_states: int
    num_words: int
    start: int  # renumbered start state
    backoff_label: int
    state_offsets: list[int]  # first-arc bit offset per renumbered state
    word_arc_counts: list[int]  # word arcs per state (back-off excluded)
    has_backoff: list[bool]
    bigram_state_bitmap: list[bool]  # per word id (1-based word ids)
    finals: dict[int, float] = field(default_factory=dict)
    permutation: list[int] = field(default_factory=list)  # old -> new ids
    unigram_arcs: int = 0
    backoff_arcs: int = 0
    regular_arcs: int = 0

    @property
    def arc_bytes(self) -> int:
        return (self.bit_length + 7) // 8

    @property
    def bitmap_bytes(self) -> int:
        return (self.num_words + 7) // 8

    @property
    def size_bytes(self) -> int:
        return self.arc_bytes + self.bitmap_bytes + CENTROID_TABLE_BYTES

    @property
    def num_arcs(self) -> int:
        return self.unigram_arcs + self.backoff_arcs + self.regular_arcs


def pack_lm(graph: LmGraph, quantizer: WeightQuantizer | None = None) -> PackedLm:
    """Pack an LM graph into the Section 3.4 format."""
    fst = graph.fst
    if quantizer is None:
        quantizer = fit_wfst_quantizer(fst)

    word_ids = [wid for wid, _ in graph.words if 0 < wid < graph.backoff_label]
    num_words = len(word_ids)

    permutation = _renumber(graph)
    inverse = [0] * fst.num_states
    for old, new in enumerate(permutation):
        inverse[new] = old

    # Bigram-state bitmap: word id w (1-based) -> has its own state.
    bigram_state_of_word = {}
    for context, state in graph.state_of_context.items():
        if len(context) == 1 and context[0] in graph.words:
            bigram_state_of_word[graph.words.id_of(context[0])] = state
    bitmap = [wid in bigram_state_of_word for wid in word_ids]

    writer = BitWriter()
    state_offsets: list[int] = []
    word_arc_counts: list[int] = []
    has_backoff: list[bool] = []
    unigram_arcs = backoff_arcs = regular_arcs = 0

    for new_state in range(fst.num_states):
        old_state = inverse[new_state]
        arcs = fst.out_arcs(old_state)
        state_offsets.append(writer.bit_length)
        backoff = graph.backoff_arc(old_state)
        word_arcs = arcs[:-1] if backoff is not None else arcs
        word_arc_counts.append(len(word_arcs))
        has_backoff.append(backoff is not None)

        if old_state == graph.unigram_state:
            # Positional format: one 6-bit weight per vocabulary word.
            by_word = {a.ilabel: a for a in word_arcs}
            if set(by_word) != set(word_ids):
                raise ValueError(
                    "unigram state must have exactly one arc per word"
                )
            for wid in word_ids:
                writer.write(quantizer.encode(by_word[wid].weight), WEIGHT_BITS)
                unigram_arcs += 1
        else:
            for arc in word_arcs:
                writer.write(arc.ilabel, WORD_BITS)
                writer.write(quantizer.encode(arc.weight), WEIGHT_BITS)
                writer.write(permutation[arc.nextstate], DEST_BITS)
                regular_arcs += 1
        if backoff is not None:
            writer.write(quantizer.encode(backoff.weight), WEIGHT_BITS)
            writer.write(permutation[backoff.nextstate], DEST_BITS)
            backoff_arcs += 1

    finals = {
        permutation[s]: w for s, w in fst.finals.items()
    }
    return PackedLm(
        data=writer.getvalue(),
        bit_length=writer.bit_length,
        quantizer=quantizer,
        num_states=fst.num_states,
        num_words=num_words,
        start=permutation[fst.start],
        backoff_label=graph.backoff_label,
        state_offsets=state_offsets,
        word_arc_counts=word_arc_counts,
        has_backoff=has_backoff,
        bigram_state_bitmap=bitmap,
        finals=finals,
        permutation=permutation,
        unigram_arcs=unigram_arcs,
        backoff_arcs=backoff_arcs,
        regular_arcs=regular_arcs,
    )


def _renumber(graph: LmGraph) -> list[int]:
    """Old-state -> new-state permutation.

    New order: unigram state 0 first, then bigram states sorted by their
    context's word id (making unigram-arc destinations inferable), then
    everything else in old order.
    """
    fst = graph.fst
    bigram_states = sorted(
        (
            (graph.words.id_of(context[0]), state)
            for context, state in graph.state_of_context.items()
            if len(context) == 1 and context[0] in graph.words
        ),
    )
    order = [graph.unigram_state]
    order.extend(state for _, state in bigram_states)
    placed = set(order)
    order.extend(s for s in fst.states() if s not in placed)
    permutation = [0] * fst.num_states
    for new, old in enumerate(order):
        permutation[old] = new
    return permutation


def unpack_lm(packed: PackedLm) -> Wfst:
    """Reconstruct the (quantized, renumbered) LM WFST."""
    fst = Wfst()
    fst.add_states(packed.num_states)
    fst.set_start(packed.start)
    reader = BitReader(packed.data, packed.bit_length)

    # Destinations of unigram arcs: k-th flagged word -> state 1 + k.
    unigram_dest = {}
    next_state = 1
    for i, flagged in enumerate(packed.bigram_state_bitmap):
        wid = i + 1
        if flagged:
            unigram_dest[wid] = next_state
            next_state += 1
        else:
            unigram_dest[wid] = 0

    for state in range(packed.num_states):
        reader.seek(packed.state_offsets[state])
        if state == 0:
            for i in range(packed.word_arc_counts[state]):
                wid = i + 1
                weight = packed.quantizer.decode(reader.read(WEIGHT_BITS))
                fst.add_arc(state, wid, wid, weight, unigram_dest[wid])
        else:
            for _ in range(packed.word_arc_counts[state]):
                wid = reader.read(WORD_BITS)
                weight = packed.quantizer.decode(reader.read(WEIGHT_BITS))
                dest = reader.read(DEST_BITS)
                fst.add_arc(state, wid, wid, weight, dest)
        if packed.has_backoff[state]:
            weight = packed.quantizer.decode(reader.read(WEIGHT_BITS))
            dest = reader.read(DEST_BITS)
            fst.add_arc(state, packed.backoff_label, EPSILON, weight, dest)
    for state, weight in packed.finals.items():
        fst.set_final(
            state,
            packed.quantizer.quantize(weight) if np.isfinite(weight) else weight,
        )
    return fst
