"""Compression model for the fully-composed WFST (Price et al. [23]).

The Fully-Composed+Comp baseline in Figure 8 / Table 2 applies, to the
offline-composed graph, the same family of techniques UNFOLD applies to
the separate models: 6-bit k-means weights, minimal-width labels, and
tag-encoded destinations for arcs that point to an adjacent state in a
depth-first layout.  The composed graph is sized by the structural model
(``repro.compress.composed_model``), so this module converts its arc
class counts into compressed bytes:

* short arc (self-loop or first-child tree edge): 12-bit senone +
  6-bit weight + 2-bit tag = 20 bits;
* long arc: short fields + 18-bit word id + 24-bit destination
  (the composed graph has millions of states, so destinations need more
  bits than in the separate models) = 62 bits;
* states: the base+delta table of the bandwidth-reduction scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.composed_model import ComposedSizeModel
from repro.compress.quantize import CENTROID_TABLE_BYTES
from repro.compress.state_pack import packed_state_bits_estimate

SHORT_ARC_BITS = 20
LONG_ARC_BITS = 62


@dataclass(frozen=True)
class PackedComposedSize:
    """Compressed footprint of the composed graph."""

    arc_bits: int
    state_bits: int

    @property
    def total_bytes(self) -> int:
        return (self.arc_bits + self.state_bits + 7) // 8 + CENTROID_TABLE_BYTES

    @property
    def total_mb(self) -> float:
        return self.total_bytes / 2**20


def pack_composed_size(model: ComposedSizeModel) -> PackedComposedSize:
    """Price-style compressed size from the structural model."""
    arc_bits = model.short_arcs * SHORT_ARC_BITS + model.long_arcs * LONG_ARC_BITS
    state_bits = packed_state_bits_estimate(model.states)
    return PackedComposedSize(arc_bits=arc_bits, state_bits=state_bits)
