"""AM WFST compression (Section 3.4, Figure 5).

Most AM arcs carry no word label and point to the same, previous or next
state, so they pack into 20 bits: a 12-bit senone label, a 6-bit
quantized weight and a 2-bit destination tag.  The remaining arcs
(cross-word transitions and chain entries from the loop state) append an
18-bit word id and a 20-bit destination state.

Arcs are serialized sequentially per state; the 2-bit tag tells the Arc
Issuer whether to fetch the 38 extra bits, which is safe because AM arcs
are always explored sequentially (Section 3.4).  The packer is a real
codec: ``unpack_am`` reconstructs the transducer exactly (with quantized
weights).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.bits import BitReader, BitWriter
from repro.compress.quantize import (
    CENTROID_TABLE_BYTES,
    WeightQuantizer,
    fit_wfst_quantizer,
)
from repro.wfst.fst import EPSILON, Wfst

LABEL_BITS = 12
WEIGHT_BITS = 6
TAG_BITS = 2
WORD_BITS = 18
DEST_BITS = 20

SHORT_ARC_BITS = LABEL_BITS + WEIGHT_BITS + TAG_BITS  # 20
LONG_ARC_BITS = SHORT_ARC_BITS + WORD_BITS + DEST_BITS  # 58

TAG_SELF = 0b11
TAG_NEXT = 0b10
TAG_PREV = 0b01
TAG_NORMAL = 0b00


@dataclass
class PackedAm:
    """Bit-packed AM arcs plus decode metadata."""

    data: bytes
    bit_length: int
    arc_offsets: list[int]  # first-arc bit offset per state
    arc_counts: list[int]
    quantizer: WeightQuantizer
    start: int
    finals: dict[int, float]
    num_states: int
    short_arcs: int = 0
    long_arcs: int = 0

    @property
    def arc_bytes(self) -> int:
        return (self.bit_length + 7) // 8

    @property
    def total_arc_bits(self) -> int:
        return self.bit_length

    @property
    def size_bytes(self) -> int:
        """Arc array plus the on-chip centroid table."""
        return self.arc_bytes + CENTROID_TABLE_BYTES

    @property
    def num_arcs(self) -> int:
        return self.short_arcs + self.long_arcs

    @property
    def short_fraction(self) -> float:
        return self.short_arcs / self.num_arcs if self.num_arcs else 0.0


def pack_am(fst: Wfst, quantizer: WeightQuantizer | None = None) -> PackedAm:
    """Pack an AM transducer into the Figure 5 format."""
    if quantizer is None:
        quantizer = fit_wfst_quantizer(fst)
    writer = BitWriter()
    arc_offsets: list[int] = []
    arc_counts: list[int] = []
    short_arcs = 0
    long_arcs = 0
    for state in fst.states():
        arcs = fst.out_arcs(state)
        arc_offsets.append(writer.bit_length)
        arc_counts.append(len(arcs))
        for arc in arcs:
            weight_idx = quantizer.encode(arc.weight)
            tag = _tag_for(state, arc.nextstate, arc.olabel)
            writer.write(arc.ilabel, LABEL_BITS)
            writer.write(weight_idx, WEIGHT_BITS)
            writer.write(tag, TAG_BITS)
            if tag == TAG_NORMAL:
                writer.write(arc.olabel, WORD_BITS)
                writer.write(arc.nextstate, DEST_BITS)
                long_arcs += 1
            else:
                short_arcs += 1
    return PackedAm(
        data=writer.getvalue(),
        bit_length=writer.bit_length,
        arc_offsets=arc_offsets,
        arc_counts=arc_counts,
        quantizer=quantizer,
        start=fst.start,
        finals=dict(fst.finals),
        num_states=fst.num_states,
        short_arcs=short_arcs,
        long_arcs=long_arcs,
    )


def _tag_for(state: int, nextstate: int, olabel: int) -> int:
    if olabel != EPSILON:
        return TAG_NORMAL
    if nextstate == state:
        return TAG_SELF
    if nextstate == state + 1:
        return TAG_NEXT
    if nextstate == state - 1:
        return TAG_PREV
    return TAG_NORMAL


def unpack_am(packed: PackedAm) -> Wfst:
    """Reconstruct the (weight-quantized) AM transducer."""
    fst = Wfst()
    fst.add_states(packed.num_states)
    if packed.start >= 0:
        fst.set_start(packed.start)
    reader = BitReader(packed.data, packed.bit_length)
    for state in range(packed.num_states):
        reader.seek(packed.arc_offsets[state])
        for _ in range(packed.arc_counts[state]):
            ilabel = reader.read(LABEL_BITS)
            weight = packed.quantizer.decode(reader.read(WEIGHT_BITS))
            tag = reader.read(TAG_BITS)
            if tag == TAG_NORMAL:
                olabel = reader.read(WORD_BITS)
                nextstate = reader.read(DEST_BITS)
            else:
                olabel = EPSILON
                if tag == TAG_SELF:
                    nextstate = state
                elif tag == TAG_NEXT:
                    nextstate = state + 1
                else:
                    nextstate = state - 1
            fst.add_arc(state, ilabel, olabel, weight, nextstate)
    for state, weight in packed.finals.items():
        fst.set_final(
            state,
            packed.quantizer.quantize(weight) if np.isfinite(weight) else weight,
        )
    return fst
