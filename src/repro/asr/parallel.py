"""Utterance-parallel decoding.

Viterbi beam search over one utterance is inherently sequential
(frame ``t + 1`` needs frame ``t``'s frontier), but utterances are
independent — the natural unit of parallelism for a software decoder
serving a batch.  :class:`DecodePool` fans a batch of utterances out
over worker processes.  The recognizer is packed *once in the parent*
into a named shared-memory segment (:func:`repro.shm.pack_recognizer`,
bundle-quantized); each worker's initializer attaches the segment and
decodes from zero-copy read-only views.  Every worker therefore maps
the same physical pages — unlike fork copy-on-write inheritance, where
refcount churn progressively privatizes the "shared" recognizer, and
unlike pickling, which copies it per worker up front.  This holds
under both ``fork`` and ``spawn`` start methods.

The pool is persistent: keep one around and feed it batch after batch —
``AsrSystem.transcribe`` does exactly that.  Jobs are submitted with a
``chunksize`` so a batch crosses the process boundary in a few pickles
per worker, not one round-trip per utterance.

Determinism contract: results — including the activity counters in
``DecoderStats`` — are identical for every parallelism level, in
submission order.  Two mechanisms make that hold:

* every utterance starts from cold per-decode caches (an O(1)
  ``LmLookup.reset_transient_state()``: Offset Lookup Table plus the
  LM expansion cache), so counters are independent of how utterances
  land on workers;
* whenever a scorer is supplied the pool decodes the *persisted*
  recognizer — the bundle stores arc weights in the paper's 32-bit
  format, so a serial in-memory run over the original float64 graphs
  would differ from the workers' in the last bits.  ``parallelism=1``
  without a scorer skips the round-trip and decodes the given graphs
  directly (no worker machinery either way).

The lockstep :class:`~repro.core.batch.BatchDecoder` honors the same
contract (cold forked caches per utterance), so the pool can swap
process fan-out for in-process batch fusion — it does exactly that,
automatically, when asked for ``parallelism > 1`` on a host exposing a
single CPU, where forked workers would only add serialization overhead
on top of zero actual concurrency.  Each result records which strategy
produced it in ``DecodeResult.strategy``.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.am.graph import AmGraph
from repro.am.scorer import AcousticScorer
from repro.core.decoder import DecodeResult, DecoderConfig, OnTheFlyDecoder
from repro.lm.graph import LmGraph
from repro.shm import attach_recognizer, bundle_quantize, pack_recognizer

def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


# Per-worker-process state, installed by the pool initializer.  The
# attached handle is kept alive for the worker's lifetime — its views
# into the shared segment back the decoder's tables.
_WORKER_DECODER: OnTheFlyDecoder | None = None
_WORKER_SCORER: AcousticScorer | None = None
_WORKER_ATTACHED = None
_WORKER_PIPELINE = None

#: Feature submissions the in-process pipelined path keeps in flight
#: ahead of the search (the cross-utterance lag; within one utterance
#: the per-stream ``depth`` bounds scored-but-unsearched chunks).
PIPELINE_AHEAD = 2


def _shm_worker_init(segment: str, config: DecoderConfig) -> None:
    """Attach the parent's shared segment; one attach per worker life."""
    global _WORKER_DECODER, _WORKER_SCORER, _WORKER_ATTACHED
    _WORKER_ATTACHED = attach_recognizer(segment)
    _WORKER_DECODER = OnTheFlyDecoder(
        _WORKER_ATTACHED.am,
        _WORKER_ATTACHED.lm,
        config,
        tables=_WORKER_ATTACHED.tables,
    )
    _WORKER_SCORER = _WORKER_ATTACHED.scorer


def _cold_decode(decoder: OnTheFlyDecoder, scores: np.ndarray) -> DecodeResult:
    """Decode one utterance from cold per-decode caches."""
    decoder.lookup.reset_transient_state()
    return decoder.decode(scores)


def _decode_scores_job(scores: np.ndarray) -> DecodeResult:
    assert _WORKER_DECODER is not None
    return _cold_decode(_WORKER_DECODER, scores)


def _decode_features_job(features: np.ndarray) -> DecodeResult:
    assert _WORKER_DECODER is not None and _WORKER_SCORER is not None
    return _cold_decode(_WORKER_DECODER, _WORKER_SCORER.score(features))


def _decode_stream_pipelined(decoder: OnTheFlyDecoder, stream) -> DecodeResult:
    """Search one utterance's score chunks as the pipeline finishes them.

    Chunked pushes through a :class:`~repro.asr.streaming.StreamingSession`
    are bit-identical to a one-shot ``decoder.decode`` over the same
    matrix (the streaming parity contract), and the pipeline's chunk
    values are bit-identical to synchronous scoring — so this whole
    path reproduces ``_cold_decode(decoder, scorer.score(features))``
    exactly, stats and cache counters included.
    """
    from repro.asr.streaming import StreamingSession

    decoder.lookup.reset_transient_state()
    session = StreamingSession(decoder)
    for chunk in stream.chunks():
        session.push(chunk)
    return session.finish()


def _pipelined_features_job(job: tuple[np.ndarray, int]) -> DecodeResult:
    """Worker-side pipelined decode: one persistent pipeline per worker
    scores each utterance's next chunk while its previous one is
    searched."""
    features, chunk_frames = job
    global _WORKER_PIPELINE
    assert _WORKER_DECODER is not None and _WORKER_SCORER is not None
    if _WORKER_PIPELINE is None:
        from repro.am.pipeline import ScoringPipeline

        _WORKER_PIPELINE = ScoringPipeline(
            _WORKER_SCORER, chunk_frames=chunk_frames
        )
    stream = _WORKER_PIPELINE.submit(features)
    return _decode_stream_pipelined(_WORKER_DECODER, stream)


def _streaming_job(job: tuple[np.ndarray, int]) -> DecodeResult:
    from repro.asr.streaming import decode_streaming

    scores, batch_frames = job
    decoder = _WORKER_DECODER
    assert decoder is not None
    decoder.lookup.reset_transient_state()
    result, _ = decode_streaming(decoder, scores, batch_frames)
    return result


class DecodePool:
    """Decode batches of utterances, optionally across processes.

    Args:
        am / lm: recognition graphs.
        scorer: acoustic scorer; required for :meth:`decode_utterances`.
        config: decoder configuration shared by every worker.
        parallelism: worker process count; ``1`` decodes in-process.
        batch_size: lockstep batch width for the in-process paths.
            ``None`` keeps them per-utterance; ``B > 1`` decodes score
            batches through a :class:`~repro.core.batch.BatchDecoder`
            (bit-identical, fewer kernel dispatches).
        pipeline_chunk_frames: enable the asynchronous scoring pipeline
            for :meth:`decode_utterances` (requires a ``scorer``): a
            worker thread scores ahead of the search in chunks of this
            many frames (chunk-exact scorers; whole utterances
            otherwise — see :mod:`repro.am.pipeline`).  Results stay
            bit-identical to the synchronous path; only the overlap
            changes.
        single_cpu_fallback: when ``parallelism > 1`` but the host
            exposes a single visible CPU, quietly decode in-process
            with batch fusion instead of forking workers that would
            time-slice one core.  Results are identical either way.
    """

    def __init__(
        self,
        am: AmGraph,
        lm: LmGraph,
        scorer: AcousticScorer | None = None,
        config: DecoderConfig | None = None,
        parallelism: int = 1,
        batch_size: int | None = None,
        pipeline_chunk_frames: int | None = None,
        single_cpu_fallback: bool = True,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if parallelism > 1 and scorer is None:
            raise ValueError(
                "a scorer is required to ship the recognizer bundle "
                "to worker processes"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive")
        if pipeline_chunk_frames is not None and pipeline_chunk_frames < 1:
            raise ValueError("pipeline_chunk_frames must be positive")
        if pipeline_chunk_frames is not None and scorer is None:
            raise ValueError(
                "the scoring pipeline needs a scorer to overlap with "
                "the search"
            )
        self.requested_parallelism = parallelism
        if (
            parallelism > 1
            and single_cpu_fallback
            and visible_cpus() < 2
        ):
            # One visible core: worker processes can't overlap, they
            # just add pickling and scheduling.  Fuse in-process
            # instead — the determinism contract makes this invisible
            # apart from DecodeResult.strategy.
            parallelism = 1
            if batch_size is None:
                batch_size = 8
        self.config = config or DecoderConfig()
        self.parallelism = parallelism
        self.batch_size = batch_size
        self.pipeline_chunk_frames = pipeline_chunk_frames
        self._scorer = scorer
        self._scoring_pipeline = None
        self._executor: ProcessPoolExecutor | None = None
        self._decoder: OnTheFlyDecoder | None = None
        self._shm = None
        if scorer is not None:
            if parallelism == 1:
                # Decode the deployable artifact: the in-memory codec
                # round-trip quantizes weights to the persisted 32-bit
                # format, identically to what the workers read from a
                # shared segment.
                qam, qlm = bundle_quantize(am, lm)
                self._decoder = OnTheFlyDecoder(qam, qlm, self.config)
            else:
                # Pack the recognizer once; every worker's initializer
                # attaches the segment (no bundle load, no graph or
                # CSR construction, no COW privatization).
                self._shm = pack_recognizer(am, lm, scorer, quantize=True)
                if "fork" in multiprocessing.get_all_start_methods():
                    # Fork is still the cheaper launch; the recognizer
                    # arrives via the segment either way.
                    mp_context = multiprocessing.get_context("fork")
                else:  # pragma: no cover - spawn-only platforms
                    mp_context = multiprocessing.get_context("spawn")
                self._executor = ProcessPoolExecutor(
                    max_workers=parallelism,
                    mp_context=mp_context,
                    initializer=_shm_worker_init,
                    initargs=(self._shm.segment_name, self.config),
                )
        else:
            self._decoder = OnTheFlyDecoder(am, lm, self.config)
        self._batch = None
        if self._decoder is not None and batch_size is not None and batch_size > 1:
            from repro.core.batch import BatchDecoder

            self._batch = BatchDecoder(self._decoder, batch_size)

    @property
    def strategy(self) -> str:
        """How this pool decodes: ``serial``, ``pool[N]`` or ``batch[B]``,
        with a ``+pipe[C]`` suffix when the scoring pipeline is on."""
        if self._executor is not None:
            base = f"pool[{self.parallelism}]"
        elif self._batch is not None and self._batch.lockstep_supported:
            base = f"batch[{self._batch.batch_size}]"
        else:
            base = "serial"
        if self.pipeline_chunk_frames is not None:
            base += f"+pipe[{self.pipeline_chunk_frames}]"
        return base

    def _ensure_pipeline(self):
        """The pool's persistent in-process scoring pipeline."""
        if self._scoring_pipeline is None:
            from repro.am.pipeline import ScoringPipeline

            assert self._scorer is not None
            self._scoring_pipeline = ScoringPipeline(
                self._scorer, chunk_frames=self.pipeline_chunk_frames
            )
        return self._scoring_pipeline

    def _chunksize(self, num_jobs: int) -> int:
        """Batch jobs per pickle: a couple of chunks per worker."""
        return max(1, num_jobs // (self.parallelism * 2))

    # -- batch entry points -------------------------------------------------

    def decode_scores(self, scores: list[np.ndarray]) -> list[DecodeResult]:
        """Decode pre-computed score matrices; results in input order."""
        if self._executor is None:
            assert self._decoder is not None
            if self._batch is not None:
                return self._batch.decode(scores)
            return [_cold_decode(self._decoder, s) for s in scores]
        results = list(
            self._executor.map(
                _decode_scores_job, scores, chunksize=self._chunksize(len(scores))
            )
        )
        return self._stamp(results)

    def decode_utterances(self, utterances) -> list[DecodeResult]:
        """Score and decode utterances; results in input order."""
        if self._scorer is None:
            raise ValueError("DecodePool built without a scorer")
        if self.pipeline_chunk_frames is not None:
            return self._decode_utterances_pipelined(utterances)
        if self._executor is None:
            assert self._decoder is not None
            if self._batch is not None:
                return self._batch.decode(
                    [self._scorer.score(u.features) for u in utterances]
                )
            return [
                _cold_decode(self._decoder, self._scorer.score(u.features))
                for u in utterances
            ]
        results = list(
            self._executor.map(
                _decode_features_job,
                [u.features for u in utterances],
                chunksize=self._chunksize(len(utterances)),
            )
        )
        return self._stamp(results)

    def _decode_utterances_pipelined(self, utterances) -> list[DecodeResult]:
        """Score-ahead decoding: the pipeline worker scores chunk/batch
        ``k+1`` while this thread (or a worker process) searches ``k``.

        Bit-identical to the synchronous paths (same chunk values, same
        cold-cache contract, same lockstep grouping) — only the overlap
        and ``DecodeResult.strategy`` differ.
        """
        if self._executor is not None:
            # Process fan-out: each worker overlaps scoring and search
            # through its own persistent pipeline.
            return self._stamp(
                list(
                    self._executor.map(
                        _pipelined_features_job,
                        [
                            (u.features, self.pipeline_chunk_frames)
                            for u in utterances
                        ],
                        chunksize=self._chunksize(len(utterances)),
                    )
                ),
                strategy=self.strategy,
            )
        assert self._decoder is not None
        pipeline = self._ensure_pipeline()
        results: list[DecodeResult] = []
        if self._batch is not None:
            # Lockstep path: submit batch k+1's features before decoding
            # batch k, so the pipeline scores the next batch while the
            # fused kernels chew on this one.  Grouping matches the
            # BatchDecoder's own batching, so results are identical to
            # handing it the whole list at once.
            width = self._batch.batch_size
            groups = [
                utterances[i : i + width]
                for i in range(0, len(utterances), width)
            ]
            pending: deque = deque()
            index = 0
            while pending or index < len(groups):
                while index < len(groups) and len(pending) <= 1:
                    pending.append(
                        [pipeline.submit(u.features) for u in groups[index]]
                    )
                    index += 1
                streams = pending.popleft()
                results.extend(
                    self._batch.decode([s.result() for s in streams])
                )
        else:
            pending = deque()
            index = 0
            while pending or index < len(utterances):
                while (
                    index < len(utterances)
                    and len(pending) <= PIPELINE_AHEAD
                ):
                    pending.append(
                        pipeline.submit(utterances[index].features)
                    )
                    index += 1
                results.append(
                    _decode_stream_pipelined(
                        self._decoder, pending.popleft()
                    )
                )
        for result in results:
            result.strategy = self.strategy
        return results

    def _stamp(
        self, results: list[DecodeResult], strategy: str | None = None
    ) -> list[DecodeResult]:
        label = strategy or f"pool[{self.parallelism}]"
        for result in results:
            result.strategy = label
        return results

    def decode_streams(
        self, scores: list[np.ndarray], batch_frames: int = 32
    ) -> list[DecodeResult]:
        """Decode each matrix through a streaming session."""
        from repro.asr.streaming import decode_streaming

        if self._executor is None:
            assert self._decoder is not None
            results = []
            for matrix in scores:
                self._decoder.lookup.reset_transient_state()
                result, _ = decode_streaming(
                    self._decoder, matrix, batch_frames
                )
                results.append(result)
            return results
        return self._stamp(
            list(
                self._executor.map(
                    _streaming_job,
                    [(m, batch_frames) for m in scores],
                    chunksize=self._chunksize(len(scores)),
                )
            )
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._scoring_pipeline is not None:
            self._scoring_pipeline.close()
            self._scoring_pipeline = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._shm is not None:
            self._shm.unlink()
            self._shm = None

    def __enter__(self) -> "DecodePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
