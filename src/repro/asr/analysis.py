"""Recognition error analysis.

Tools a practitioner reaches for after Table 6: which words confuse
which, where deletions/insertions concentrate, and how error rate
varies with utterance length.  All built on the same Levenshtein
alignment as the WER metric, so the numbers reconcile exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.asr.wer import EditCounts, align_counts


@dataclass
class AlignmentOps:
    """The aligned operation sequence for one utterance pair."""

    ops: list[tuple[str, str | None, str | None]]  # (op, ref, hyp)

    @property
    def counts(self) -> EditCounts:
        subs = sum(1 for op, _, _ in self.ops if op == "sub")
        ins = sum(1 for op, _, _ in self.ops if op == "ins")
        dels = sum(1 for op, _, _ in self.ops if op == "del")
        refs = sum(1 for op, _, _ in self.ops if op in ("match", "sub", "del"))
        return EditCounts(subs, ins, dels, refs)


def align_ops(reference: list[str], hypothesis: list[str]) -> AlignmentOps:
    """Full alignment with back-traced operations."""
    rows, cols = len(reference) + 1, len(hypothesis) + 1
    cost = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        cost[i][0] = i
    for j in range(1, cols):
        cost[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            if reference[i - 1] == hypothesis[j - 1]:
                cost[i][j] = cost[i - 1][j - 1]
            else:
                cost[i][j] = 1 + min(
                    cost[i - 1][j - 1], cost[i][j - 1], cost[i - 1][j]
                )
    ops: list[tuple[str, str | None, str | None]] = []
    i, j = len(reference), len(hypothesis)
    while i > 0 or j > 0:
        if i > 0 and j > 0 and reference[i - 1] == hypothesis[j - 1]:
            ops.append(("match", reference[i - 1], hypothesis[j - 1]))
            i, j = i - 1, j - 1
        elif i > 0 and j > 0 and cost[i][j] == cost[i - 1][j - 1] + 1:
            ops.append(("sub", reference[i - 1], hypothesis[j - 1]))
            i, j = i - 1, j - 1
        elif j > 0 and cost[i][j] == cost[i][j - 1] + 1:
            ops.append(("ins", None, hypothesis[j - 1]))
            j -= 1
        else:
            ops.append(("del", reference[i - 1], None))
            i -= 1
    ops.reverse()
    return AlignmentOps(ops=ops)


@dataclass
class ErrorReport:
    """Aggregated error analysis over a test set."""

    total: EditCounts
    confusions: Counter = field(default_factory=Counter)  # (ref, hyp) -> n
    deletions: Counter = field(default_factory=Counter)  # ref word -> n
    insertions: Counter = field(default_factory=Counter)  # hyp word -> n
    by_length: dict[int, EditCounts] = field(default_factory=dict)

    def top_confusions(self, n: int = 10) -> list[tuple[tuple[str, str], int]]:
        return self.confusions.most_common(n)

    def wer_by_length(self) -> dict[int, float]:
        return {
            length: counts.error_rate
            for length, counts in sorted(self.by_length.items())
        }


def analyze_errors(
    references: list[list[str]], hypotheses: list[list[str]]
) -> ErrorReport:
    """Build a full error report for a decoded test set."""
    if len(references) != len(hypotheses):
        raise ValueError("references and hypotheses must be parallel")
    report = ErrorReport(total=EditCounts(0, 0, 0, 0))
    for ref, hyp in zip(references, hypotheses):
        alignment = align_ops(ref, hyp)
        counts = alignment.counts
        report.total = report.total + counts
        length = len(ref)
        report.by_length[length] = (
            report.by_length.get(length, EditCounts(0, 0, 0, 0)) + counts
        )
        for op, r, h in alignment.ops:
            if op == "sub":
                report.confusions[(r, h)] += 1
            elif op == "del":
                report.deletions[r] += 1
            elif op == "ins":
                report.insertions[h] += 1
    return report
