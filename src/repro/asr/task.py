"""ASR task construction.

A *task* bundles everything one of the paper's benchmark rows needs:
vocabulary, lexicon, reference grammar, trained n-gram model, the AM
and LM WFSTs (sharing one word symbol table), the ground-truth emission
model and a feature synthesizer.

Presets mirror the paper's four decoders in miniature — the absolute
sizes scale down (pure-Python reproduction), but the *relationships*
the evaluation measures (composed-graph blow-up, back-off traffic,
cache locality) are preserved:

* ``KALDI_VOXFORGE``: small vocabulary, GMM scoring (the paper's
  smallest task, 37 MB composed WFST).
* ``KALDI_LIBRISPEECH``: medium vocabulary, DNN scoring, clean speech.
* ``KALDI_TEDLIUM``: larger vocabulary, GMM scoring, noisy speech.
* ``EESEN_TEDLIUM``: larger vocabulary, RNN scoring, noisy speech,
  heavier LM (EESEN's LM WFST is the largest of the four in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.am.features import FeatureSynthesizer, SenoneEmissionModel, Utterance
from repro.am.graph import AmGraph, build_am_graph
from repro.am.hmm import HmmTopology
from repro.am.lexicon import Lexicon, generate_lexicon
from repro.am.phones import PhoneInventory
from repro.am.scorer import ScorerKind
from repro.lm.corpus import ReferenceGrammar, make_vocabulary
from repro.lm.graph import LmGraph, build_lm_graph
from repro.lm.ngram import BackoffNGramModel, train_ngram_model
from repro.wfst.fst import SymbolTable


@dataclass(frozen=True)
class TaskConfig:
    """Knobs defining one synthetic ASR task."""

    name: str = "tiny"
    vocab_size: int = 12
    phone_count: int = 8
    corpus_sentences: int = 100
    lm_order: int = 3
    lm_cutoffs: tuple[int, ...] = (1, 1, 1)
    grammar_branching: int = 4
    feature_dim: int = 16
    noise_scale: float = 0.6
    #: Average distance between senone emission means; together with
    #: noise_scale this sets acoustic confusability (and hence WER).
    emission_separation: float = 2.5
    scorer_kind: ScorerKind = ScorerKind.GMM
    seed: int = 0

    def with_overrides(self, **kwargs) -> "TaskConfig":
        return replace(self, **kwargs)


#: Presets named after the paper's evaluated decoders (Table 1 rows).
KALDI_VOXFORGE = TaskConfig(
    name="kaldi-voxforge",
    vocab_size=120,
    phone_count=24,
    corpus_sentences=1200,
    lm_cutoffs=(1, 1, 2),
    noise_scale=1.8,
    emission_separation=0.6,
    scorer_kind=ScorerKind.GMM,
    seed=101,
)
KALDI_LIBRISPEECH = TaskConfig(
    name="kaldi-librispeech",
    vocab_size=260,
    phone_count=32,
    corpus_sentences=3000,
    lm_cutoffs=(1, 1, 2),
    grammar_branching=6,
    noise_scale=1.2,
    emission_separation=0.6,
    scorer_kind=ScorerKind.DNN,
    seed=202,
)
KALDI_TEDLIUM = TaskConfig(
    name="kaldi-tedlium",
    vocab_size=360,
    phone_count=39,
    corpus_sentences=4200,
    lm_cutoffs=(1, 1, 2),
    grammar_branching=7,
    noise_scale=1.7,
    emission_separation=0.6,
    scorer_kind=ScorerKind.GMM,
    seed=303,
)
EESEN_TEDLIUM = TaskConfig(
    name="eesen-tedlium",
    vocab_size=400,
    phone_count=39,
    corpus_sentences=6000,
    lm_cutoffs=(1, 1, 1),
    grammar_branching=8,
    noise_scale=1.0,
    emission_separation=0.6,
    scorer_kind=ScorerKind.RNN,
    seed=404,
)
TINY = TaskConfig()

PAPER_TASKS = (KALDI_TEDLIUM, KALDI_LIBRISPEECH, KALDI_VOXFORGE, EESEN_TEDLIUM)


@dataclass
class AsrTask:
    """Everything a decoder run needs, built from one :class:`TaskConfig`."""

    config: TaskConfig
    phones: PhoneInventory
    lexicon: Lexicon
    grammar: ReferenceGrammar
    corpus: list[list[str]]
    ngram: BackoffNGramModel
    words: SymbolTable
    lm: LmGraph
    am: AmGraph
    topology: HmmTopology
    emissions: SenoneEmissionModel
    synthesizer: FeatureSynthesizer
    rng: np.random.Generator = field(repr=False, default_factory=np.random.default_rng)

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def num_senones(self) -> int:
        return self.am.num_senones

    def test_set(self, num_utterances: int, max_words: int = 10) -> list[Utterance]:
        """Sample reference sentences and synthesize their features."""
        utterances = []
        for _ in range(num_utterances):
            words = self.grammar.sample_sentence(max_len=max_words)
            utterances.append(self.synthesizer.synthesize(words))
        return utterances


def build_task(config: TaskConfig) -> AsrTask:
    """Construct a full task deterministically from its config."""
    rng = np.random.default_rng(config.seed)
    phones = PhoneInventory.reduced(config.phone_count)
    vocabulary = make_vocabulary(config.vocab_size, rng)
    lexicon = generate_lexicon(vocabulary, phones, rng)
    grammar = ReferenceGrammar.random(
        vocabulary, rng, branching=config.grammar_branching
    )
    corpus = grammar.sample_corpus(config.corpus_sentences)
    ngram = train_ngram_model(
        corpus, vocabulary, order=config.lm_order, cutoffs=config.lm_cutoffs
    )
    words = SymbolTable("words")
    for word in vocabulary:
        words.add(word)
    lm = build_lm_graph(ngram, words=words)
    topology = HmmTopology()
    am = build_am_graph(lexicon, topology, words=words)
    emissions = SenoneEmissionModel.random(
        topology.num_senones(phones),
        config.feature_dim,
        rng,
        separation=config.emission_separation,
    )
    synthesizer = FeatureSynthesizer(
        lexicon=lexicon,
        topology=topology,
        emissions=emissions,
        rng=rng,
        noise_scale=config.noise_scale,
    )
    return AsrTask(
        config=config,
        phones=phones,
        lexicon=lexicon,
        grammar=grammar,
        corpus=corpus,
        ngram=ngram,
        words=words,
        lm=lm,
        am=am,
        topology=topology,
        emissions=emissions,
        synthesizer=synthesizer,
        rng=rng,
    )
