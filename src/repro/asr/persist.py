"""Recognizer persistence.

The paper's deployment model (Section 5.3): the hardware is fixed; a
recognition task ships as data — the AM and LM WFSTs plus the acoustic
scorer's parameters.  This module saves and loads exactly that bundle:

    directory/
      manifest.json     # versions, scorer kind, graph metadata
      words.txt         # symbol table (OpenFst format)
      am.fst            # AM graph (binary layout of repro.wfst.io)
      lm.fst            # LM graph
      scorer.npz        # acoustic model parameters

``load_recognizer`` returns (AmGraph, LmGraph, scorer) ready to hand to
:class:`~repro.core.decoder.OnTheFlyDecoder`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.am.dnn import MlpAcousticModel
from repro.am.gmm import GmmAcousticModel
from repro.am.graph import AmGraph
from repro.am.hmm import HmmTopology
from repro.am.rnn import RnnAcousticModel
from repro.am.scorer import AcousticScorer, ScorerKind
from repro.lm.graph import LmGraph
from repro.wfst.io import deserialize, serialize
from repro.wfst.text_format import read_symbol_table, write_symbol_table

FORMAT_VERSION = 1


@dataclass(frozen=True)
class RecognizerBundle:
    """A loaded, decode-ready recognizer."""

    am: AmGraph
    lm: LmGraph
    scorer: AcousticScorer


def save_recognizer(
    directory: str | Path,
    am: AmGraph,
    lm: LmGraph,
    scorer: AcousticScorer,
) -> None:
    """Write the deployable bundle to ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    with open(path / "words.txt", "w") as stream:
        write_symbol_table(lm.words, stream)
    (path / "am.fst").write_bytes(serialize(am.fst))
    (path / "lm.fst").write_bytes(serialize(lm.fst))

    manifest = {
        "format_version": FORMAT_VERSION,
        "scorer_kind": scorer.kind.value,
        "am": {
            "loop_state": am.loop_state,
            "num_senones": am.num_senones,
            "chain_state_senone": {
                str(k): v for k, v in am.chain_state_senone.items()
            },
            "topology": {
                "states_per_phone": am.topology.states_per_phone,
                "self_loop_prob": am.topology.self_loop_prob,
            },
        },
        "lm": {
            "backoff_label": lm.backoff_label,
            "contexts": [
                [list(context), state]
                for context, state in lm.state_of_context.items()
            ],
        },
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    np.savez_compressed(path / "scorer.npz", **_scorer_arrays(scorer))


def load_recognizer(directory: str | Path) -> RecognizerBundle:
    """Load a bundle previously written by :func:`save_recognizer`."""
    path = Path(directory)
    manifest = json.loads((path / "manifest.json").read_text())
    if manifest["format_version"] != FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle version {manifest['format_version']}"
        )
    with open(path / "words.txt") as stream:
        words = read_symbol_table(stream, name="words")

    am_fst = deserialize((path / "am.fst").read_bytes())
    am_fst.output_symbols = words
    am_meta = manifest["am"]
    am = AmGraph(
        fst=am_fst,
        words=words,
        topology=HmmTopology(
            states_per_phone=am_meta["topology"]["states_per_phone"],
            self_loop_prob=am_meta["topology"]["self_loop_prob"],
        ),
        loop_state=am_meta["loop_state"],
        num_senones=am_meta["num_senones"],
        chain_state_senone={
            int(k): v for k, v in am_meta["chain_state_senone"].items()
        },
    )

    lm_fst = deserialize((path / "lm.fst").read_bytes())
    lm_fst.input_symbols = words
    lm_fst.output_symbols = words
    lm_meta = manifest["lm"]
    state_of_context = {
        tuple(context): state for context, state in lm_meta["contexts"]
    }
    context_of_state = [()] * lm_fst.num_states
    for context, state in state_of_context.items():
        context_of_state[state] = context
    lm = LmGraph(
        fst=lm_fst,
        words=words,
        backoff_label=lm_meta["backoff_label"],
        state_of_context=state_of_context,
        context_of_state=context_of_state,
    )

    scorer = _scorer_from_arrays(
        ScorerKind(manifest["scorer_kind"]), np.load(path / "scorer.npz")
    )
    return RecognizerBundle(am=am, lm=lm, scorer=scorer)


def _scorer_arrays(scorer: AcousticScorer) -> dict[str, np.ndarray]:
    if scorer.kind is ScorerKind.GMM:
        return {
            "means": scorer.means,
            "variances": scorer.variances,
            "log_weights": scorer.log_weights,
        }
    if scorer.kind is ScorerKind.DNN:
        return {
            "w_in": scorer.w_in,
            "b_in": scorer.b_in,
            "w_out": scorer.w_out,
            "log_priors": scorer.log_priors,
            "seen_mask": _mask_or_all(scorer),
        }
    if scorer.kind is ScorerKind.RNN:
        return {
            "w_in": scorer.w_in,
            "w_rec": scorer.w_rec,
            "w_out": scorer.w_out,
            "log_priors": scorer.log_priors,
            "seen_mask": _mask_or_all(scorer),
        }
    raise ValueError(f"cannot persist scorer kind {scorer.kind}")


def _mask_or_all(scorer) -> np.ndarray:
    if scorer.seen_mask is not None:
        return scorer.seen_mask
    return np.ones(scorer.num_senones, dtype=bool)


def _scorer_from_arrays(kind: ScorerKind, arrays) -> AcousticScorer:
    if kind is ScorerKind.GMM:
        return GmmAcousticModel(
            means=arrays["means"],
            variances=arrays["variances"],
            log_weights=arrays["log_weights"],
        )
    if kind is ScorerKind.DNN:
        return MlpAcousticModel(
            w_in=arrays["w_in"],
            b_in=arrays["b_in"],
            w_out=arrays["w_out"],
            log_priors=arrays["log_priors"],
            seen_mask=arrays["seen_mask"],
        )
    if kind is ScorerKind.RNN:
        return RnnAcousticModel(
            w_in=arrays["w_in"],
            w_rec=arrays["w_rec"],
            w_out=arrays["w_out"],
            log_priors=arrays["log_priors"],
            seen_mask=arrays["seen_mask"],
        )
    raise ValueError(f"cannot load scorer kind {kind}")
