"""Streaming decoding sessions (Section 5.2's batched operation).

In the deployed system the GPU scores speech in batches of N frames
while the accelerator decodes the previous batch.  That requires the
decoder to accept scores *incrementally* and to surface partial
hypotheses between batches — this module provides that session API on
top of the one-pass decoder's internals.

    session = StreamingSession(decoder)
    for batch in score_batches:          # (n_frames, senones) chunks
        partial = session.push(batch)    # best hypothesis so far
    result = session.finish()            # final DecodeResult
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.beam import prune
from repro.core.decoder import DecodeResult, DecoderStats, OnTheFlyDecoder
from repro.core.lattice import WordLattice
from repro.core.tokens import TokenTable


@dataclass
class PartialHypothesis:
    """Best in-flight hypothesis after a batch."""

    words: list[str]
    cost: float
    frames_consumed: int
    active_tokens: int


class StreamingSession:
    """Incremental decoding over one utterance."""

    def __init__(self, decoder: OnTheFlyDecoder) -> None:
        self.decoder = decoder
        self._table = TokenTable()
        self._table.insert(
            decoder.am.loop_state, decoder.lm.fst.start, 0.0, -1
        )
        self._lattice = WordLattice()
        self._stats = DecoderStats()
        self._frames = 0
        self._finished = False

    @property
    def frames_consumed(self) -> int:
        return self._frames

    def push(self, scores: np.ndarray) -> PartialHypothesis:
        """Consume one batch of frames; returns the running best guess."""
        if self._finished:
            raise RuntimeError("session already finished")
        if scores.ndim != 2 or scores.shape[1] < self.decoder.am.num_senones:
            raise ValueError(f"bad score batch shape {scores.shape}")
        decoder = self.decoder
        beam_config = decoder.config.beam_config()
        # One conversion per batch: the scalar hot loop wants plain
        # Python floats, not per-element numpy indexing.
        rows = np.ascontiguousarray(scores, dtype=np.float64).tolist()
        for row in rows:
            survivors, pruned = prune(self._table, beam_config)
            self._stats.beam_pruned += pruned
            next_table = TokenTable()
            frame_expansions = decoder._expand_emitting_scalar(
                survivors, row, next_table
            )
            self._stats.am_state_fetches += len(survivors)
            self._stats.am_arc_fetches += frame_expansions
            self._stats.expansions += frame_expansions
            decoder._epsilon_phase(
                next_table, self._frames, self._lattice, self._stats, beam_config
            )
            self._stats.tokens_created += next_table.inserts
            self._stats.active_history.append(len(next_table))
            self._table = next_table
            self._frames += 1
        return self._partial()

    def _partial(self) -> PartialHypothesis:
        best_cost = math.inf
        best_node = -1
        for token in self._table:
            if token.cost < best_cost:
                best_cost = token.cost
                best_node = token.lattice_node
        words = (
            [
                self.decoder.lm.words.symbol_of(w)
                for w in self._lattice.backtrace(best_node)
            ]
            if best_node >= 0
            else []
        )
        return PartialHypothesis(
            words=words,
            cost=best_cost,
            frames_consumed=self._frames,
            active_tokens=len(self._table),
        )

    def finish(self) -> DecodeResult:
        """Terminate the utterance and return the final result."""
        if self._finished:
            raise RuntimeError("session already finished")
        self._finished = True
        self._stats.frames = self._frames
        return self.decoder._finalize(self._table, self._lattice, self._stats)


def decode_streaming(
    decoder: OnTheFlyDecoder, scores: np.ndarray, batch_frames: int = 32
) -> tuple[DecodeResult, list[PartialHypothesis]]:
    """Decode in fixed-size batches, as the GPU+accelerator pipeline does."""
    if batch_frames <= 0:
        raise ValueError("batch_frames must be positive")
    session = StreamingSession(decoder)
    partials = []
    for start in range(0, scores.shape[0], batch_frames):
        partials.append(session.push(scores[start : start + batch_frames]))
    return session.finish(), partials


def transcribe_streams(
    decoder: OnTheFlyDecoder,
    score_matrices: list[np.ndarray],
    batch_frames: int = 32,
    parallelism: int = 1,
    scorer=None,
) -> list[DecodeResult]:
    """Run a batch of independent streams, optionally across processes.

    Streams are independent utterances, so ``parallelism > 1`` fans
    them out over a :class:`~repro.asr.parallel.DecodePool` (which
    needs a ``scorer`` to ship the recognizer bundle to its workers).
    Results are in input order, and identical across parallelism
    levels whenever a ``scorer`` is given — the pool's determinism
    contract (cold per-decode caches per stream, bundle-quantized
    weights) applies to both modes then.
    """
    if scorer is None:
        if parallelism != 1:
            raise ValueError(
                "parallel streaming needs a scorer for the bundle"
            )
        results = []
        for scores in score_matrices:
            decoder.lookup.reset_transient_state()
            result, _ = decode_streaming(decoder, scores, batch_frames)
            results.append(result)
        return results
    from repro.asr.parallel import DecodePool

    with DecodePool(
        decoder.am,
        decoder.lm,
        scorer=scorer,
        config=decoder.config,
        parallelism=parallelism,
    ) as pool:
        return pool.decode_streams(score_matrices, batch_frames)
