"""Streaming decoding sessions (Section 5.2's batched operation).

In the deployed system the GPU scores speech in batches of N frames
while the accelerator decodes the previous batch.  That requires the
decoder to accept scores *incrementally* and to surface partial
hypotheses between batches — this module provides that session API on
top of the one-pass decoder's internals.

    session = StreamingSession(decoder)
    for batch in score_batches:          # (n_frames, senones) chunks
        partial = session.push(batch)    # best hypothesis so far
    result = session.finish()            # final DecodeResult
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.beam import prune
from repro.core.composition import LookupStats
from repro.core.decoder import DecodeResult, DecoderStats, OnTheFlyDecoder
from repro.core.lattice import LatticeNode, WordLattice
from repro.core.tokens import SoaTokenTable, TokenTable


@dataclass
class PartialHypothesis:
    """Best in-flight hypothesis after a batch."""

    words: list[str]
    cost: float
    frames_consumed: int
    active_tokens: int


def _copy_stats(stats: DecoderStats) -> DecoderStats:
    """An independent DecoderStats (scalars plus the mutable tails)."""
    return replace(
        stats,
        active_history=list(stats.active_history),
        frame_work=list(stats.frame_work),
        lookup=stats.lookup.clone(),
    )


@dataclass
class SessionSnapshot:
    """A resumable checkpoint of one :class:`StreamingSession`.

    UNFOLD's whole per-channel state is tiny — a token frontier, the
    lattice so far, and cache counters — which is what makes
    checkpointing a live session between batches cheap (the shared
    graphs never enter the picture).  A snapshot taken between two
    ``push`` calls and restored onto any decoder built from the same
    graphs continues bit-identically: same partials, same final
    result, same :class:`DecoderStats` including every lookup-cache
    counter.  Snapshots are plain data (numpy arrays + dataclasses),
    so they pickle across process boundaries — the serve layer ships
    them from worker processes to the supervising parent.
    """

    frames: int
    vectorized: bool
    num_lm: int
    #: Token frontier as (am, lm, cost, lattice_node) columns, in
    #: table-iteration order (which restore must preserve: partials
    #: and finalization break cost ties by scan order).
    table_am: np.ndarray
    table_lm: np.ndarray
    table_cost: np.ndarray
    table_node: np.ndarray
    #: Lattice as (word, frame, cost, backpointer) rows.
    lattice_nodes: list[tuple[int, int, float, int]]
    stats: DecoderStats
    lookup_start: LookupStats
    #: Offset-table entries + expansion-cache residency + counters
    #: (see :meth:`repro.core.composition.LmLookup.export_transient_state`).
    lookup_state: dict
    #: The running best hypothesis at checkpoint time (observability;
    #: restore recomputes it from the frontier).
    partial: PartialHypothesis

    def state_bytes(self) -> int:
        """Approximate checkpoint payload size (sans lookup caches)."""
        return (
            self.table_am.nbytes
            + self.table_lm.nbytes
            + self.table_cost.nbytes
            + self.table_node.nbytes
            + 32 * len(self.lattice_nodes)
        )


class StreamingSession:
    """Incremental decoding over one utterance.

    The per-frame work dispatches exactly as
    :meth:`~repro.core.decoder.OnTheFlyDecoder.decode` does: the
    vectorized emitting expansion plus the batched epsilon phase
    whenever the decoder's structure allows them, and the scalar
    reference loop otherwise (always under a trace sink, which needs
    exact per-event ordering).  Both paths produce bit-identical
    partials, results and :class:`DecoderStats` — the streaming analogue
    of the offline decoder's parity contract.
    """

    def __init__(
        self,
        decoder: OnTheFlyDecoder,
        lookup=None,
        scorer=None,
        pipeline=None,
        pipeline_chunk_frames: int | None = None,
    ) -> None:
        self.decoder = decoder
        config = decoder.config
        # Raw-feature streaming (:meth:`push_features`) needs an
        # acoustic scorer; sessions fed pre-scored matrices leave both
        # unset.  A shared ``pipeline`` (serving layers) takes priority
        # over a lazily-built private one.
        self._scorer = scorer
        self._pipeline = pipeline
        self._owns_pipeline = False
        self._pipeline_chunk_frames = pipeline_chunk_frames
        self._pending = None  # in-flight ScoreStream (lag-1 pipelining)
        # Sessions default to the decoder's own lookup; a serving layer
        # running several sessions on one decoder passes each a
        # ``decoder.lookup.fork()`` instead, giving every session its
        # own OLT/expansion-cache evolution (solo-identical counters)
        # and making the sessions fusable by :func:`push_sessions`.
        self._lookup = lookup if lookup is not None else decoder.lookup
        self._vectorized = (
            config.vectorized
            and not decoder._tracing
            and decoder._arcs.pure_emitting
        )
        self._batched_epsilon = (
            self._vectorized and decoder._epsilon_batchable()
        )
        self._table: TokenTable | SoaTokenTable = (
            SoaTokenTable(decoder._num_lm)
            if self._vectorized
            else TokenTable()
        )
        self._table.insert(
            decoder.am.loop_state, decoder.lm.fst.start, 0.0, -1
        )
        self._lattice = WordLattice()
        self._stats = DecoderStats()
        self._frames = 0
        self._finished = False
        # Lookup-counter baseline so finish() can report this
        # utterance's delta, as decode() does.  With several sessions
        # interleaved on one decoder (the serving layer), the delta is
        # decoder-wide over the session's lifetime rather than
        # per-utterance — unless each session got its own fork;
        # transcripts are unaffected either way.
        self._lookup_start = decoder._snapshot_lookup(self._lookup)

    @property
    def frames_consumed(self) -> int:
        return self._frames

    def snapshot(self) -> SessionSnapshot:
        """Checkpoint the session between batches.

        The snapshot owns copies of everything mutable, so the live
        session keeps decoding without aliasing it, and one snapshot
        can seed several restores.
        """
        if self._finished:
            raise RuntimeError("session already finished")
        if self._pending is not None:
            raise RuntimeError(
                "a feature batch is still being scored; drain it "
                "(push_features/finish) before taking a snapshot"
            )
        if isinstance(self._table, SoaTokenTable):
            am, lm, cost, node = self._table.columns()
            am, lm, cost, node = am.copy(), lm.copy(), cost.copy(), node.copy()
        else:
            tokens = list(self._table)
            am = np.array([t.am_state for t in tokens], dtype=np.int64)
            lm = np.array([t.lm_state for t in tokens], dtype=np.int64)
            cost = np.array([t.cost for t in tokens], dtype=np.float64)
            node = np.array(
                [t.lattice_node for t in tokens], dtype=np.int64
            )
        return SessionSnapshot(
            frames=self._frames,
            vectorized=self._vectorized,
            num_lm=self.decoder._num_lm,
            table_am=am,
            table_lm=lm,
            table_cost=cost,
            table_node=node,
            lattice_nodes=[
                (n.word, n.frame, n.cost, n.backpointer)
                for n in self._lattice.nodes
            ],
            stats=_copy_stats(self._stats),
            lookup_start=self._lookup_start.clone(),
            lookup_state=self._lookup.export_transient_state(),
            partial=self._partial(),
        )

    @classmethod
    def restore(
        cls,
        decoder: OnTheFlyDecoder,
        snapshot: SessionSnapshot,
        lookup=None,
    ) -> "StreamingSession":
        """Resume a snapshotted session on ``decoder``.

        The decoder must be built from the same graphs and config as
        the one that took the snapshot (a different expansion mode is
        rejected; anything subtler silently changes transcripts, as it
        would for a plain re-decode).  By default the session gets a
        fresh ``decoder.lookup.fork()`` and the snapshot's cache state
        is loaded into it, so the continuation's lookup counters match
        the uninterrupted run exactly.
        """
        if lookup is None:
            lookup = decoder.lookup.fork()
        session = cls(decoder, lookup=lookup)
        if session._vectorized != snapshot.vectorized:
            raise ValueError(
                "decoder expansion mode does not match the snapshot "
                f"(vectorized={session._vectorized} vs "
                f"snapshot {snapshot.vectorized})"
            )
        if snapshot.vectorized and decoder._num_lm != snapshot.num_lm:
            raise ValueError(
                "decoder LM state count does not match the snapshot"
            )
        am = snapshot.table_am.copy()
        lm = snapshot.table_lm.copy()
        cost = snapshot.table_cost.copy()
        node = snapshot.table_node.copy()
        if snapshot.vectorized:
            table: TokenTable | SoaTokenTable = SoaTokenTable(
                snapshot.num_lm
            )
            if am.shape[0]:
                keys = am * snapshot.num_lm + lm
                order = np.argsort(keys, kind="stable")
                table.bulk_fill(am, lm, cost, node, keys[order], order, 0, 0)
        else:
            table = TokenTable()
            for a, l, c, n in zip(
                am.tolist(), lm.tolist(), cost.tolist(), node.tolist()
            ):
                table.insert(a, l, c, n)
        session._table = table
        lattice = WordLattice()
        lattice.nodes = [
            LatticeNode(word, frame, cost_, backpointer)
            for word, frame, cost_, backpointer in snapshot.lattice_nodes
        ]
        session._lattice = lattice
        session._stats = _copy_stats(snapshot.stats)
        session._frames = snapshot.frames
        session._lookup.load_transient_state(snapshot.lookup_state)
        session._lookup_start = snapshot.lookup_start.clone()
        return session

    def push(self, scores: np.ndarray) -> PartialHypothesis:
        """Consume one batch of frames; returns the running best guess."""
        if self._finished:
            raise RuntimeError("session already finished")
        if scores.ndim != 2:
            raise ValueError(f"bad score batch shape {scores.shape}")
        # Width is validated *before* the zero-frame early return: a
        # (0, k) batch with a wrong senone width is a malformed client
        # payload and must be rejected, not silently accepted because
        # it happens to carry no frames.  The one zero-frame shape with
        # no width information — (0, 0), what an empty wire payload
        # decodes to — stays a legal keep-alive.
        if scores.shape[1] < self.decoder.am.num_senones and scores.shape != (
            0,
            0,
        ):
            raise ValueError(f"bad score batch shape {scores.shape}")
        if scores.shape[0] == 0:
            # A zero-frame batch is a legal keep-alive: no decoding
            # work, the running hypothesis is simply re-read.
            return self._partial()
        decoder = self.decoder
        stats = self._stats
        lattice = self._lattice
        lookup = self._lookup
        beam_config = decoder.config.beam_config()
        vectorized = self._vectorized
        scores = np.ascontiguousarray(scores, dtype=np.float64)
        # The scalar hot loop wants plain Python floats, not
        # per-element numpy indexing: one conversion per batch.
        rows = None if vectorized else scores.tolist()
        current = self._table
        for i in range(scores.shape[0]):
            if vectorized:
                next_table, num_survivors, frame_expansions, pruned = (
                    decoder._expand_frame_vectorized(
                        current, scores[i], beam_config
                    )
                )
            else:
                survivors, pruned = prune(current, beam_config)
                num_survivors = len(survivors)
                next_table = TokenTable()
                frame_expansions = decoder._expand_emitting_scalar(
                    survivors, rows[i], next_table
                )
            stats.beam_pruned += pruned
            stats.am_state_fetches += num_survivors
            stats.am_arc_fetches += frame_expansions
            stats.expansions += frame_expansions
            expansions_before = stats.expansions
            probes_before = lookup.stats.arc_probes
            writes_before = stats.token_writes
            if self._batched_epsilon:
                decoder._epsilon_phase_batched(
                    next_table,
                    self._frames,
                    lattice,
                    stats,
                    beam_config,
                    lookup=lookup,
                )
            else:
                decoder._epsilon_phase(
                    next_table,
                    self._frames,
                    lattice,
                    stats,
                    beam_config,
                    lookup=lookup,
                )
            stats.frame_work.append(
                (
                    num_survivors,
                    frame_expansions
                    + (stats.expansions - expansions_before),
                    lookup.stats.arc_probes - probes_before,
                    stats.token_writes - writes_before,
                )
            )
            stats.tokens_created += next_table.inserts
            stats.tokens_recombined += next_table.recombinations
            stats.active_history.append(len(next_table))
            current = next_table
            self._frames += 1
        self._table = current
        return self._partial()

    def push_features(self, features: np.ndarray) -> PartialHypothesis:
        """Consume raw features, scoring asynchronously ahead of search.

        Lag-1 pipelining: this batch is submitted to the scoring
        pipeline immediately, then the *previous* submission's scores —
        complete or completing on the worker thread — are searched, so
        the acoustic model scores batch ``n`` while the Viterbi engine
        searches batch ``n-1``.  The returned partial therefore trails
        :meth:`push` by one batch; :meth:`finish` drains the tail.
        Scores reaching the search are bitwise-identical to scoring the
        same batches synchronously (see :mod:`repro.am.pipeline`), so
        final results and stats match the pre-scored path exactly.
        A scorer failure surfaces here (or at :meth:`finish`) as a
        typed :class:`~repro.am.pipeline.ScoringError`.
        """
        if self._finished:
            raise RuntimeError("session already finished")
        if self._pipeline is None:
            if self._scorer is None:
                raise RuntimeError(
                    "session has no acoustic scorer; construct it with "
                    "scorer= (or pipeline=) to push raw features"
                )
            from repro.am.pipeline import ScoringPipeline

            self._pipeline = ScoringPipeline(
                self._scorer, chunk_frames=self._pipeline_chunk_frames
            )
            self._owns_pipeline = True
        stream = self._pipeline.submit(np.asarray(features))
        pending, self._pending = self._pending, stream
        partial = self._partial()
        if pending is not None:
            for chunk in pending.chunks():
                partial = self.push(chunk)
        return partial

    def _drain_pending(self) -> None:
        if self._pending is not None:
            pending, self._pending = self._pending, None
            for chunk in pending.chunks():
                self.push(chunk)
        if self._owns_pipeline and self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None
            self._owns_pipeline = False

    def _partial(self) -> PartialHypothesis:
        best_cost = math.inf
        best_node = -1
        if isinstance(self._table, SoaTokenTable):
            # Column order is iteration order, and argmin returns the
            # first minimum — the same winner the scalar scan picks.
            _, _, cost_col, node_col = self._table.columns()
            if cost_col.shape[0]:
                best = int(np.argmin(cost_col))
                best_cost = float(cost_col[best])
                best_node = int(node_col[best])
        else:
            for token in self._table:
                if token.cost < best_cost:
                    best_cost = token.cost
                    best_node = token.lattice_node
        words = (
            [
                self.decoder.lm.words.symbol_of(w)
                for w in self._lattice.backtrace(best_node)
            ]
            if best_node >= 0
            else []
        )
        return PartialHypothesis(
            words=words,
            cost=best_cost,
            frames_consumed=self._frames,
            active_tokens=len(self._table),
        )

    def finish(self) -> DecodeResult:
        """Terminate the utterance and return the final result."""
        if self._finished:
            raise RuntimeError("session already finished")
        self._drain_pending()
        self._finished = True
        self._stats.frames = self._frames
        self._stats.lookup = self.decoder._lookup_delta(
            self._lookup_start, lookup=self._lookup
        )
        return self.decoder._finalize(self._table, self._lattice, self._stats)


def push_sessions(
    sessions: list[StreamingSession],
    batches: list[np.ndarray],
) -> list[PartialHypothesis]:
    """Advance several sessions through their batches in lockstep.

    The multi-session analogue of :meth:`StreamingSession.push`: per
    frame index, every session still holding frames advances through
    one fused :func:`~repro.core.batch.step_segments` kernel call
    (ragged batches retire early, zero-frame batches are keep-alives).
    Each session's partials, final result and stats are bit-identical
    to pushing its batch alone — provided the sessions share one
    decoder but *not* one lookup (each needs its own
    ``decoder.lookup.fork()``, or the interleaving would reorder a
    shared cache's evolution).  Sessions that don't meet the fusion
    conditions — mixed decoders, a shared lookup, scalar or traced
    configs — are simply pushed one by one.
    """
    from repro.core.batch import BatchSegment, lockstep_supported, step_segments

    if len(sessions) != len(batches):
        raise ValueError("one score batch per session required")
    if not sessions:
        return []
    # Validate everything before touching anyone's state: a caller
    # seeing an exception from here may retry the batches one session
    # at a time (to attribute the failure), which is only safe when a
    # raise implies no session advanced.
    matrices = []
    for session, scores in zip(sessions, batches):
        if session._finished:
            raise RuntimeError("session already finished")
        if scores.ndim != 2 or (
            scores.shape[1] < session.decoder.am.num_senones
            and scores.shape != (0, 0)
        ):
            # Same rule as StreamingSession.push: width is checked even
            # on zero-frame batches, with widthless (0, 0) keep-alives
            # (an empty wire payload) exempt.
            raise ValueError(f"bad score batch shape {scores.shape}")
        matrices.append(np.ascontiguousarray(scores, dtype=np.float64))
    decoder = sessions[0].decoder
    fusable = (
        len(sessions) > 1
        and all(s.decoder is decoder for s in sessions)
        and lockstep_supported(decoder)
        and all(s._batched_epsilon for s in sessions)
        and len({id(s._lookup) for s in sessions}) == len(sessions)
    )
    if not fusable:
        return [s.push(b) for s, b in zip(sessions, matrices)]
    segments = [
        # scores stays None: the segment's frame field is the *global*
        # lattice frame stamp, while this batch indexes from zero — the
        # loop below drives consumption with its own local index.
        BatchSegment(
            table=session._table,
            lookup=session._lookup,
            lattice=session._lattice,
            stats=session._stats,
            frame=session._frames,
            index=i,
        )
        for i, session in enumerate(sessions)
    ]
    lengths = [m.shape[0] for m in matrices]
    for local in range(max(lengths)):
        active = [seg for seg in segments if local < lengths[seg.index]]
        rows = [matrices[seg.index][local] for seg in active]
        step_segments(decoder, active, rows)
    for session, seg in zip(sessions, segments):
        session._table = seg.table
        session._frames = seg.frame
    return [session._partial() for session in sessions]


def decode_streaming(
    decoder: OnTheFlyDecoder, scores: np.ndarray, batch_frames: int = 32
) -> tuple[DecodeResult, list[PartialHypothesis]]:
    """Decode in fixed-size batches, as the GPU+accelerator pipeline does."""
    if batch_frames <= 0:
        raise ValueError("batch_frames must be positive")
    session = StreamingSession(decoder)
    partials = []
    for start in range(0, scores.shape[0], batch_frames):
        partials.append(session.push(scores[start : start + batch_frames]))
    return session.finish(), partials


def transcribe_streams(
    decoder: OnTheFlyDecoder,
    score_matrices: list[np.ndarray],
    batch_frames: int = 32,
    parallelism: int = 1,
    scorer=None,
    pool=None,
) -> list[DecodeResult]:
    """Run a batch of independent streams, optionally across processes.

    Streams are independent utterances, so ``parallelism > 1`` fans
    them out over a :class:`~repro.asr.parallel.DecodePool` (which
    needs a ``scorer`` to ship the recognizer bundle to its workers).
    Results are in input order, and identical across parallelism
    levels whenever a ``scorer`` is given — the pool's determinism
    contract (cold per-decode caches per stream, bundle-quantized
    weights) applies to both modes then.

    A caller issuing many of these — a long-lived service — should
    pass an existing ``pool`` (or go through
    :meth:`~repro.asr.system.AsrSystem.transcribe_streams`, which
    caches pools): building a pool per call would re-fork warm workers
    every batch.  With ``pool`` given, ``parallelism``/``scorer`` are
    ignored and the pool is left open for the caller.
    """
    if pool is not None:
        return pool.decode_streams(score_matrices, batch_frames)
    if scorer is None:
        if parallelism != 1:
            raise ValueError(
                "parallel streaming needs a scorer for the bundle"
            )
        results = []
        for scores in score_matrices:
            decoder.lookup.reset_transient_state()
            result, _ = decode_streaming(decoder, scores, batch_frames)
            results.append(result)
        return results
    from repro.asr.parallel import DecodePool

    with DecodePool(
        decoder.am,
        decoder.lm,
        scorer=scorer,
        config=decoder.config,
        parallelism=parallelism,
    ) as pool:
        return pool.decode_streams(score_matrices, batch_frames)
