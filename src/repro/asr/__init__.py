"""End-to-end ASR system assembly: tasks, datasets, pipeline, metrics."""

from repro.asr.dataset import ComponentSizes, build_scorer, measure_component_sizes
from repro.asr.parallel import DecodePool
from repro.asr.persist import RecognizerBundle, load_recognizer, save_recognizer
from repro.asr.streaming import (
    PartialHypothesis,
    StreamingSession,
    decode_streaming,
    transcribe_streams,
)
from repro.asr.system import AsrSystem, OverallReport
from repro.asr.task import (
    EESEN_TEDLIUM,
    KALDI_LIBRISPEECH,
    KALDI_TEDLIUM,
    KALDI_VOXFORGE,
    PAPER_TASKS,
    TINY,
    AsrTask,
    TaskConfig,
    build_task,
)

from repro.asr.wer import (
    EditCounts,
    align_counts,
    corpus_edit_counts,
    word_error_rate,
)

__all__ = [
    "build_scorer",
    "measure_component_sizes",
    "ComponentSizes",
    "AsrSystem",
    "DecodePool",
    "StreamingSession",
    "PartialHypothesis",
    "decode_streaming",
    "transcribe_streams",
    "save_recognizer",
    "load_recognizer",
    "RecognizerBundle",
    "OverallReport",
    "EditCounts",
    "align_counts",
    "corpus_edit_counts",
    "word_error_rate",
    "TaskConfig",
    "AsrTask",
    "build_task",
    "TINY",
    "KALDI_VOXFORGE",
    "KALDI_LIBRISPEECH",
    "KALDI_TEDLIUM",
    "EESEN_TEDLIUM",
    "PAPER_TASKS",
]
