"""The overall ASR system (Section 5.2).

Three platform assemblies, as in Figures 12-13:

* ``tegra-x1``: scorer and Viterbi search both on the mobile GPU;
* ``reza``: scorer on the GPU, search on the fully-composed accelerator;
* ``unfold``: scorer on the GPU, search on UNFOLD.

In the accelerated assemblies the GPU computes acoustic scores for
batch *N+1* while the accelerator decodes batch *N* (the integration of
[35]), so the steady-state decode time per batch is the maximum of the
two stages plus a small shared-buffer communication cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.fully_composed import FullyComposedSimulator
from repro.accel.gpu import GpuModel
from repro.accel.stats import RunReport
from repro.accel.unfold import UnfoldSimulator
from repro.am.features import Utterance
from repro.am.scorer import AcousticScorer
from repro.asr.task import AsrTask
from repro.asr.wer import word_error_rate
from repro.core.decoder import DecodeResult, DecoderConfig

#: Shared-buffer transfer cost per second of speech (acoustic scores
#: through main memory), in seconds; small relative to either stage.
COMM_SECONDS_PER_SPEECH_SECOND = 1e-3


@dataclass(frozen=True)
class OverallReport:
    """Figures 12-13: whole-pipeline time and energy for one platform."""

    platform: str
    task_name: str
    speech_seconds: float
    scorer_seconds: float
    search_seconds: float
    scorer_joules: float
    search_joules: float
    word_error_rate: float
    search_report: RunReport | None = None

    @property
    def decode_seconds(self) -> float:
        """Steady-state pipeline time: stages overlap across batches."""
        comm = COMM_SECONDS_PER_SPEECH_SECOND * self.speech_seconds
        return max(self.scorer_seconds, self.search_seconds) + comm

    @property
    def decode_ms_per_speech_second(self) -> float:
        """Figure 12's metric."""
        if self.speech_seconds <= 0:
            return 0.0
        return 1e3 * self.decode_seconds / self.speech_seconds

    @property
    def total_joules(self) -> float:
        return self.scorer_joules + self.search_joules

    @property
    def energy_mj_per_speech_second(self) -> float:
        """Figure 13's metric."""
        if self.speech_seconds <= 0:
            return 0.0
        return 1e3 * self.total_joules / self.speech_seconds

    @property
    def realtime_factor(self) -> float:
        if self.decode_seconds <= 0:
            return float("inf")
        return self.speech_seconds / self.decode_seconds


@dataclass
class AsrSystem:
    """A task + trained scorer, runnable on any of the three platforms."""

    task: AsrTask
    scorer: AcousticScorer
    gpu: GpuModel = field(default_factory=GpuModel)
    # Live DecodePools keyed by (parallelism, config fields): building
    # one costs a bundle round-trip and worker start-up, so transcribe
    # reuses them across calls instead of paying that per batch.
    _pools: dict = field(default_factory=dict, repr=False, compare=False)

    def score_all(self, utterances: list[Utterance]) -> list[np.ndarray]:
        return [self.scorer.score(u.features) for u in utterances]

    def _pool_for(
        self,
        config: DecoderConfig | None,
        parallelism: int,
        batch_size: int | None = None,
        pipeline_chunk_frames: int | None = None,
    ):
        """The cached DecodePool for one (config, parallelism, batch,
        pipeline) key.

        Pools persist across calls — workers warm up once, not per
        batch; :meth:`close` releases them.
        """
        from dataclasses import astuple

        from repro.asr.parallel import DecodePool

        key = (
            parallelism,
            batch_size,
            pipeline_chunk_frames,
            None if config is None else astuple(config),
        )
        pool = self._pools.get(key)
        if pool is None:
            pool = DecodePool(
                self.task.am,
                self.task.lm,
                scorer=self.scorer,
                config=config,
                parallelism=parallelism,
                batch_size=batch_size,
                pipeline_chunk_frames=pipeline_chunk_frames,
            )
            self._pools[key] = pool
        return pool

    def transcribe(
        self,
        utterances: list[Utterance],
        config: DecoderConfig | None = None,
        parallelism: int = 1,
        batch_size: int | None = None,
        pipeline_chunk_frames: int | None = None,
    ) -> list[DecodeResult]:
        """Score and decode a batch with the software decoder.

        ``parallelism > 1`` fans utterances out over worker processes
        (see :class:`repro.asr.parallel.DecodePool`); ``batch_size > 1``
        instead decodes utterances in lockstep through one fused kernel
        per frame (:class:`repro.core.batch.BatchDecoder`).  On hosts
        with a single visible CPU a ``parallelism > 1`` request quietly
        becomes lockstep batching — process fan-out can't help there.
        ``pipeline_chunk_frames`` turns on the asynchronous scoring
        pipeline: acoustic scores are produced on a worker thread ahead
        of the search (:mod:`repro.am.pipeline`), overlapping the two
        stages on any of the strategies.  Every strategy returns
        bit-identical results in input order; ``DecodeResult.strategy``
        records which one ran.
        """
        return self._pool_for(
            config, parallelism, batch_size, pipeline_chunk_frames
        ).decode_utterances(utterances)

    def transcribe_streams(
        self,
        utterances: list[Utterance],
        config: DecoderConfig | None = None,
        parallelism: int = 1,
        batch_frames: int = 32,
    ) -> list[DecodeResult]:
        """Score and decode a batch through streaming sessions.

        Same cached-pool reuse as :meth:`transcribe` — a server issuing
        call after call keeps its warm workers instead of re-forking a
        throwaway pool per batch.
        """
        pool = self._pool_for(config, parallelism)
        scores = [self.scorer.score(u.features) for u in utterances]
        return pool.decode_streams(scores, batch_frames)

    def close(self) -> None:
        """Shut down any worker pools transcribe has built."""
        pools, self._pools = dict(self._pools), {}
        for pool in pools.values():
            pool.close()

    def __enter__(self) -> "AsrSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    def _scorer_stage(self, utterances: list[Utterance]) -> tuple[float, float]:
        frames = sum(u.num_frames for u in utterances)
        report = self.gpu.scorer_report(self.scorer.flops_per_frame, frames)
        return report.seconds, report.joules

    def _wer(self, utterances: list[Utterance], results) -> float:
        return word_error_rate(
            [u.words for u in utterances], [r.words for r in results]
        )

    def run_gpu_only(self, utterances: list[Utterance]) -> OverallReport:
        """Everything on the Tegra X1 (the paper's software baseline)."""
        scores = self.score_all(utterances)
        # Functional search result comes from the reference decoder; GPU
        # timing comes from the analytical kernel model.
        sim = UnfoldSimulator(self.task)
        accel_report = sim.run(scores)
        search = self.gpu.search_run_report(
            [r.stats for r in accel_report.results], self.task.name
        )
        scorer_seconds, scorer_joules = self._scorer_stage(utterances)
        return OverallReport(
            platform="tegra-x1",
            task_name=self.task.name,
            speech_seconds=sum(u.duration_seconds for u in utterances),
            scorer_seconds=scorer_seconds,
            search_seconds=search.decode_seconds,
            scorer_joules=scorer_joules,
            search_joules=search.energy.total_joules,
            word_error_rate=self._wer(utterances, accel_report.results),
            search_report=search,
        )

    def run_with_accelerator(
        self,
        utterances: list[Utterance],
        simulator: UnfoldSimulator | FullyComposedSimulator,
    ) -> OverallReport:
        """GPU front-end + hardware Viterbi search (Section 5.2 setup)."""
        scores = self.score_all(utterances)
        report = simulator.run(scores)
        scorer_seconds, scorer_joules = self._scorer_stage(utterances)
        return OverallReport(
            platform=report.platform,
            task_name=self.task.name,
            speech_seconds=sum(u.duration_seconds for u in utterances),
            scorer_seconds=scorer_seconds,
            search_seconds=report.decode_seconds,
            scorer_joules=scorer_joules,
            search_joules=report.energy.total_joules,
            word_error_rate=self._wer(utterances, report.results),
            search_report=report,
        )
