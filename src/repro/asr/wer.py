"""Word error rate.

Standard Levenshtein alignment at the word level:
``WER = (substitutions + insertions + deletions) / reference words``,
aggregated over a test set by summing edits and reference lengths
(the convention Kaldi's scoring uses, and Table 6 reports).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EditCounts:
    substitutions: int
    insertions: int
    deletions: int
    reference_words: int

    @property
    def total_edits(self) -> int:
        return self.substitutions + self.insertions + self.deletions

    @property
    def error_rate(self) -> float:
        if self.reference_words == 0:
            return 0.0 if self.total_edits == 0 else float("inf")
        return self.total_edits / self.reference_words

    def __add__(self, other: "EditCounts") -> "EditCounts":
        return EditCounts(
            self.substitutions + other.substitutions,
            self.insertions + other.insertions,
            self.deletions + other.deletions,
            self.reference_words + other.reference_words,
        )


def align_counts(reference: list[str], hypothesis: list[str]) -> EditCounts:
    """Minimum-edit alignment between one reference and one hypothesis.

    Minimum edit distance is unique but its breakdown is not: a
    substitution can trade against an insertion+deletion pair at equal
    total cost.  The alignment reported here is the minimum-edit one
    with the *most* substitutions (lexicographic DP), which is a
    symmetric criterion — swapping the arguments exactly swaps
    insertions and deletions, whereas a scan-order tie-break does not.
    """
    rows = len(reference) + 1
    cols = len(hypothesis) + 1
    # cost[i][j] = (edits, -subs, ins, dels) for ref[:i] vs hyp[:j];
    # tuple order makes min() lexicographic: fewest edits, then most
    # substitutions.  Given (edits, subs) and the two lengths, the
    # ins/del split is forced, so no further tie-breaking can matter.
    cost = [[(0, 0, 0, 0)] * cols for _ in range(rows)]
    for i in range(1, rows):
        cost[i][0] = (i, 0, 0, i)
    for j in range(1, cols):
        cost[0][j] = (j, 0, j, 0)
    for i in range(1, rows):
        for j in range(1, cols):
            diag_e, diag_s, diag_i, diag_d = cost[i - 1][j - 1]
            if reference[i - 1] == hypothesis[j - 1]:
                diag = (diag_e, diag_s, diag_i, diag_d)
            else:
                diag = (diag_e + 1, diag_s - 1, diag_i, diag_d)
            ins_e, ins_s, ins_i, ins_d = cost[i][j - 1]
            del_e, del_s, del_i, del_d = cost[i - 1][j]
            cost[i][j] = min(
                diag,
                (ins_e + 1, ins_s, ins_i + 1, ins_d),
                (del_e + 1, del_s, del_i, del_d + 1),
            )
    edits, neg_subs, ins, dels = cost[-1][-1]
    return EditCounts(-neg_subs, ins, dels, len(reference))


def word_error_rate(
    references: list[list[str]], hypotheses: list[list[str]]
) -> float:
    """Aggregate WER over a test set (Table 6's metric)."""
    return corpus_edit_counts(references, hypotheses).error_rate


def corpus_edit_counts(
    references: list[list[str]], hypotheses: list[list[str]]
) -> EditCounts:
    if len(references) != len(hypotheses):
        raise ValueError("references and hypotheses must be parallel")
    total = EditCounts(0, 0, 0, 0)
    for ref, hyp in zip(references, hypotheses):
        total = total + align_counts(ref, hyp)
    return total


def oracle_word_error_rate(
    references: list[list[str]], nbest_lists: list[list[list[str]]]
) -> float:
    """Best achievable WER if an oracle picked from each n-best list.

    The standard lattice/n-best quality diagnostic: the gap between
    1-best WER and oracle WER is the headroom a better LM or rescoring
    pass could recover.
    """
    if len(references) != len(nbest_lists):
        raise ValueError("references and nbest_lists must be parallel")
    total = EditCounts(0, 0, 0, 0)
    for ref, candidates in zip(references, nbest_lists):
        if not candidates:
            candidates = [[]]
        best = min(
            (align_counts(ref, hyp) for hyp in candidates),
            key=lambda c: c.total_edits,
        )
        total = total + best
    return total.error_rate
