"""Scorer training and dataset-size accounting (Figure 2).

Builds the acoustic front-end each task's preset calls for — GMM, DNN
or RNN — by actually training it on synthesized utterances from the
task's own corpus, then accounts dataset sizes per component the way
Figure 2 does: acoustic-model parameters versus the WFST(s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.am.dnn import MlpAcousticModel
from repro.am.gmm import GmmAcousticModel
from repro.am.rnn import RnnAcousticModel
from repro.am.scorer import AcousticScorer, ScorerKind
from repro.asr.task import AsrTask
from repro.compress.sizing import measure_dataset_sizing


def build_scorer(
    task: AsrTask,
    kind: ScorerKind | None = None,
    training_utterances: int = 40,
    hidden: int = 192,
    oracle_gmm: bool = False,
) -> AcousticScorer:
    """Train the task's acoustic scorer on its own synthetic speech.

    Args:
        task: The ASR task (provides lexicon, emissions, synthesizer).
        kind: Override the preset's scorer kind.
        training_utterances: Synthesized training set size.
        hidden: Hidden width for the DNN/RNN scorers.
        oracle_gmm: Use the generator's parameters directly instead of
            fitting (fast path for tests).
    """
    kind = kind or task.config.scorer_kind
    if kind is ScorerKind.GMM and oracle_gmm:
        return GmmAcousticModel.from_emissions(
            task.emissions, num_mixtures=1, noise_scale=task.config.noise_scale
        )

    sentences = [
        task.grammar.sample_sentence(max_len=8) for _ in range(training_utterances)
    ]
    # Lexicon coverage: real training corpora attest every word, so every
    # usable senone has frames (and a sane prior) in training.
    vocab = task.grammar.vocabulary
    sentences.extend(vocab[i : i + 5] for i in range(0, len(vocab), 5))
    utterances = task.synthesizer.synthesize_batch(sentences)
    num_senones = task.num_senones

    if kind is ScorerKind.GMM:
        features = np.concatenate([u.features for u in utterances])
        alignment = np.concatenate([np.asarray(u.alignment) for u in utterances])
        return GmmAcousticModel.fit(features, alignment, num_senones, num_mixtures=2)
    if kind is ScorerKind.DNN:
        features = np.concatenate([u.features for u in utterances])
        alignment = np.concatenate([np.asarray(u.alignment) for u in utterances])
        return MlpAcousticModel.fit(
            features, alignment, num_senones, hidden=hidden
        )
    if kind is ScorerKind.RNN:
        features = np.concatenate([u.features for u in utterances])
        alignment = np.concatenate([np.asarray(u.alignment) for u in utterances])
        return RnnAcousticModel.fit(
            [u.features for u in utterances],
            [np.asarray(u.alignment) for u in utterances],
            num_senones,
            hidden=hidden,
        )
    raise ValueError(f"unknown scorer kind: {kind}")


@dataclass(frozen=True)
class ComponentSizes:
    """Figure 2's bars for one decoder: scorer vs WFST bytes."""

    task_name: str
    scorer_kind: str
    scorer_bytes: int
    composed_wfst_bytes: int
    onthefly_wfst_bytes: int

    @property
    def total_composed_bytes(self) -> int:
        return self.scorer_bytes + self.composed_wfst_bytes

    @property
    def wfst_share(self) -> float:
        """Fraction of the (composed) dataset that is WFST (paper: 87-97%)."""
        return self.composed_wfst_bytes / self.total_composed_bytes

    @property
    def total_onthefly_bytes(self) -> int:
        return self.scorer_bytes + self.onthefly_wfst_bytes


def measure_component_sizes(
    task: AsrTask, scorer: AcousticScorer
) -> ComponentSizes:
    sizing = measure_dataset_sizing(task)
    return ComponentSizes(
        task_name=task.name,
        scorer_kind=scorer.kind.value,
        scorer_bytes=scorer.size_bytes,
        composed_wfst_bytes=sizing.composed_bytes,
        onthefly_wfst_bytes=sizing.onthefly_comp_bytes,
    )
