"""Synthetic text corpora for language-model training.

The paper trains its LMs on the TED-LIUM / Librispeech / Voxforge text
corpora, which are not redistributable here.  We substitute a seeded
*reference grammar*: a random first-order Markov chain over a generated
vocabulary.  Sentences sampled from it exhibit the statistical structure
an n-gram LM exploits — a Zipf-like unigram distribution, sparse
bigram/trigram support (so back-off arcs actually fire), and consistent
test/train mismatch when noise is injected.

Word shapes are generated from a small consonant/vowel phonotactics so
the same vocabulary feeds the pronunciation lexicon (``repro.am``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"

#: Sentence boundary pseudo-words, following ARPA conventions.
SENTENCE_START = "<s>"
SENTENCE_END = "</s>"
UNKNOWN = "<unk>"


def make_vocabulary(num_words: int, rng: np.random.Generator) -> list[str]:
    """Generate ``num_words`` distinct pronounceable word strings."""
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < num_words:
        syllables = int(rng.integers(1, 4))
        parts = []
        for _ in range(syllables):
            c = _CONSONANTS[rng.integers(0, len(_CONSONANTS))]
            v = _VOWELS[rng.integers(0, len(_VOWELS))]
            parts.append(c + v)
            if rng.random() < 0.3:
                parts.append(_CONSONANTS[rng.integers(0, len(_CONSONANTS))])
        word = "".join(parts)
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


@dataclass
class ReferenceGrammar:
    """A random Markov chain used as the ground-truth sentence source.

    Attributes:
        vocabulary: The word list (no sentence-boundary tokens).
        transitions: Row-stochastic (V+1, V+1) matrix; row/column V is
            the sentence boundary, so ``transitions[V]`` is the
            sentence-initial distribution and column V holds stopping
            probabilities.
    """

    vocabulary: list[str]
    transitions: np.ndarray
    rng: np.random.Generator = field(repr=False, default_factory=np.random.default_rng)

    @classmethod
    def random(
        cls,
        vocabulary: list[str],
        rng: np.random.Generator,
        branching: int = 8,
        stop_probability: float = 0.12,
    ) -> "ReferenceGrammar":
        """Build a sparse random grammar.

        Each word can be followed by roughly ``branching`` others (with
        Zipf-ish preference), which keeps bigram support sparse — the
        property that makes LM back-off arcs matter.
        """
        v = len(vocabulary)
        transitions = np.zeros((v + 1, v + 1))
        # Zipf-like global popularity, so some words dominate.
        popularity = 1.0 / np.arange(1, v + 1)
        popularity /= popularity.sum()
        for row in range(v + 1):
            successors = rng.choice(
                v, size=min(branching, v), replace=False, p=popularity
            )
            weights = rng.dirichlet(np.ones(len(successors)) * 0.5)
            transitions[row, successors] = weights * (1.0 - stop_probability)
            transitions[row, v] = stop_probability
            transitions[row] /= transitions[row].sum()
        # A sentence cannot stop before producing one word.
        transitions[v, v] = 0.0
        transitions[v] /= transitions[v].sum()
        return cls(vocabulary=vocabulary, transitions=transitions, rng=rng)

    def sample_sentence(self, max_len: int = 30) -> list[str]:
        """Draw one sentence (a list of words, no boundary tokens)."""
        v = len(self.vocabulary)
        state = v  # boundary
        words: list[str] = []
        while len(words) < max_len:
            state = int(self.rng.choice(v + 1, p=self.transitions[state]))
            if state == v:
                break
            words.append(self.vocabulary[state])
        return words if words else [self.vocabulary[int(self.rng.integers(0, v))]]

    def sample_corpus(self, num_sentences: int) -> list[list[str]]:
        corpus = [self.sample_sentence() for _ in range(num_sentences)]
        return self._ensure_coverage(corpus)

    def _ensure_coverage(self, corpus: list[list[str]]) -> list[list[str]]:
        """Append short sentences so every vocabulary word is attested.

        Guarantees the unigram floor the paper relies on ("all the
        unigram likelihoods are maintained", Section 3.3): any word can
        be matched at LM state 0.
        """
        seen = {w for sentence in corpus for w in sentence}
        missing = [w for w in self.vocabulary if w not in seen]
        for i in range(0, len(missing), 5):
            corpus.append(missing[i : i + 5])
        return corpus


@dataclass(frozen=True)
class CorpusStats:
    num_sentences: int
    num_tokens: int
    vocabulary_size: int

    @property
    def avg_sentence_len(self) -> float:
        if self.num_sentences == 0:
            return 0.0
        return self.num_tokens / self.num_sentences


def corpus_stats(corpus: list[list[str]]) -> CorpusStats:
    tokens = sum(len(s) for s in corpus)
    vocab = {w for s in corpus for w in s}
    return CorpusStats(len(corpus), tokens, len(vocab))
