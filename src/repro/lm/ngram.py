"""Back-off n-gram language models.

Implements the standard Katz-style back-off estimator with absolute
discounting: an explicit probability ``P*(w | ctx)`` for every n-gram
kept in the model, plus a back-off weight ``alpha(ctx)`` applied when a
word was never seen in the context — exactly the structure the paper's
LM WFST encodes (Section 2: unigram/bigram/trigram states with back-off
arcs between levels).

Count cutoffs mirror the paper's observation that "combinations whose
likelihood is smaller than a threshold are pruned to keep the size of
the LM manageable": pruned combinations are precisely the ones that make
decoders traverse back-off arcs.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.lm.corpus import SENTENCE_END, SENTENCE_START

Context = tuple[str, ...]


@dataclass(frozen=True)
class NGramEntry:
    """One explicit n-gram: ``P*(word | context)`` in the back-off model."""

    context: Context
    word: str
    log_prob: float  # natural log


@dataclass
class NGramCounts:
    """Raw counts of n-grams up to ``order``, with ``<s>``/``</s>`` padding."""

    order: int
    counts: list[dict[Context, Counter]] = field(default_factory=list)

    @classmethod
    def from_corpus(cls, corpus: list[list[str]], order: int) -> "NGramCounts":
        if order < 1:
            raise ValueError("order must be >= 1")
        counts: list[dict[Context, Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        for sentence in corpus:
            padded = [SENTENCE_START] * (order - 1) + sentence + [SENTENCE_END]
            start = order - 1 if order > 1 else 0
            for i in range(start, len(padded)):
                word = padded[i]
                for k in range(order):
                    context = tuple(padded[i - k : i])
                    counts[k][context][word] += 1
        return cls(order=order, counts=[dict(c) for c in counts])

    def apply_cutoffs(self, cutoffs: tuple[int, ...]) -> None:
        """Drop n-grams below their order's count cutoff.

        ``cutoffs[k]`` applies to (k+1)-grams; unigrams are never pruned
        so the back-off floor always exists (Section 3.3 guarantee).
        """
        for k in range(1, self.order):
            cutoff = cutoffs[k] if k < len(cutoffs) else 1
            if cutoff <= 1:
                continue
            pruned: dict[Context, Counter] = {}
            for context, counter in self.counts[k].items():
                kept = Counter(
                    {w: c for w, c in counter.items() if c >= cutoff}
                )
                if kept:
                    pruned[context] = kept
            self.counts[k] = pruned

    def total_ngrams(self, k: int) -> int:
        """Number of distinct (k+1)-grams kept."""
        return sum(len(c) for c in self.counts[k].values())


class BackoffNGramModel:
    """A back-off n-gram model with absolute discounting.

    For a context with total count ``T``, ``D`` distinct successors and
    discount ``d``::

        P*(w | ctx)  = (c(ctx, w) - d) / T          for kept n-grams
        alpha(ctx)   = (d * D / T) / missing_mass   back-off weight
        P(w | ctx)   = P*(w | ctx)            if (ctx, w) kept
                     = alpha(ctx) * P(w | ctx[1:])  otherwise

    Unigrams are interpolated with a uniform floor over the vocabulary so
    every word (and ``</s>``) has nonzero probability from the empty
    context — the "any word ID can be found in an arc departing from
    state 0" guarantee the decoder's back-off walk relies on.
    """

    def __init__(
        self,
        vocabulary: list[str],
        counts: NGramCounts,
        discount: float = 0.5,
    ) -> None:
        if not 0.0 < discount < 1.0:
            raise ValueError("discount must be in (0, 1)")
        self.vocabulary = list(vocabulary)
        self.order = counts.order
        self.discount = discount
        self._events = self.vocabulary + [SENTENCE_END]
        self._unigram: dict[str, float] = {}
        self._explicit: list[dict[Context, dict[str, float]]] = [
            {} for _ in range(self.order)
        ]
        self._alpha: list[dict[Context, float]] = [{} for _ in range(self.order)]
        self._estimate(counts)

    # -- estimation ------------------------------------------------------

    def _estimate(self, counts: NGramCounts) -> None:
        self._estimate_unigrams(counts)
        for k in range(1, self.order):
            for context, counter in counts.counts[k].items():
                self._estimate_context(k, context, counter)

    def _estimate_unigrams(self, counts: NGramCounts) -> None:
        counter = counts.counts[0].get((), Counter())
        total = sum(counter.values())
        if total == 0:
            raise ValueError("empty corpus: no unigram counts")
        distinct = len(counter)
        floor_mass = self.discount * distinct / total
        floor = floor_mass / len(self._events)
        probs = {}
        for event in self._events:
            seen = max(counter.get(event, 0) - self.discount, 0.0) / total
            probs[event] = seen + floor
        # Exact renormalization (words seen zero times only get the floor).
        norm = sum(probs.values())
        self._unigram = {w: p / norm for w, p in probs.items()}
        self._explicit[0][()] = dict(self._unigram)

    def _estimate_context(self, k: int, context: Context, counter: Counter) -> None:
        total = sum(counter.values())
        distinct = len(counter)
        explicit = {
            w: (c - self.discount) / total for w, c in counter.items()
        }
        reserved = self.discount * distinct / total
        # Mass of the lower-order distribution over words NOT seen here.
        seen_lower = sum(self._prob(w, context[1:]) for w in counter)
        missing = max(1.0 - seen_lower, 1e-12)
        self._explicit[k][context] = explicit
        self._alpha[k][context] = reserved / missing

    # -- queries ---------------------------------------------------------

    def _prob(self, word: str, context: Context) -> float:
        context = self._truncate(context)
        k = len(context)
        table = self._explicit[k].get(context)
        if table is not None and word in table:
            return table[word]
        if k == 0:
            return self._unigram.get(word, 0.0)
        alpha = self._alpha[k].get(context)
        if alpha is None:
            alpha = 1.0  # context unseen entirely: no discounted mass held
        return alpha * self._prob(word, context[1:])

    def prob(self, word: str, context: tuple[str, ...] = ()) -> float:
        """``P(word | context)`` with back-off."""
        return self._prob(word, tuple(context))

    def log_prob(self, word: str, context: tuple[str, ...] = ()) -> float:
        p = self.prob(word, context)
        return math.log(p) if p > 0 else -math.inf

    def _truncate(self, context: Context) -> Context:
        if len(context) >= self.order:
            return context[-(self.order - 1):] if self.order > 1 else ()
        return context

    def score_sentence(self, words: list[str]) -> float:
        """Total natural-log probability of ``words`` plus ``</s>``."""
        history: list[str] = [SENTENCE_START] * (self.order - 1)
        total = 0.0
        for word in words + [SENTENCE_END]:
            total += self.log_prob(word, tuple(history))
            history = (history + [word])[-(self.order - 1):] if self.order > 1 else []
        return total

    def perplexity(self, corpus: list[list[str]]) -> float:
        log_total = 0.0
        tokens = 0
        for sentence in corpus:
            log_total += self.score_sentence(sentence)
            tokens += len(sentence) + 1  # count </s>
        return math.exp(-log_total / max(tokens, 1))

    # -- model structure (for WFST conversion and ARPA output) -----------

    def explicit_contexts(self, k: int) -> list[Context]:
        """Contexts of length ``k`` holding explicit n-grams."""
        return list(self._explicit[k].keys())

    def entries(self, k: int) -> list[NGramEntry]:
        """All explicit (k+1)-grams as :class:`NGramEntry`."""
        out = []
        for context, table in self._explicit[k].items():
            for word, p in table.items():
                out.append(NGramEntry(context, word, math.log(p)))
        return out

    def backoff_log_weight(self, context: Context) -> float:
        """``log alpha(context)``; 0.0 for the empty context."""
        k = len(context)
        if k == 0:
            return 0.0
        alpha = self._alpha[k].get(context, 1.0)
        return math.log(alpha) if alpha > 0 else -math.inf

    def has_context(self, context: Context) -> bool:
        k = len(context)
        return k < self.order and context in self._explicit[k]

    def num_ngrams(self, k: int) -> int:
        return sum(len(t) for t in self._explicit[k].values())


def train_ngram_model(
    corpus: list[list[str]],
    vocabulary: list[str],
    order: int = 3,
    cutoffs: tuple[int, ...] = (1, 1, 2),
    discount: float = 0.5,
) -> BackoffNGramModel:
    """Count, prune and estimate in one call."""
    counts = NGramCounts.from_corpus(corpus, order)
    counts.apply_cutoffs(cutoffs)
    return BackoffNGramModel(vocabulary, counts, discount=discount)
