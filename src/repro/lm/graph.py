"""Language-model WFST construction (Figure 3b structure).

One state per n-gram context that holds explicit successors: state 0 is
the unigram (empty-history) state, then bigram states (one-word
history), then trigram states (two-word history).  Word arcs carry the
word id as both input and output label and the explicit n-gram cost as
weight; every non-unigram state additionally has one *back-off arc* —
conventionally its last outgoing arc (Section 3.4) — pointing to the
state of its shortened history with the back-off penalty as weight.

Sentence-end probability is folded into state final weights, as in
standard decoding graphs, so composing with an acoustic model multiplies
in ``P(</s> | history)`` at utterance end.

The back-off label is interned *after* every vocabulary word, so its id
is larger than any word id and an ilabel arc-sort naturally places the
back-off arc last — the invariant the compressed layout and the
accelerator's binary search both rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.lm.corpus import SENTENCE_END, SENTENCE_START
from repro.lm.ngram import BackoffNGramModel, Context
from repro.wfst.fst import EPSILON, SymbolTable, Wfst

#: Symbol used for back-off (failure) arcs in the word symbol table.
BACKOFF_SYMBOL = "#phi"


@dataclass
class LmGraph:
    """A language-model WFST plus the metadata decoders need.

    Attributes:
        fst: The LM acceptor (word ids in = word ids out).
        words: Symbol table mapping word ids to strings.
        backoff_label: Input label marking back-off arcs (> any word id).
        state_of_context: Maps each n-gram context to its state id.
        context_of_state: Inverse of ``state_of_context``.
        unigram_state: The empty-history state (always 0).
    """

    fst: Wfst
    words: SymbolTable
    backoff_label: int
    state_of_context: dict[Context, int]
    context_of_state: list[Context] = field(default_factory=list)

    @property
    def unigram_state(self) -> int:
        return self.state_of_context[()]

    def word_id(self, word: str) -> int:
        return self.words.id_of(word)

    def state_level(self, state: int) -> int:
        """History length of ``state`` (0 = unigram, 1 = bigram, ...)."""
        return len(self.context_of_state[state])

    def num_states_by_level(self) -> dict[int, int]:
        levels: dict[int, int] = {}
        for context in self.state_of_context:
            levels[len(context)] = levels.get(len(context), 0) + 1
        return levels

    def backoff_arc(self, state: int):
        """The back-off arc of ``state`` or None (unigram state has none).

        After construction the back-off arc is the last outgoing arc.
        """
        arcs = self.fst.out_arcs(state)
        if arcs and arcs[-1].ilabel == self.backoff_label:
            return arcs[-1]
        return None


def build_lm_graph(
    model: BackoffNGramModel,
    words: SymbolTable | None = None,
) -> LmGraph:
    """Convert a back-off n-gram model into its WFST (Figure 3b)."""
    if words is None:
        words = SymbolTable("words")
    for word in model.vocabulary:
        words.add(word)
    backoff_label = words.add(BACKOFF_SYMBOL)
    if any(words.id_of(w) > backoff_label for w in model.vocabulary):
        raise ValueError("back-off label must sort after every word id")

    fst = Wfst(input_symbols=words, output_symbols=words)

    # Intern states: unigram context first so it becomes state 0.
    state_of_context: dict[Context, int] = {}
    contexts: list[Context] = [()]
    for k in range(1, model.order):
        contexts.extend(sorted(model.explicit_contexts(k)))
    for context in contexts:
        state_of_context[context] = fst.add_state()

    def resolve_state(context: Context) -> int:
        """Longest-suffix state for ``context`` (the empty context always exists)."""
        while context not in state_of_context:
            context = context[1:]
        return state_of_context[context]

    max_history = model.order - 1

    for k in range(model.order):
        for entry in model.entries(k):
            if entry.word in (SENTENCE_END, SENTENCE_START):
                continue  # handled via final weights / start state
            src = state_of_context[entry.context]
            word_id = words.id_of(entry.word)
            next_context = (entry.context + (entry.word,))[-max_history:] if max_history else ()
            dst = resolve_state(next_context)
            fst.add_arc(src, word_id, word_id, -entry.log_prob, dst)

    # Back-off arcs: from each non-empty context to its suffix state.
    for context, src in state_of_context.items():
        if not context:
            continue
        weight = -model.backoff_log_weight(context)
        dst = resolve_state(context[1:])
        fst.add_arc(src, backoff_label, EPSILON, weight, dst)

    # Final weights: P(</s> | context), resolved with full back-off.
    for context, state in state_of_context.items():
        log_p = model.log_prob(SENTENCE_END, context)
        if log_p > -math.inf:
            fst.set_final(state, -log_p)

    start_context = (SENTENCE_START,) * max_history
    fst.set_start(resolve_state(start_context))

    fst.arcsort("ilabel")
    graph = LmGraph(
        fst=fst,
        words=words,
        backoff_label=backoff_label,
        state_of_context=state_of_context,
        context_of_state=[ctx for ctx, _ in sorted(state_of_context.items(), key=lambda kv: kv[1])],
    )
    _check_invariants(graph)
    return graph


def _check_invariants(graph: LmGraph) -> None:
    """Structural invariants the decoder and compressor rely on."""
    fst = graph.fst
    for state in fst.states():
        arcs = fst.out_arcs(state)
        backoffs = [a for a in arcs if a.ilabel == graph.backoff_label]
        if len(backoffs) > 1:
            raise AssertionError(f"state {state} has {len(backoffs)} back-off arcs")
        if backoffs and arcs[-1].ilabel != graph.backoff_label:
            raise AssertionError(f"back-off arc of state {state} is not last")
        word_labels = [a.ilabel for a in arcs if a.ilabel != graph.backoff_label]
        if word_labels != sorted(word_labels):
            raise AssertionError(f"state {state} arcs not sorted by word id")
        if len(set(word_labels)) != len(word_labels):
            raise AssertionError(f"state {state} has duplicate word arcs")
    if graph.state_of_context[()] != 0:
        raise AssertionError("unigram context must be state 0")
