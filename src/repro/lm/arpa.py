"""ARPA text format for back-off n-gram models.

The interchange format Kaldi/EESEN language models are distributed in.
Implemented for completeness and as a second, independent encoding used
to cross-check the estimator: writing a trained model and re-reading it
must preserve every probability and back-off weight.

ARPA stores base-10 logs; the in-memory model uses natural logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, TextIO

from repro.lm.ngram import BackoffNGramModel, Context

_LN10 = math.log(10.0)


@dataclass
class ArpaModel:
    """A back-off model as read from an ARPA file.

    ``ngrams[k]`` maps an n-gram tuple (context + word) of length k+1 to
    ``(log10_prob, log10_backoff)``; back-off is 0.0 when absent.
    """

    order: int
    ngrams: list[dict[tuple[str, ...], tuple[float, float]]] = field(
        default_factory=list
    )

    def log_prob(self, word: str, context: Context = ()) -> float:
        """Natural-log ``P(word | context)`` with back-off resolution."""
        context = tuple(context)[-(self.order - 1):] if self.order > 1 else ()
        return self._log10_prob(word, context) * _LN10

    def _log10_prob(self, word: str, context: Context) -> float:
        gram = context + (word,)
        k = len(gram) - 1
        if k < self.order:
            entry = self.ngrams[k].get(gram)
            if entry is not None:
                return entry[0]
        if not context:
            return -math.inf
        backoff = 0.0
        parent = self.ngrams[len(context) - 1].get(context)
        if parent is not None:
            backoff = parent[1]
        return backoff + self._log10_prob(word, context[1:])

    def num_ngrams(self, k: int) -> int:
        return len(self.ngrams[k])


def write_arpa(model: BackoffNGramModel, stream: TextIO) -> None:
    """Serialize ``model`` in ARPA format."""
    stream.write("\\data\\\n")
    entries_by_order = [model.entries(k) for k in range(model.order)]
    for k, entries in enumerate(entries_by_order):
        stream.write(f"ngram {k + 1}={len(entries)}\n")
    for k, entries in enumerate(entries_by_order):
        stream.write(f"\n\\{k + 1}-grams:\n")
        has_children = (
            set(model.explicit_contexts(k + 1)) if k + 1 < model.order else set()
        )
        for entry in sorted(entries, key=lambda e: e.context + (e.word,)):
            gram = entry.context + (entry.word,)
            log10 = entry.log_prob / _LN10
            line = f"{log10:.7f}\t{' '.join(gram)}"
            if gram in has_children:
                backoff = model.backoff_log_weight(gram) / _LN10
                line += f"\t{backoff:.7f}"
            stream.write(line + "\n")
    stream.write("\n\\end\\\n")


def read_arpa(stream: TextIO | Iterable[str]) -> ArpaModel:
    """Parse an ARPA file into an :class:`ArpaModel`."""
    lines = iter(stream)
    sizes: list[int] = []
    for line in lines:
        if line.strip() == "\\data\\":
            break
    else:
        raise ValueError("ARPA header not found")
    for line in lines:
        text = line.strip()
        if not text:
            continue
        if text.startswith("ngram"):
            sizes.append(int(text.split("=")[1]))
        else:
            break
    order = len(sizes)
    if order == 0:
        raise ValueError("ARPA file declares no n-gram orders")
    model = ArpaModel(order=order, ngrams=[{} for _ in range(order)])

    current = _section_order(text)
    for line in lines:
        text = line.strip()
        if not text:
            continue
        if text == "\\end\\":
            break
        if text.startswith("\\"):
            current = _section_order(text)
            continue
        parts = text.split("\t") if "\t" in text else text.split()
        log10 = float(parts[0])
        if "\t" in text:
            gram = tuple(parts[1].split())
            backoff = float(parts[2]) if len(parts) > 2 else 0.0
        else:
            # Whitespace-separated: last field may be a back-off weight.
            words = parts[1:]
            backoff = 0.0
            if len(words) == current + 1:
                backoff = float(words[-1])
                words = words[:-1]
            gram = tuple(words)
        if len(gram) != current:
            raise ValueError(f"bad {current}-gram line: {text!r}")
        model.ngrams[current - 1][gram] = (log10, backoff)

    for k, size in enumerate(sizes):
        if len(model.ngrams[k]) != size:
            raise ValueError(
                f"declared {size} {k + 1}-grams, found {len(model.ngrams[k])}"
            )
    return model


def _section_order(text: str) -> int:
    # "\3-grams:" -> 3
    if not (text.startswith("\\") and text.endswith("-grams:")):
        raise ValueError(f"unexpected ARPA section header: {text!r}")
    return int(text[1:].split("-")[0])
