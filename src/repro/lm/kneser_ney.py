"""Kneser-Ney smoothing (interpolated, back-off form).

The paper's LMs are standard back-off n-grams; Kneser-Ney is the
stronger estimator modern toolkits default to.  It differs from plain
absolute discounting in the *lower-order* distributions: instead of raw
frequency, a word's lower-order probability is proportional to the
number of distinct contexts it completes (its continuation count) —
"Francisco" is frequent but only ever follows "San", so its unigram
back-off probability should be tiny.

The estimate is expressed in the same back-off form as
:class:`~repro.lm.ngram.BackoffNGramModel` (explicit probabilities plus
back-off weights), so LM graph construction, the on-the-fly decoder,
the compression formats and ARPA export all work unchanged.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.lm.ngram import BackoffNGramModel, NGramCounts


class KneserNeyModel(BackoffNGramModel):
    """Interpolated Kneser-Ney in back-off form.

    The highest order uses raw counts; every lower order uses
    continuation counts.  Both levels apply absolute discounting and
    redistribute the reserved mass through the back-off weights.
    """

    def _estimate(self, counts: NGramCounts) -> None:
        continuation = _continuation_counts(counts)
        self._estimate_unigrams_kn(continuation)
        for k in range(1, self.order):
            source = (
                counts.counts[k]
                if k == self.order - 1
                else continuation[k]
            )
            for context, counter in source.items():
                self._estimate_context(k, context, counter)

    def _estimate_unigrams_kn(
        self, continuation: list[dict[tuple, Counter]]
    ) -> None:
        if self.order == 1:
            # Degenerate case: no higher order to draw continuations from.
            raise ValueError("Kneser-Ney needs order >= 2")
        counter = continuation[0].get((), Counter())
        total = sum(counter.values())
        if total == 0:
            raise ValueError("empty corpus: no continuation counts")
        distinct = len(counter)
        floor_mass = self.discount * distinct / total
        floor = floor_mass / len(self._events)
        probs = {}
        for event in self._events:
            seen = max(counter.get(event, 0) - self.discount, 0.0) / total
            probs[event] = seen + floor
        norm = sum(probs.values())
        self._unigram = {w: p / norm for w, p in probs.items()}
        self._explicit[0][()] = dict(self._unigram)


def _continuation_counts(
    counts: NGramCounts,
) -> list[dict[tuple, Counter]]:
    """Continuation counts per order below the model's top order.

    ``continuation[k][ctx][w]`` is the number of *distinct* one-word
    left-extensions of the (k+1)-gram ``ctx + (w,)`` observed in the
    corpus — the Kneser-Ney substitute for raw counts at order k+1.
    """
    order = counts.order
    continuation: list[dict[tuple, Counter]] = [
        defaultdict(Counter) for _ in range(order)
    ]
    for k in range(1, order):
        # Each (k+1)-gram (context of len k, word) contributes one
        # distinct left-extension to the k-gram (context[1:], word).
        for context, counter in counts.counts[k].items():
            shortened = context[1:]
            for word in counter:
                continuation[k - 1][shortened][word] += 1
    return [dict(c) for c in continuation]


def train_kneser_ney(
    corpus: list[list[str]],
    vocabulary: list[str],
    order: int = 3,
    cutoffs: tuple[int, ...] = (1, 1, 2),
    discount: float = 0.75,
) -> KneserNeyModel:
    """Count, prune and estimate a Kneser-Ney model in one call."""
    counts = NGramCounts.from_corpus(corpus, order)
    counts.apply_cutoffs(cutoffs)
    return KneserNeyModel(vocabulary, counts, discount=discount)


__all__ = ["KneserNeyModel", "train_kneser_ney"]
