"""Language-model substrate: corpora, back-off n-grams, LM WFSTs."""

from repro.lm.arpa import ArpaModel, read_arpa, write_arpa
from repro.lm.corpus import (
    SENTENCE_END,
    SENTENCE_START,
    UNKNOWN,
    CorpusStats,
    ReferenceGrammar,
    corpus_stats,
    make_vocabulary,
)
from repro.lm.graph import BACKOFF_SYMBOL, LmGraph, build_lm_graph
from repro.lm.kneser_ney import KneserNeyModel, train_kneser_ney
from repro.lm.pruning import PruningReport, prune_model
from repro.lm.ngram import (
    BackoffNGramModel,
    NGramCounts,
    NGramEntry,
    train_ngram_model,
)

__all__ = [
    "SENTENCE_START",
    "SENTENCE_END",
    "UNKNOWN",
    "make_vocabulary",
    "ReferenceGrammar",
    "CorpusStats",
    "corpus_stats",
    "NGramCounts",
    "NGramEntry",
    "BackoffNGramModel",
    "train_ngram_model",
    "KneserNeyModel",
    "train_kneser_ney",
    "prune_model",
    "PruningReport",
    "LmGraph",
    "build_lm_graph",
    "BACKOFF_SYMBOL",
    "ArpaModel",
    "read_arpa",
    "write_arpa",
]
