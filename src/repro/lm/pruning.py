"""Relative-entropy (Stolcke) LM pruning.

The paper's LMs are pruned by count cutoffs ("combinations whose
likelihood is smaller than a threshold are pruned to keep the size of
the LM manageable").  Stolcke pruning is the principled version: drop an
explicit n-gram if removing it — letting the model back off instead —
changes the model distribution by less than a threshold in weighted
relative entropy.

Pruning trades LM WFST size against perplexity, which directly moves
the Table 1/Figure 8 storage numbers: a more aggressively pruned LM
shrinks both the on-the-fly dataset and the composed graph while
*increasing* back-off traffic during decoding — the §3.3 mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.lm.ngram import BackoffNGramModel, Context


@dataclass(frozen=True)
class PruningReport:
    """What pruning removed, per order."""

    threshold: float
    removed_by_order: dict[int, int]
    kept_by_order: dict[int, int]

    @property
    def total_removed(self) -> int:
        return sum(self.removed_by_order.values())

    def removal_rate(self, order: int) -> float:
        removed = self.removed_by_order.get(order, 0)
        kept = self.kept_by_order.get(order, 0)
        total = removed + kept
        return removed / total if total else 0.0


def prune_model(
    model: BackoffNGramModel, threshold: float = 1e-6
) -> PruningReport:
    """Prune explicit n-grams in place by relative-entropy impact.

    For each explicit n-gram (context, w) of order >= 2, the impact of
    dropping it is approximated as::

        D = P(context) * P(w | context) *
            (log P(w | context) - log P'(w | context))

    where ``P'`` is the back-off estimate that would replace it and
    ``P(context)`` is estimated from the chain of explicit
    probabilities.  N-grams with ``D < threshold`` are removed, highest
    order first (removing a trigram can only increase its bigram's
    usefulness, not decrease it); back-off weights are re-normalized
    afterwards.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    removed_by_order: dict[int, int] = {}
    kept_by_order: dict[int, int] = {}

    for k in range(model.order - 1, 0, -1):
        removed = 0
        kept = 0
        for context in list(model._explicit[k].keys()):
            table = model._explicit[k][context]
            context_prob = _context_probability(model, context)
            for word in list(table.keys()):
                p_explicit = table[word]
                alpha = model._alpha[k].get(context, 1.0)
                p_backoff = alpha * model._prob(word, context[1:])
                if p_backoff <= 0:
                    kept += 1
                    continue
                divergence = (
                    context_prob
                    * p_explicit
                    * (math.log(p_explicit) - math.log(p_backoff))
                )
                if abs(divergence) < threshold:
                    del table[word]
                    removed += 1
                else:
                    kept += 1
            if not table:
                del model._explicit[k][context]
                model._alpha[k].pop(context, None)
            else:
                _renormalize_alpha(model, k, context)
        removed_by_order[k + 1] = removed
        kept_by_order[k + 1] = kept
    return PruningReport(
        threshold=threshold,
        removed_by_order=removed_by_order,
        kept_by_order=kept_by_order,
    )


def _context_probability(model: BackoffNGramModel, context: Context) -> float:
    """P(context) approximated by chaining explicit probabilities."""
    prob = 1.0
    history: Context = ()
    for word in context:
        if word.startswith("<"):  # sentence-boundary pseudo-words
            continue
        prob *= max(model._prob(word, history), 1e-12)
        history = (history + (word,))[-(model.order - 1):]
    return prob


def _renormalize_alpha(
    model: BackoffNGramModel, k: int, context: Context
) -> None:
    """Recompute the back-off weight so the context sums to one again."""
    table = model._explicit[k][context]
    explicit_mass = sum(table.values())
    seen_lower = sum(model._prob(w, context[1:]) for w in table)
    missing = max(1.0 - seen_lower, 1e-12)
    reserved = max(1.0 - explicit_mass, 0.0)
    model._alpha[k][context] = reserved / missing
