"""Dependency-free service metrics (counters, gauges, histograms).

The serving layer needs live observability — sessions admitted and
rejected, frames decoded, queue depths, per-batch decode latency —
without pulling a metrics client into a reproduction repo.  This
module is that registry: three instrument kinds, a process-wide lock
(instruments are touched from the asyncio loop *and* from engine
executor threads), and a JSON-ready :meth:`MetricsRegistry.snapshot`
that the wire protocol's ``status`` request and ``BENCH_serve.json``
both serialize verbatim.

Histograms keep raw samples up to a bounded window (newest samples
win) and summarize on demand: count/mean/min/max plus interpolated
p50/p95/p99 — the latency shape a serving dashboard actually watches.
"""

from __future__ import annotations

import math
import threading
from collections import deque

#: Samples retained per histogram.  Enough for stable percentiles over
#: a bench run; old samples roll off so a long-lived server's snapshot
#: reflects recent behaviour, not its whole uptime.
DEFAULT_WINDOW = 65536

#: The percentiles every histogram summary reports.
PERCENTILES = (50.0, 95.0, 99.0)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (active sessions, queue depth)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


def percentile(ordered: list[float], pct: float) -> float:
    """Linear-interpolation percentile over pre-sorted samples."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class Histogram:
    """Windowed sample distribution with percentile summaries."""

    __slots__ = ("_lock", "_samples", "count", "total")

    def __init__(self, lock: threading.Lock, window: int = DEFAULT_WINDOW) -> None:
        self._lock = lock
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0  # lifetime observations, beyond the window
        self.total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self.count += 1
            self.total += float(value)

    def summary(self) -> dict:
        """JSON-ready summary; NaNs become None for empty histograms."""
        with self._lock:
            ordered = sorted(self._samples)
            count = self.count
            total = self.total
        if not ordered:
            return {
                "count": 0,
                "mean": None,
                "min": None,
                "max": None,
                **{f"p{int(p)}": None for p in PERCENTILES},
            }
        return {
            "count": count,
            "mean": total / count,
            "min": ordered[0],
            "max": ordered[-1],
            **{
                f"p{int(p)}": percentile(ordered, p) for p in PERCENTILES
            },
        }


class MetricsRegistry:
    """Named instruments plus a point-in-time snapshot.

    Instruments are created on first use (``registry.counter("x")``),
    so recording sites never need set-up code, and a snapshot of a
    fresh registry is simply empty.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(self._lock)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(self._lock)
        return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    self._lock, window=self._window
                )
        return instrument

    def snapshot(self) -> dict:
        """The registry as a JSON-serializable dict.

        Schema (documented in README "Serving")::

            {"counters":   {name: int},
             "gauges":     {name: float},
             "histograms": {name: {count, mean, min, max, p50, p95, p99}}}
        """
        with self._lock:
            counters = {k: c.value for k, c in sorted(self._counters.items())}
            gauges = {k: g.value for k, g in sorted(self._gauges.items())}
            histograms = dict(sorted(self._histograms.items()))
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {k: h.summary() for k, h in histograms.items()},
        }
