"""Fault injection for the serving stack.

Production hardening is only as real as the faults it was tested
against, so this module makes the interesting ones *deterministic*:

* :class:`WorkerChaos` — a fault plan shipped into one
  :class:`~repro.serve.engine.ProcessEngine` worker, counted in pipe
  pushes: crash the process mid-utterance, hang past the request
  deadline, decode but swallow the reply, or raise an injected decoder
  error at push N.
* :func:`kill_worker` — crash a live worker from the outside
  (``SIGKILL``), the supervisor's bread-and-butter scenario.
* :class:`FlakyEngine` — wrap any engine with seeded transient
  failures, for exercising the scheduler's retry/backoff and circuit
  breaker without a process in sight.

Everything here is seeded or counted — a chaos test that only fails
sometimes is worse than no test.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass

from repro.serve.engine import ProcessEngine, TransientEngineError


@dataclass(frozen=True)
class WorkerChaos:
    """A deterministic fault plan for one worker process.

    Push counts are 1-based and worker-wide (across sessions), matching
    how a real fault strikes: whatever happens to be decoding.  Exactly
    one fault should be armed per plan; ``worker_index`` picks which
    initial worker carries it (respawned replacements never do).
    """

    worker_index: int = 0
    #: ``os._exit(1)`` on receiving the Nth push — before decoding or
    #: replying, the clean crash the replay buffer must absorb.
    die_at_push: int | None = None
    #: Sleep ``hang_seconds`` before replying to the Nth push — the
    #: parent's deadline fires and the supervisor kills the worker.
    hang_at_push: int | None = None
    hang_seconds: float = 3600.0
    #: Decode the Nth push but never reply — acknowledged nowhere, so
    #: the parent must treat the worker as dead *and* the replayed
    #: session must not contain this push twice.
    drop_reply_at_push: int | None = None
    #: Raise inside the worker at the Nth push (a decoder bug, not an
    #: infrastructure fault: surfaces as a plain engine error).
    error_at_push: int | None = None
    error_message: str = "injected decoder fault"


def alive_workers(engine: ProcessEngine) -> list[int]:
    """Indices of workers whose processes are currently alive."""
    return [
        worker.index
        for worker in engine._workers
        if not worker.dead and worker.process.is_alive()
    ]


def kill_worker(engine: ProcessEngine, index: int = 0) -> int:
    """SIGKILL one live worker; returns the killed pid.

    The engine is *not* told: detection is the supervisor's job, which
    is the point of the exercise.
    """
    worker = engine._workers[index]
    pid = worker.process.pid
    if pid is None:  # pragma: no cover - never started
        raise RuntimeError(f"worker {index} has no process")
    os.kill(pid, signal.SIGKILL)
    return pid


class FlakyEngine:
    """An engine wrapper that injects seeded transient failures.

    ``failure_plan`` maps an operation name (``"start"``, ``"push"``,
    ``"push_many"``, ``"finish"``) to how many of its first calls fail
    with :class:`~repro.serve.engine.TransientEngineError` *before*
    reaching the inner engine (so no session state advances — safe to
    retry).  ``failure_rate`` adds seeded random failures on top for
    soak-style tests.
    """

    def __init__(
        self,
        inner,
        failure_plan: dict[str, int] | None = None,
        failure_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self._remaining = dict(failure_plan or {})
        self._rate = failure_rate
        self._rng = random.Random(seed)
        self.injected_failures = 0

    @property
    def workers(self) -> int:
        return self.inner.workers

    @property
    def max_fused_sessions(self) -> int:
        return getattr(self.inner, "max_fused_sessions", 1)

    def _maybe_fail(self, op: str) -> None:
        remaining = self._remaining.get(op, 0)
        if remaining > 0:
            self._remaining[op] = remaining - 1
            self.injected_failures += 1
            raise TransientEngineError(f"injected transient {op} failure")
        if self._rate > 0.0 and self._rng.random() < self._rate:
            self.injected_failures += 1
            raise TransientEngineError(f"injected transient {op} failure")

    def start(self, session_id: str) -> None:
        self._maybe_fail("start")
        self.inner.start(session_id)

    def push(self, session_id: str, scores):
        self._maybe_fail("push")
        return self.inner.push(session_id, scores)

    def push_many(self, items):
        if not hasattr(self.inner, "push_many"):
            raise AttributeError("inner engine has no push_many")
        self._maybe_fail("push_many")
        return self.inner.push_many(items)

    def finish(self, session_id: str):
        self._maybe_fail("finish")
        return self.inner.finish(session_id)

    def cancel(self, session_id: str) -> None:
        self.inner.cancel(session_id)

    def active_sessions(self) -> int:
        return self.inner.active_sessions()

    def close(self) -> None:
        self.inner.close()
