"""Session scheduling: admission control + fair micro-batching.

The scheduler is the serving layer's core loop.  It owns the bounded
session table, each session's bounded queue of undecoded frame
batches, and a round-robin dispatch policy: every cycle it picks up to
``engine.workers`` distinct sessions — resuming *after* the session
served last, so a chatty stream cannot starve a quiet one — and
decodes exactly one queued batch per picked session.  That is the
paper's Section 5.2 batched operation turned into a multi-tenant
policy: decode works in frame batches, and between batches the engine
is free to serve someone else.

Backpressure is explicit everywhere (the ROADMAP's "heavy traffic"
requirement): a full session table rejects new sessions with ``BUSY``
instead of queueing them, a full per-session frame queue rejects the
push instead of buffering unboundedly, idle sessions are evicted on a
timeout, and shutdown drains in-flight sessions to real final results
before the engine goes away.

Every outcome a client observes is delivered as a protocol message
dict on the session's ``events`` queue (partials, finals, errors), so
the TCP transport and the in-process client share one code path.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.serve import protocol
from repro.serve.engine import TransientEngineError, WorkerTimeout
from repro.serve.metrics import MetricsRegistry
from repro.serve.scoring import ScoreHandle, batch_frames, resolve_batch

#: How often the loop re-checks timers when no work is queued.
IDLE_POLL_SECONDS = 0.05


class Busy(Exception):
    """An admission-control rejection (session table or frame queue)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class DeadlineExceeded(Exception):
    """An engine call outlived the scheduler's request deadline.

    Not retried: the executor thread may still be running, so a retry
    could advance the session twice.  The session is failed instead.
    """


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission-control, pacing and fault-tolerance knobs."""

    max_sessions: int = 8
    max_queued_batches: int = 4
    idle_timeout_seconds: float = 30.0
    #: Hard wall-clock bound on one engine call as observed from the
    #: event loop (``None`` = unbounded).  The process engine has its
    #: own per-pipe-request timeout underneath; this one also covers
    #: in-process engines.
    request_deadline_seconds: float | None = None
    #: Retries (beyond the first attempt) for *transient* engine
    #: errors — dead/hung workers mid-recovery, injected chaos.
    max_retries: int = 2
    #: First retry delay; doubles per attempt (exponential backoff).
    retry_backoff_seconds: float = 0.05
    #: Circuit-breaker shape: failure rate over the last
    #: ``breaker_window`` engine calls (once ``breaker_min_samples``
    #: have been seen) trips DEGRADED at ``breaker_degrade_threshold``
    #: (fused dispatch off) and OPEN at ``breaker_open_threshold``
    #: (admission refused) for ``breaker_reset_seconds``.
    breaker_window: int = 16
    breaker_min_samples: int = 4
    breaker_degrade_threshold: float = 0.5
    breaker_open_threshold: float = 0.8
    breaker_reset_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_queued_batches < 1:
            raise ValueError("max_queued_batches must be >= 1")
        if self.idle_timeout_seconds <= 0:
            raise ValueError("idle_timeout_seconds must be positive")
        if (
            self.request_deadline_seconds is not None
            and self.request_deadline_seconds <= 0
        ):
            raise ValueError("request_deadline_seconds must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_seconds <= 0:
            raise ValueError("retry_backoff_seconds must be positive")
        if self.breaker_window < 1 or self.breaker_min_samples < 1:
            raise ValueError("breaker window/min_samples must be >= 1")
        if not (
            0.0
            < self.breaker_degrade_threshold
            <= self.breaker_open_threshold
            <= 1.0
        ):
            raise ValueError(
                "need 0 < degrade_threshold <= open_threshold <= 1"
            )
        if self.breaker_reset_seconds <= 0:
            raise ValueError("breaker_reset_seconds must be positive")


#: Circuit-breaker states, in degradation order.
BREAKER_CLOSED = "closed"
BREAKER_DEGRADED = "degraded"
BREAKER_OPEN = "open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker with three states.

    CLOSED is normal service.  DEGRADED keeps serving but disables
    fused dispatch — one session per engine call localizes failures
    and halts the blast radius of a sick engine.  OPEN refuses new
    admissions (``BUSY``) for a cooldown, after which the window is
    forgiven (half-open: service resumes and re-trips on fresh
    evidence).  Existing sessions are always served; the breaker only
    sheds *new* load.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self, config: SchedulerConfig, clock=perf_counter
    ) -> None:
        self._config = config
        self._clock = clock
        self._outcomes: deque[int] = deque(maxlen=config.breaker_window)
        self._open_until: float | None = None

    def record_success(self) -> None:
        self._outcomes.append(0)

    def record_failure(self) -> None:
        self._outcomes.append(1)
        config = self._config
        if (
            len(self._outcomes) >= config.breaker_min_samples
            and self._failure_rate() >= config.breaker_open_threshold
        ):
            self._open_until = self._clock() + config.breaker_reset_seconds

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    @property
    def state(self) -> str:
        if self._open_until is not None:
            if self._clock() < self._open_until:
                return BREAKER_OPEN
            # Cooldown over: forgive the window so one old burst of
            # failures cannot re-open the breaker without new evidence.
            self._open_until = None
            self._outcomes.clear()
        if len(self._outcomes) < self._config.breaker_min_samples:
            return BREAKER_CLOSED
        if self._failure_rate() >= self._config.breaker_degrade_threshold:
            return BREAKER_DEGRADED
        return BREAKER_CLOSED


@dataclass
class Session:
    """One admitted stream and its scheduler-side state."""

    session_id: str
    #: What this session's FRAMES batches carry (START negotiation);
    #: ``features`` sessions queue :class:`~repro.serve.scoring.
    #: ScoreHandle` objects instead of score matrices.
    payload: str = protocol.PAYLOAD_SCORES
    queue: deque = field(default_factory=deque)
    events: asyncio.Queue = field(default_factory=asyncio.Queue)
    finish_requested: bool = False
    closed: bool = False
    inflight: bool = False
    admitted_at: float = 0.0
    last_activity: float = 0.0
    frames_decoded: int = 0
    saw_first_partial: bool = False


class Scheduler:
    """Multiplex admitted sessions' frame batches over one engine."""

    def __init__(
        self,
        engine,
        config: SchedulerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        session_id_prefix: str = "s",
    ) -> None:
        self.engine = engine
        self.config = config or SchedulerConfig()
        self.metrics = metrics or MetricsRegistry()
        self.breaker = CircuitBreaker(self.config)
        self._sessions: dict[str, Session] = {}
        self._order: list[str] = []  # round-robin ring
        self._rr_next = 0
        self._wake = asyncio.Event()
        self._stopping = False
        self._draining = False
        self._task: asyncio.Task | None = None
        #: Id prefix, distinct per shard in a sharded deployment so a
        #: migrated session's id stays unique cluster-wide.
        self._id_prefix = session_id_prefix
        self._ids = iter(range(1, 1 << 62))
        self._executor = ThreadPoolExecutor(
            max_workers=engine.workers,
            thread_name_prefix="serve-engine",
        )
        # Pre-register the resilience counters so a healthy server's
        # ``status`` shows them at 0 instead of omitting them —
        # dashboards should not have to wait for the first fault to
        # learn the metric names.
        for name in ("retries", "recoveries", "deadline_exceeded"):
            self.metrics.counter(name)

    # -- client-facing operations (called from the event loop) --------------

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    @property
    def draining(self) -> bool:
        return self._stopping

    async def admit(
        self, payload: str = protocol.PAYLOAD_SCORES
    ) -> Session:
        """Admit one session or raise :class:`Busy` — never queue."""
        if self._stopping:
            self.metrics.counter("sessions_rejected").inc()
            raise Busy("server is shutting down")
        if self.breaker.state == BREAKER_OPEN:
            self.metrics.counter("sessions_rejected").inc()
            raise Busy("circuit open: engine is unhealthy, retry shortly")
        if len(self._sessions) >= self.config.max_sessions:
            self.metrics.counter("sessions_rejected").inc()
            raise Busy(
                f"session table full ({self.config.max_sessions} active)"
            )
        session_id = f"{self._id_prefix}{next(self._ids)}"
        try:
            await self._run_engine(self.engine.start, session_id)
        except TransientEngineError as exc:
            # The engine is sick, not the request: shed it as BUSY so
            # the client retries, and feed the breaker.
            self.breaker.record_failure()
            self.metrics.counter("sessions_rejected").inc()
            raise Busy(f"engine unavailable: {exc}") from exc
        else:
            self.breaker.record_success()
        now = perf_counter()
        session = Session(
            session_id=session_id,
            payload=payload,
            admitted_at=now,
            last_activity=now,
        )
        self._sessions[session_id] = session
        self._order.append(session_id)
        self.metrics.counter("sessions_admitted").inc()
        self.metrics.gauge("active_sessions").set(len(self._sessions))
        return session

    def get(self, session_id: str) -> Session | None:
        return self._sessions.get(session_id)

    def push(
        self, session: Session, scores: np.ndarray | ScoreHandle
    ) -> None:
        """Queue one frame batch or raise :class:`Busy` — never buffer
        beyond the session's bound.

        ``scores`` is a score matrix or, for a ``features`` session, a
        :class:`~repro.serve.scoring.ScoreHandle` already being scored
        by the serving layer's pipeline; either counts against the
        same ``max_queued_batches`` bound.
        """
        if session.closed:
            raise Busy("session already closed")
        if session.finish_requested:
            raise Busy("session already finishing")
        if len(session.queue) >= self.config.max_queued_batches:
            self.metrics.counter("pushes_rejected").inc()
            raise Busy(
                f"frame queue full ({self.config.max_queued_batches} batches)"
            )
        session.queue.append(scores)
        session.last_activity = perf_counter()
        self._update_queue_gauge()
        self._wake.set()

    def request_finish(self, session: Session) -> None:
        """Ask for the final result once queued batches are decoded."""
        if session.closed:
            raise Busy("session already closed")
        session.finish_requested = True
        session.last_activity = perf_counter()
        self._wake.set()

    async def cancel(self, session: Session) -> None:
        """Drop a session without a final result (client went away)."""
        if session.closed:
            return
        session.queue.clear()
        try:
            await self._run_engine(self.engine.cancel, session.session_id)
        except Exception:
            pass
        self._emit(
            session, protocol.cancelled_message(session.session_id)
        )
        self._retire(session, "sessions_cancelled")

    # -- migration (shard handoff) ------------------------------------------

    def exportable_sessions(self) -> list[str]:
        """Sessions safe to hand off right now, hottest-ring order.

        Excludes in-flight sessions (their engine state is mid-update)
        and finishing ones (about to retire anyway).  Sorted for
        deterministic victim selection.
        """
        return sorted(
            session_id
            for session_id, session in self._sessions.items()
            if not (
                session.closed
                or session.inflight
                or session.finish_requested
            )
        )

    async def export_session(
        self, session_id: str, notice: dict | None = None
    ) -> dict:
        """Snapshot a session (engine state + queued batches) and
        retire it locally.

        ``notice`` (a ``moved`` protocol message) is emitted on the
        session's event queue before retirement so a connected client
        learns the forwarding address.  Returns the handle
        :meth:`adopt_session` consumes on the receiving scheduler.
        """
        session = self._sessions.get(session_id)
        if session is None or session.closed:
            raise Busy(f"unknown session {session_id!r}")
        if session.inflight:
            raise Busy(f"session {session_id!r} is mid-decode")
        # Queued ScoreHandles are resolved to plain matrices here: the
        # handle's scoring thread stays behind, the scores travel.
        # Migration is rare, so blocking briefly on an in-flight score
        # is acceptable where a per-dispatch block would not be.
        queued = [resolve_batch(batch) for batch in session.queue]
        session.queue.clear()
        snapshot = await self._run_engine(
            self.engine.export_session, session_id
        )
        if notice is not None:
            self._emit(session, notice)
        self._retire(session, "sessions_moved")
        return {
            "session_id": session_id,
            "payload": session.payload,
            "snapshot": snapshot,
            "queued": queued,
            "frames_decoded": session.frames_decoded,
            "finish_requested": session.finish_requested,
            "saw_first_partial": session.saw_first_partial,
        }

    async def adopt_session(self, handle: dict) -> Session:
        """Rebuild an exported session here, queued batches included."""
        if self._stopping:
            raise Busy("server is shutting down")
        session_id = handle["session_id"]
        if session_id in self._sessions:
            raise Busy(f"session {session_id!r} already lives here")
        if len(self._sessions) >= self.config.max_sessions:
            raise Busy(
                f"session table full ({self.config.max_sessions} active)"
            )
        await self._run_engine(
            self.engine.adopt_session, session_id, handle["snapshot"]
        )
        now = perf_counter()
        session = Session(
            session_id=session_id,
            payload=handle.get("payload", protocol.PAYLOAD_SCORES),
            admitted_at=now,
            last_activity=now,
        )
        session.frames_decoded = handle.get("frames_decoded", 0)
        # Keep time-to-first-partial honest: an adopted session's
        # first partial was measured on its original shard.
        session.saw_first_partial = handle.get("saw_first_partial", True)
        session.finish_requested = handle.get("finish_requested", False)
        for batch in handle.get("queued", ()):
            session.queue.append(batch)
        self._sessions[session_id] = session
        self._order.append(session_id)
        self.metrics.counter("sessions_adopted").inc()
        self.metrics.gauge("active_sessions").set(len(self._sessions))
        self._update_queue_gauge()
        self._wake.set()
        return session

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="serve-scheduler"
            )

    async def stop(self, drain: bool = True) -> None:
        """Stop the loop; with ``drain`` every admitted session gets a
        real final result first (shutdown implies finish)."""
        self._stopping = True
        self._draining = drain
        if not drain:
            for session in list(self._sessions.values()):
                await self._run_engine(self.engine.cancel, session.session_id)
                self._emit(
                    session,
                    protocol.error_message(
                        "server stopped", session.session_id
                    ),
                )
                self._retire(session, "sessions_cancelled")
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        self._executor.shutdown(wait=True)

    # -- scheduler loop -----------------------------------------------------

    async def _run(self) -> None:
        while True:
            selected = self._select()
            if not selected:
                if self._stopping and not self._sessions:
                    break
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=IDLE_POLL_SECONDS
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    pass
                self._wake.clear()
                await self._evict_idle()
                continue
            self.metrics.counter("decode_cycles").inc()
            decodable = [s for s in selected if s.queue]
            rest = [s for s in selected if not s.queue]
            if len(decodable) >= 2 and self._fuse_width() >= 2:
                fused = decodable[: self._fuse_width()]
                rest = decodable[len(fused) :] + rest
                await asyncio.gather(
                    self._serve_fused(fused),
                    *(self._serve_one(session) for session in rest),
                )
            else:
                await asyncio.gather(
                    *(self._serve_one(session) for session in selected)
                )

    def _fuse_width(self) -> int:
        """How many sessions one engine dispatch may advance together."""
        if not hasattr(self.engine, "push_many"):
            return 1
        if self.breaker.state != BREAKER_CLOSED:
            # Degraded service: one session per engine call, so a sick
            # engine fails sessions one at a time instead of in fused
            # groups.
            return 1
        return getattr(self.engine, "max_fused_sessions", 1)

    def _has_turn(self, session: Session) -> bool:
        if session.closed or session.inflight:
            return False
        if session.queue or session.finish_requested:
            return True
        # Drain: shutdown finishes sessions whose clients never will.
        if self._stopping and self._draining:
            session.finish_requested = True
            return True
        return False

    def _select(self) -> list[Session]:
        """Up to ``max(engine.workers, fuse width)`` sessions,
        round-robin from the one after the session served last."""
        ring = self._order
        if not ring:
            return []
        selected: list[Session] = []
        size = len(ring)
        limit = max(self.engine.workers, self._fuse_width())
        start = self._rr_next % size
        for step in range(size):
            session = self._sessions.get(ring[(start + step) % size])
            if session is not None and self._has_turn(session):
                selected.append(session)
                if len(selected) >= limit:
                    self._rr_next = (start + step + 1) % size
                    break
        else:
            self._rr_next = start
        return selected

    async def _serve_one(self, session: Session) -> None:
        session.inflight = True
        try:
            if session.queue:
                await self._decode_batch(session)
            elif session.finish_requested:
                await self._finish(session)
        finally:
            session.inflight = False
            session.last_activity = perf_counter()
            self._wake.set()

    async def _call_engine(self, sessions: list[Session], fn, *args):
        """One engine call under the deadline/retry/backoff policy.

        Transient engine errors are retried ``max_retries`` times with
        exponential backoff, narrating each attempt to the affected
        sessions as a ``retrying`` event (and a ``recovered`` event
        when a retry lands).  A scheduler-deadline overrun raises
        :class:`DeadlineExceeded` and is never retried.  Every outcome
        feeds the circuit breaker.
        """
        config = self.config
        attempts = config.max_retries + 1
        for attempt in range(1, attempts + 1):
            coro = self._run_engine(fn, *args)
            try:
                if config.request_deadline_seconds is not None:
                    value = await asyncio.wait_for(
                        coro, timeout=config.request_deadline_seconds
                    )
                else:
                    value = await coro
            except (asyncio.TimeoutError, TimeoutError) as exc:
                self.metrics.counter("deadline_exceeded").inc()
                self.breaker.record_failure()
                raise DeadlineExceeded(
                    f"engine call exceeded the "
                    f"{config.request_deadline_seconds:g}s deadline"
                ) from exc
            except TransientEngineError as exc:
                self.breaker.record_failure()
                if isinstance(exc, WorkerTimeout):
                    self.metrics.counter("deadline_exceeded").inc()
                if attempt >= attempts:
                    raise
                delay = config.retry_backoff_seconds * (
                    2 ** (attempt - 1)
                )
                self.metrics.counter("retries").inc()
                for session in sessions:
                    self._emit(
                        session,
                        protocol.retrying_message(
                            session.session_id,
                            attempt=attempt,
                            max_attempts=attempts,
                            delay_seconds=delay,
                            error=str(exc),
                        ),
                    )
                await asyncio.sleep(delay)
            else:
                self.breaker.record_success()
                if attempt > 1:
                    self.metrics.counter("recoveries").inc()
                    for session in sessions:
                        self._emit(
                            session,
                            protocol.recovered_message(
                                session.session_id, attempts=attempt
                            ),
                        )
                return value
        raise AssertionError("unreachable")  # pragma: no cover

    def _push_resolved(self, session_id: str, batch):
        """Engine push with the batch resolved to scores first.

        Runs on an engine executor thread, so a pipelined score still
        in flight blocks the dispatch thread, never the event loop; a
        synchronous-mode handle does its scoring right here (strict
        turn-taking — the baseline the pipeline is measured against).
        """
        if isinstance(batch, ScoreHandle):
            waited = perf_counter()
            scores = batch.result()
            self.metrics.counter("feature_batches_scored").inc()
            self.metrics.histogram("scoring_wait_seconds").observe(
                perf_counter() - waited
            )
        else:
            scores = batch
        return self.engine.push(session_id, scores)

    def _push_many_resolved(self, items):
        """Fused engine push with every batch resolved first.

        Resolution failures raise before ``push_many`` runs, keeping
        its raise-before-advance contract: the caller replays the
        batches one at a time and the cached handle error fails only
        the offending session.
        """
        resolved = []
        for session_id, batch in items:
            if isinstance(batch, ScoreHandle):
                waited = perf_counter()
                scores = batch.result()
                self.metrics.counter("feature_batches_scored").inc()
                self.metrics.histogram("scoring_wait_seconds").observe(
                    perf_counter() - waited
                )
            else:
                scores = batch
            resolved.append((session_id, scores))
        return self.engine.push_many(resolved)

    async def _decode_batch(self, session: Session) -> None:
        scores = session.queue.popleft()
        self._update_queue_gauge()
        started = perf_counter()
        try:
            partial = await self._call_engine(
                [session], self._push_resolved, session.session_id, scores
            )
        except Exception as exc:
            await self._fail(session, f"decode failed: {exc}")
            return
        elapsed = perf_counter() - started
        self.metrics.counter("kernel_calls").inc()
        self._record_decode(session, scores, partial, elapsed)

    async def _serve_fused(self, sessions: list[Session]) -> None:
        """One engine dispatch advancing every session a batch in
        lockstep — the serving-side half of the fused kernel."""
        for session in sessions:
            session.inflight = True
        try:
            batches = [session.queue.popleft() for session in sessions]
            self._update_queue_gauge()
            items = [
                (session.session_id, scores)
                for session, scores in zip(sessions, batches)
            ]
            started = perf_counter()
            try:
                partials = await self._call_engine(
                    sessions, self._push_many_resolved, items
                )
            except DeadlineExceeded as exc:
                # The fused call may still be running in its executor
                # thread, so the raise-before-advance contract gives no
                # cover here: replaying could decode a batch twice.
                # Fail the whole fused group instead.
                for session in sessions:
                    await self._fail(session, f"decode failed: {exc}")
                return
            except Exception:
                # push_many raises before any session advances, so the
                # batches can be replayed one at a time — attributing
                # the failure to the offending session and letting the
                # others proceed.
                for session, scores in zip(sessions, batches):
                    session.queue.appendleft(scores)
                self._update_queue_gauge()
                for session in sessions:
                    await self._decode_batch(session)
                return
            elapsed = perf_counter() - started
            self.metrics.counter("kernel_calls").inc()
            self.metrics.gauge("fused_sessions").set(len(sessions))
            for session, scores, partial in zip(
                sessions, batches, partials
            ):
                self._record_decode(session, scores, partial, elapsed)
        finally:
            now = perf_counter()
            for session in sessions:
                session.inflight = False
                session.last_activity = now
            self._wake.set()

    def _record_decode(
        self,
        session: Session,
        scores: np.ndarray,
        partial,
        elapsed: float,
    ) -> None:
        frames = batch_frames(scores)
        session.frames_decoded += frames
        self.metrics.counter("batches_decoded").inc()
        self.metrics.counter("frames_decoded").inc(frames)
        self.metrics.histogram("batch_decode_seconds").observe(elapsed)
        if not session.saw_first_partial:
            session.saw_first_partial = True
            self.metrics.histogram("time_to_first_partial_seconds").observe(
                perf_counter() - session.admitted_at
            )
        self._emit(
            session, protocol.partial_message(session.session_id, partial)
        )

    async def _finish(self, session: Session) -> None:
        try:
            result = await self._call_engine(
                [session], self.engine.finish, session.session_id
            )
        except Exception as exc:
            await self._fail(session, f"finish failed: {exc}", cancel=False)
            return
        self.metrics.histogram("session_seconds").observe(
            perf_counter() - session.admitted_at
        )
        self._emit(
            session, protocol.final_message(session.session_id, result)
        )
        self._retire(session, "sessions_completed")

    async def _fail(
        self, session: Session, error: str, cancel: bool = True
    ) -> None:
        if cancel:
            try:
                await self._run_engine(
                    self.engine.cancel, session.session_id
                )
            except Exception:  # the session is gone either way
                pass
        self._emit(
            session, protocol.error_message(error, session.session_id)
        )
        self._retire(session, "sessions_failed")

    async def _evict_idle(self) -> None:
        timeout = self.config.idle_timeout_seconds
        now = perf_counter()
        for session in list(self._sessions.values()):
            if session.inflight or session.queue or session.finish_requested:
                continue
            if now - session.last_activity >= timeout:
                try:
                    await self._run_engine(
                        self.engine.cancel, session.session_id
                    )
                except Exception:
                    pass
                self._emit(
                    session,
                    protocol.error_message(
                        "idle timeout", session.session_id
                    ),
                )
                self._retire(session, "sessions_timed_out")

    # -- plumbing -----------------------------------------------------------

    async def _run_engine(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    def _emit(self, session: Session, message: dict) -> None:
        session.events.put_nowait(message)

    def _retire(self, session: Session, counter: str) -> None:
        session.closed = True
        self._sessions.pop(session.session_id, None)
        try:
            self._order.remove(session.session_id)
        except ValueError:
            pass
        self.metrics.counter(counter).inc()
        self.metrics.gauge("active_sessions").set(len(self._sessions))
        self._update_queue_gauge()

    def _update_queue_gauge(self) -> None:
        self.metrics.gauge("queued_batches").set(
            sum(len(s.queue) for s in self._sessions.values())
        )
